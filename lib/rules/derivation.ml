type proof =
  | Fact of Digraph.edge
  | Derived of { edge : Digraph.edge; rule : string; premises : proof list }

let explain (result : Infer.result) edge =
  if not (Digraph.mem_edge result.graph edge.Digraph.src edge.label edge.dst) then
    None
  else
    let rec build path e =
      match Infer.provenance_of result e with
      | None -> Fact e
      | Some _ when List.mem e path ->
          (* Provenance loops can arise when an edge is re-derivable from
             edges it helped derive; cut the tree at the loop. *)
          Fact e
      | Some p ->
          Derived
            {
              edge = e;
              rule = p.rule;
              premises = List.map (build (e :: path)) p.premises;
            }
    in
    Some (build [] edge)

let conclusion = function Fact e -> e | Derived { edge; _ } -> edge

let rec depth = function
  | Fact _ -> 0
  | Derived { premises; _ } ->
      1 + List.fold_left (fun acc p -> max acc (depth p)) 0 premises

let facts proof =
  let rec collect acc = function
    | Fact e -> e :: acc
    | Derived { premises; _ } -> List.fold_left collect acc premises
  in
  collect [] proof |> List.sort_uniq Stdlib.compare

let rules_used proof =
  let rec collect acc = function
    | Fact _ -> acc
    | Derived { rule; premises; _ } ->
        List.fold_left collect (rule :: acc) premises
  in
  collect [] proof |> List.sort_uniq String.compare

let pp ppf proof =
  let rec emit indent = function
    | Fact e ->
        Format.fprintf ppf "%s%a   [fact]@," indent Digraph.pp_edge e
    | Derived { edge; rule; premises } ->
        Format.fprintf ppf "%s%a   [by %s]@," indent Digraph.pp_edge edge rule;
        List.iter (emit (indent ^ "  ")) premises
  in
  Format.fprintf ppf "@[<v>";
  emit "" proof;
  Format.fprintf ppf "@]"
