type operand =
  | Term of Term.t
  | Conj of operand list
  | Disj of operand list
  | Patt of Pattern.t

type body =
  | Implication of operand * operand
  | Functional of { fn : string; src : Term.t; dst : Term.t }
  | Disjoint of Term.t * Term.t

type source = Expert | Skat | Inferred | Imported

type t = {
  name : string;
  body : body;
  source : source;
  confidence : float;
  alias : string option;
  loc : Loc.span option;
}

let counter = ref 0

let rec check_operand = function
  | Term _ -> ()
  | Patt _ -> ()
  | Conj ops | Disj ops ->
      if List.length ops < 2 then
        invalid_arg "Rule: conjunction/disjunction needs at least two operands";
      List.iter check_operand ops

let rec pp_operand ppf = function
  | Term t -> Term.pp ppf t
  | Conj ops ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
           pp_operand)
        ops
  | Disj ops ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
           pp_operand)
        ops
  | Patt p -> Format.fprintf ppf "pattern<%s>" (Pattern_parser.to_string p)

let pp_body ppf = function
  | Implication (lhs, rhs) ->
      Format.fprintf ppf "%a => %a" pp_operand lhs pp_operand rhs
  | Functional { fn; src; dst } ->
      Format.fprintf ppf "%s() : %a => %a" fn Term.pp src Term.pp dst
  | Disjoint (a, b) -> Format.fprintf ppf "disjoint %a, %a" Term.pp a Term.pp b

let v ?name ?(source = Expert) ?(confidence = 1.0) ?alias ?loc body =
  if not (confidence >= 0.0 && confidence <= 1.0) then
    invalid_arg "Rule.v: confidence must lie in [0, 1]";
  (match body with
  | Implication (lhs, rhs) ->
      check_operand lhs;
      check_operand rhs
  | Functional _ | Disjoint _ -> ());
  let name =
    match name with
    | Some n -> n
    | None ->
        incr counter;
        Printf.sprintf "r%d" !counter
  in
  {
    name;
    body;
    source;
    confidence;
    alias = (match alias with Some "" -> None | a -> a);
    loc;
  }

let implies ?name ?source ?confidence lhs rhs =
  v ?name ?source ?confidence (Implication (Term lhs, Term rhs))

let functional ?name ~fn ~src ~dst () = v ?name (Functional { fn; src; dst })

let disjoint ?name a b = v ?name (Disjoint (a, b))

let cascade ?name ?source terms =
  if List.length terms < 2 then
    invalid_arg "Rule.cascade: needs at least two terms";
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | _ -> []
  in
  List.mapi
    (fun i (a, b) ->
      let name = Option.map (fun n -> Printf.sprintf "%s.%d" n (i + 1)) name in
      implies ?name ?source a b)
    (pairs terms)

let rec operand_terms = function
  | Term t -> [ t ]
  | Conj ops | Disj ops -> List.concat_map operand_terms ops
  | Patt p -> (
      (* A pattern contributes its labeled nodes, qualified by its
         ontology hint when present. *)
      match Pattern.ontology_hint p with
      | Some onto ->
          List.filter_map
            (fun (n : Pattern.node) ->
              Option.map (fun l -> Term.make ~ontology:onto l) n.label)
            (Pattern.nodes p)
      | None -> [])

let terms rule =
  match rule.body with
  | Implication (lhs, rhs) -> operand_terms lhs @ operand_terms rhs
  | Functional { src; dst; _ } -> [ src; dst ]
  | Disjoint (a, b) -> [ a; b ]

let ontologies rule =
  terms rule
  |> List.map (fun (t : Term.t) -> t.Term.ontology)
  |> List.sort_uniq String.compare

let is_cross_ontology rule =
  match rule.body with
  | Implication _ -> List.length (ontologies rule) >= 2
  | Functional { src; dst; _ } ->
      not (String.equal src.Term.ontology dst.Term.ontology)
  | Disjoint _ -> false

let pp ppf r =
  Format.fprintf ppf "%s: %a" r.name pp_body r.body;
  (match r.alias with Some a -> Format.fprintf ppf " as %s" a | None -> ());
  if r.confidence < 1.0 then Format.fprintf ppf " [%.2f]" r.confidence

let to_string r = Format.asprintf "%a" pp r

let equal_body b1 b2 =
  match (b1, b2) with
  | Implication (l1, r1), Implication (l2, r2) -> l1 = l2 && r1 = r2
  | Functional f1, Functional f2 ->
      String.equal f1.fn f2.fn && Term.equal f1.src f2.src && Term.equal f1.dst f2.dst
  | Disjoint (a1, b1), Disjoint (a2, b2) ->
      (Term.equal a1 a2 && Term.equal b1 b2)
      || (Term.equal a1 b2 && Term.equal b1 a2)
  | (Implication _ | Functional _ | Disjoint _), _ -> false
