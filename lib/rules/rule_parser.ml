type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of string

let fail fmt = Format.kasprintf (fun m -> raise (Fail m)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                          *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string
  | Tcolon
  | Timplies (* => *)
  | Tand (* & or ^ *)
  | Tor (* | *)
  | Tlpar
  | Trpar
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tunit (* () *)
  | Tpattern of string (* pat< ... > payload *)

let pp_token ppf = function
  | Tident s -> Format.fprintf ppf "%S" s
  | Tcolon -> Format.pp_print_string ppf "':'"
  | Timplies -> Format.pp_print_string ppf "'=>'"
  | Tand -> Format.pp_print_string ppf "'&'"
  | Tor -> Format.pp_print_string ppf "'|'"
  | Tlpar -> Format.pp_print_string ppf "'('"
  | Trpar -> Format.pp_print_string ppf "')'"
  | Tlbracket -> Format.pp_print_string ppf "'['"
  | Trbracket -> Format.pp_print_string ppf "']'"
  | Tcomma -> Format.pp_print_string ppf "','"
  | Tunit -> Format.pp_print_string ppf "'()'"
  | Tpattern _ -> Format.pp_print_string ppf "pattern atom"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '\''

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then i := n
    else if c = '=' && !i + 1 < n && src.[!i + 1] = '>' then begin
      push Timplies;
      i := !i + 2
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = ')' then begin
      push Tunit;
      i := !i + 2
    end
    else begin
      match c with
      | ':' ->
          push Tcolon;
          incr i
      | '&' | '^' ->
          push Tand;
          incr i
      | '|' ->
          push Tor;
          incr i
      | '(' ->
          push Tlpar;
          incr i
      | ')' ->
          push Trpar;
          incr i
      | '[' ->
          push Tlbracket;
          incr i
      | ']' ->
          push Trbracket;
          incr i
      | ',' ->
          push Tcomma;
          incr i
      | c when is_ident_char c ->
          let start = !i in
          while !i < n && is_ident_char src.[!i] do incr i done;
          let word = String.sub src start (!i - start) in
          if
            (String.equal word "pat" || String.equal word "pattern")
            && !i < n
            && src.[!i] = '<'
          then begin
            (* pat< ... > pattern atom; '>' terminates (the pattern
               notation itself contains '->' arrows, so scan for a '>'
               not preceded by '-'). *)
            let j = ref (!i + 1) in
            let close = ref (-1) in
            while !close < 0 && !j < n do
              if src.[!j] = '>' && src.[!j - 1] <> '-' then close := !j else incr j
            done;
            if !close < 0 then fail "unterminated pat< ... > atom";
            push (Tpattern (String.sub src (!i + 1) (!close - !i - 1)));
            i := !close + 1
          end
          else push (Tident word)
      | c -> fail "unexpected character %C" c
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : token list }

let peek s = match s.toks with t :: _ -> Some t | [] -> None

let peek2 s = match s.toks with _ :: t :: _ -> Some t | _ -> None

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s want =
  match peek s with
  | Some t when t = want -> advance s
  | Some t -> fail "expected %a, found %a" pp_token want pp_token t
  | None -> fail "expected %a, found end of rule" pp_token want

let parse_term s ~default_ontology =
  match peek s with
  | Some (Tident a) -> (
      advance s;
      match (peek s, peek2 s) with
      | Some Tcolon, Some (Tident b) ->
          advance s;
          advance s;
          Term.make ~ontology:a b
      | _ -> Term.make ~ontology:default_ontology a)
  | Some t -> fail "expected a term, found %a" pp_token t
  | None -> fail "expected a term, found end of rule"

let rec parse_expr s ~default_ontology =
  let first = parse_conj s ~default_ontology in
  let rec loop acc =
    match peek s with
    | Some Tor ->
        advance s;
        loop (parse_conj s ~default_ontology :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with
  | [ one ] -> one
  | several -> Rule.Disj several

and parse_conj s ~default_ontology =
  let first = parse_atom s ~default_ontology in
  let rec loop acc =
    match peek s with
    | Some Tand ->
        advance s;
        loop (parse_atom s ~default_ontology :: acc)
    | _ -> List.rev acc
  in
  match loop [ first ] with
  | [ one ] -> one
  | several -> Rule.Conj several

and parse_atom s ~default_ontology =
  match peek s with
  | Some Tlpar ->
      advance s;
      let e = parse_expr s ~default_ontology in
      expect s Trpar;
      e
  | Some (Tpattern payload) -> (
      advance s;
      match Pattern_parser.parse payload with
      | Ok p -> Rule.Patt p
      | Error e ->
          fail "bad pattern atom: %a" Pattern_parser.pp_error e)
  | _ -> Rule.Term (parse_term s ~default_ontology)

(* Trailing 'as ident' alias. *)
let parse_alias s =
  match (peek s, peek2 s) with
  | Some (Tident "as"), Some (Tident alias) ->
      advance s;
      advance s;
      Some alias
  | _ -> None

let finish s =
  match peek s with
  | None -> ()
  | Some t -> fail "unexpected %a at end of rule" pp_token t

(* Strip one layer of outer parentheses when they wrap the entire token
   list (the paper typesets rules inside parens). *)
let strip_outer toks =
  match toks with
  | Tlpar :: rest -> (
      (* wrapping iff the matching ')' is the final token *)
      let rec scan depth acc = function
        | [] -> None
        | [ Trpar ] when depth = 0 -> Some (List.rev acc)
        | Trpar :: rest when depth = 0 -> ignore rest; None
        | Trpar :: rest -> scan (depth - 1) (Trpar :: acc) rest
        | Tlpar :: rest -> scan (depth + 1) (Tlpar :: acc) rest
        | t :: rest -> scan depth (t :: acc) rest
      in
      match scan 0 [] rest with Some inner -> inner | None -> toks)
  | _ -> toks

let parse_clause ?(default_ontology = "local") ?source ?loc toks =
  let s = { toks = strip_outer toks } in
  (* Optional [name] prefix. *)
  let name =
    match (peek s, peek2 s) with
    | Some Tlbracket, Some (Tident n) ->
        advance s;
        advance s;
        expect s Trbracket;
        Some n
    | _ -> None
  in
  match s.toks with
  | Tident "disjoint" :: _ ->
      advance s;
      let a = parse_term s ~default_ontology in
      expect s Tcomma;
      let b = parse_term s ~default_ontology in
      finish s;
      [ Rule.v ?name ?source ?loc (Rule.Disjoint (a, b)) ]
  | Tident fn :: Tunit :: _ ->
      advance s;
      advance s;
      expect s Tcolon;
      let src = parse_term s ~default_ontology in
      expect s Timplies;
      let dst = parse_term s ~default_ontology in
      finish s;
      [ Rule.v ?name ?source ?loc (Rule.Functional { fn; src; dst }) ]
  | _ ->
      let first = parse_expr s ~default_ontology in
      let rec chain acc =
        match peek s with
        | Some Timplies ->
            advance s;
            chain (parse_expr s ~default_ontology :: acc)
        | _ -> List.rev acc
      in
      let exprs = chain [ first ] in
      let alias = parse_alias s in
      finish s;
      (match exprs with
      | [] | [ _ ] -> fail "a rule needs at least one '=>'"
      | _ ->
          let rec pairs = function
            | a :: (b :: _ as rest) -> (a, b) :: pairs rest
            | _ -> []
          in
          let steps = pairs exprs in
          List.mapi
            (fun idx (lhs, rhs) ->
              let name =
                match (name, List.length steps) with
                | Some n, 1 -> Some n
                | Some n, _ -> Some (Printf.sprintf "%s.%d" n (idx + 1))
                | None, _ -> None
              in
              Rule.v ?name ?source ?alias ?loc (Rule.Implication (lhs, rhs)))
            steps)

let parse_fragment ?default_ontology ?source ?loc text =
  match tokenize text with
  | exception Fail m -> Error m
  | [] -> Ok []
  | toks -> (
      match parse_clause ?default_ontology ?source ?loc toks with
      | rules -> Ok rules
      | exception Fail m -> Error m
      | exception Invalid_argument m -> Error m)

let parse_rule ?default_ontology ?source text =
  parse_fragment ?default_ontology ?source text

(* One parse unit per ';'-separated fragment of each physical line, each
   carrying the 1-based line number and the column where it starts, so
   every rule it yields can be stamped with its span. *)
let fragments text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.concat_map (fun (lineno, line) ->
         let parts = String.split_on_char ';' line in
         let _, frags =
           List.fold_left
             (fun (col, acc) part ->
               (col + String.length part + 1, (lineno, col, part) :: acc))
             (1, []) parts
         in
         List.rev frags)

let parse ?default_ontology ?source text =
  let rules, errors =
    List.fold_left
      (fun (rules, errors) (lineno, col, fragment) ->
        let loc =
          Loc.span
            { Loc.line = lineno; col }
            { Loc.line = lineno; col = col + String.length fragment }
        in
        match parse_fragment ?default_ontology ?source ~loc fragment with
        | Ok rs -> (rules @ rs, errors)
        | Error message -> (rules, { line = lineno; message } :: errors))
      ([], []) (fragments text)
  in
  if errors = [] then Ok rules else Error (List.rev errors)

let parse_exn ?default_ontology ?source text =
  match parse ?default_ontology ?source text with
  | Ok rules -> rules
  | Error errors ->
      let msg =
        errors
        |> List.map (fun e -> Format.asprintf "%a" pp_error e)
        |> String.concat "; "
      in
      invalid_arg ("Rule_parser.parse_exn: " ^ msg)

let print_operand = Format.asprintf "%a" Rule.pp_operand

let print rules =
  let buf = Buffer.create 256 in
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf (Printf.sprintf "[%s] " r.Rule.name);
      (match r.Rule.body with
      | Rule.Implication (lhs, rhs) ->
          Buffer.add_string buf (print_operand lhs);
          Buffer.add_string buf " => ";
          Buffer.add_string buf (print_operand rhs)
      | Rule.Functional { fn; src; dst } ->
          Buffer.add_string buf
            (Printf.sprintf "%s() : %s => %s" fn (Term.qualified src)
               (Term.qualified dst))
      | Rule.Disjoint (a, b) ->
          Buffer.add_string buf
            (Printf.sprintf "disjoint %s, %s" (Term.qualified a) (Term.qualified b)));
      (match r.Rule.alias with
      | Some a -> Buffer.add_string buf (" as " ^ a)
      | None -> ());
      Buffer.add_char buf '\n')
    rules;
  Buffer.contents buf
