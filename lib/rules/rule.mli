(** Articulation rules (section 4.1).

    Rules "take a term from O{_i} and map it into a term of O{_j} using a
    semantically meaningful label".  The forms found in the paper:

    - simple semantic implication: [carrier:Car => factory:Vehicle];
    - cascades introducing articulation terms:
      [carrier:Car => transport:PassengerCar => factory:Vehicle]
      (desugared by the parser into atomic implications);
    - conjunctions: [(factory:CargoCarrier & factory:Vehicle) =>
      carrier:Trucks], which make the generator introduce a class node;
    - disjunctions: [factory:Vehicle => (carrier:Cars | carrier:Trucks)];
    - intra-ontology structuring: [transport:Owner => transport:Person];
    - functional rules carrying conversion functions:
      [DGToEuroFn() : carrier:DutchGuilders => transport:Euro];
    - graph-pattern operands (section 4.1 generalization).

    [Disjoint] is a reproduction extension used by {!Conflict} to give the
    error-detection machinery something to detect, as the paper's
    "detection of errors in the articulation rules" requires. *)

type operand =
  | Term of Term.t
  | Conj of operand list  (** length >= 2 *)
  | Disj of operand list  (** length >= 2 *)
  | Patt of Pattern.t
      (** Matches of the pattern stand in for the operand term; the
          pattern's first node is the representative that gets bridged. *)

type body =
  | Implication of operand * operand  (** lhs semantically implies rhs. *)
  | Functional of { fn : string; src : Term.t; dst : Term.t }
  | Disjoint of Term.t * Term.t

type source = Expert | Skat | Inferred | Imported

type t = {
  name : string;  (** Unique within a rule set; auto-generated if absent. *)
  body : body;
  source : source;
  confidence : float;  (** SKAT suggestions carry scores < 1.0. *)
  alias : string option;
      (** Expert-chosen label for the class node a conjunction /
          disjunction introduces ("overruled by the user using a more
          concise and appropriate name", section 4.1). *)
  loc : Loc.span option;
      (** Where the rule was written in its source text, when it came
          from {!Rule_parser} — the provenance the lint layer reports. *)
}

val v :
  ?name:string ->
  ?source:source ->
  ?confidence:float ->
  ?alias:string ->
  ?loc:Loc.span ->
  body ->
  t
(** Smart constructor; defaults: generated name, [Expert] source,
    confidence [1.0].
    @raise Invalid_argument on confidence outside [0,1], or [Conj] /
    [Disj] with fewer than two operands. *)

val implies : ?name:string -> ?source:source -> ?confidence:float -> Term.t -> Term.t -> t
(** Atomic [Term => Term] implication. *)

val functional : ?name:string -> fn:string -> src:Term.t -> dst:Term.t -> unit -> t

val disjoint : ?name:string -> Term.t -> Term.t -> t

val cascade : ?name:string -> ?source:source -> Term.t list -> t list
(** [cascade [a; b; c]] desugars the multi-term implication into
    [[a => b; b => c]].
    @raise Invalid_argument on fewer than two terms. *)

val operand_terms : operand -> Term.t list
(** All [Term] leaves, in order. *)

val terms : t -> Term.t list
(** All terms the rule mentions. *)

val ontologies : t -> string list
(** Distinct ontology names mentioned, sorted. *)

val is_cross_ontology : t -> bool
(** Does an implication connect at least two different ontologies? *)

val pp_operand : Format.formatter -> operand -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal_body : body -> body -> bool
