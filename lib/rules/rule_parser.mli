(** Textual articulation-rule language.

    One rule per line (or [;]-separated); [#] and [//] start comments.
    Lines may be wrapped in one pair of outer parentheses, as the paper
    typesets its rules.

    {v
    rule   ::= [ '[' name ']' ] clause [ 'as' ident ]
    clause ::= 'disjoint' term ',' term
             | ident '()' ':' term '=>' term      (functional rule)
             | expr ( '=>' expr )+                (cascades desugared)
    expr   ::= conj ( '|' conj )*
    conj   ::= atom ( ('&' | '^') atom )*
    atom   ::= term | '(' expr ')' | 'pat<' pattern-notation '>'
    term   ::= ident ':' ident | ident            (bare names take the
                                                   default ontology)
    v}

    Examples from the paper:
    {v
    carrier:Car => factory:Vehicle
    carrier:Car => transport:PassengerCar => factory:Vehicle
    (factory:CargoCarrier & factory:Vehicle) => carrier:Trucks as CargoCarrierVehicle
    factory:Vehicle => (carrier:Cars | carrier:Trucks) as CarsTrucks
    DGToEuroFn() : carrier:DutchGuilders => transport:Euro
    v} *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_rule :
  ?default_ontology:string -> ?source:Rule.source -> string -> (Rule.t list, string) result
(** Parse a single rule text.  Returns a list because cascades desugar
    into several atomic rules.  [default_ontology] (default ["local"])
    qualifies bare term names. *)

val parse :
  ?default_ontology:string ->
  ?source:Rule.source ->
  string ->
  (Rule.t list, error list) result
(** Parse a whole document; reports every malformed line. *)

val parse_exn :
  ?default_ontology:string -> ?source:Rule.source -> string -> Rule.t list
(** @raise Invalid_argument on errors. *)

val print : Rule.t list -> string
(** Render rules in the textual language, one per line.  Pattern operands
    render through {!Pattern_parser.to_string}.  [parse (print rules)]
    reconstructs rules whose operands are pattern-free. *)
