(** Proof trees over {!Infer} results.

    The articulation generator must justify suggested bridges to the
    expert; a proof tree unwinds a derived edge back to base facts through
    the Horn rules that produced it. *)

type proof =
  | Fact of Digraph.edge  (** Present in the base graph. *)
  | Derived of {
      edge : Digraph.edge;
      rule : string;
      premises : proof list;
    }

val explain : Infer.result -> Digraph.edge -> proof option
(** [None] when the edge is not in the result graph.  Base edges yield
    [Fact]; derived edges recurse through their recorded premises
    (cycle-safe: a premise already on the path renders as [Fact]). *)

val conclusion : proof -> Digraph.edge

val depth : proof -> int
(** [Fact] has depth 0. *)

val facts : proof -> Digraph.edge list
(** The leaves supporting the conclusion, deduplicated and sorted. *)

val rules_used : proof -> string list
(** Distinct rule names in the tree, sorted. *)

val pp : Format.formatter -> proof -> unit
(** Indented rendering:
    {v
    carrier:Car -SI-> factory:Vehicle   [by si-transitive]
      carrier:Car -SI-> transport:Vehicle   [fact]
      transport:Vehicle -SI-> factory:Vehicle   [fact]
    v} *)
