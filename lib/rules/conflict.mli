(** Detection of errors in articulation rule sets.

    The paper's model is "rich enough to provide a basis for the logical
    inference necessary ... for the detection of errors in the articulation
    rules" (section 1); the expert "is responsible to correct
    inconsistencies in the suggested articulation" (section 2.4).  These
    checks surface the inconsistencies for that review. *)

type severity = Fatal | Suspicious

type conflict = {
  severity : severity;
  code : string;
  subject : string;
  detail : string;
  rules_involved : string list;  (** Rule names, sorted. *)
}

val pp_conflict : Format.formatter -> conflict -> unit

val check :
  ?conversions:Conversion.t ->
  ontologies:Ontology.t list ->
  Rule.t list ->
  conflict list
(** Checks performed (codes):

    Fatal:
    - [disjoint-implication] — a (transitive) implication path connects two
      terms a [Disjoint] rule separates;
    - [disjoint-overlap] — some term implies both sides of a [Disjoint]
      rule, forcing it to be empty;
    - [functional-clash] — two functional rules convert the same term pair
      through different functions;
    - [self-implication] — a rule implies a term by itself.

    Suspicious:
    - [duplicate-rule] — two rules with identical bodies;
    - [roundtrip-drift] — a registered conversion function whose declared
      inverse does not invert it (relative error above 1e-6 on a probe
      value);
    - [unknown-converter] — a functional rule naming a function absent
      from the registry (only when [conversions] is given);
    - [unknown-term] — a rule mentioning a term absent from its source
      ontology (articulation-ontology terms, which rules are allowed to
      introduce, are exempt: only terms attributed to one of the supplied
      [ontologies] are checked).

    The implication paths are computed from atomic [Term => Term] rules
    plus the [SubclassOf] / [SI] edges of the supplied ontologies
    (qualified).  Conjunctions and disjunctions are deliberately not
    expanded: [(A & B) => C] does not entail [A => C]. *)

val fatal : conflict list -> conflict list

val suspicious : conflict list -> conflict list
