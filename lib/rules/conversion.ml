type value = Num of float | Str of string | Bool of bool

let pp_value ppf = function
  | Num f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let equal_value v1 v2 =
  match (v1, v2) with
  | Num a, Num b ->
      let scale = max 1.0 (max (Float.abs a) (Float.abs b)) in
      Float.abs (a -. b) <= 1e-9 *. scale
  | Str a, Str b -> String.equal a b
  | Bool a, Bool b -> Bool.equal a b
  | (Num _ | Str _ | Bool _), _ -> false

type fn = value -> (value, string) result

module Smap = Map.Make (String)

type entry = { fn : fn; inverse : string option }

type t = entry Smap.t

let empty = Smap.empty

let register t ~name ?inverse fn = Smap.add name { fn; inverse } t

let numeric name k = function
  | Num v -> Ok (Num (k v))
  | v ->
      Error
        (Format.asprintf "converter %s expects a numeric value, got %a" name
           pp_value v)

let register_linear t ~name ?inverse ~factor ?(offset = 0.0) () =
  register t ~name ?inverse (numeric name (fun v -> (v *. factor) +. offset))

let mem t name = Smap.mem name t

let names t = List.map fst (Smap.bindings t)

let inverse_name t name =
  match Smap.find_opt name t with Some e -> e.inverse | None -> None

let apply t name v =
  match Smap.find_opt name t with
  | Some e -> e.fn v
  | None -> Error (Printf.sprintf "unknown conversion function %s" name)

let apply_label t label v =
  match Rel.conversion_name label with
  | Some name -> apply t name v
  | None -> Error (Printf.sprintf "edge label %S is not a conversion label" label)

let roundtrip_error t name v =
  match (v, inverse_name t name) with
  | Num original, Some inv -> (
      match apply t name v with
      | Ok converted -> (
          match apply t inv converted with
          | Ok (Num back) ->
              let scale = max 1.0 (Float.abs original) in
              Some (Float.abs (back -. original) /. scale)
          | Ok _ | Error _ -> None)
      | Error _ -> None)
  | _ -> None

let pair t ~a ~b ~factor =
  (* a -> b multiplies by factor; b -> a divides. *)
  let t = register_linear t ~name:a ~inverse:b ~factor () in
  register_linear t ~name:b ~inverse:a ~factor:(1.0 /. factor) ()

let builtin =
  let t = empty in
  (* 1 EUR = 2.20371 NLG (the fixed conversion rate). *)
  let t = pair t ~a:"DGToEuroFn" ~b:"EuroToDGFn" ~factor:(1.0 /. 2.20371) in
  (* Synthetic fixed rate: 1 EUR = 0.60 GBP. *)
  let t = pair t ~a:"PSToEuroFn" ~b:"EuroToPSFn" ~factor:(1.0 /. 0.6) in
  (* Synthetic fixed rate: 1 EUR = 1.10 USD. *)
  let t = pair t ~a:"USDToEuroFn" ~b:"EuroToUSDFn" ~factor:(1.0 /. 1.1) in
  let t = pair t ~a:"KgToLbFn" ~b:"LbToKgFn" ~factor:2.20462 in
  let t = pair t ~a:"MileToKmFn" ~b:"KmToMileFn" ~factor:1.609344 in
  let t =
    register t ~name:"CelsiusToFFn" ~inverse:"FToCelsiusFn"
      (numeric "CelsiusToFFn" (fun c -> (c *. 9.0 /. 5.0) +. 32.0))
  in
  register t ~name:"FToCelsiusFn" ~inverse:"CelsiusToFFn"
    (numeric "FToCelsiusFn" (fun f -> (f -. 32.0) *. 5.0 /. 9.0))
