type severity = Fatal | Suspicious

type conflict = {
  severity : severity;
  code : string;
  subject : string;
  detail : string;
  rules_involved : string list;
}

let pp_conflict ppf c =
  Format.fprintf ppf "[%s] %s: %s — %s"
    (match c.severity with Fatal -> "fatal" | Suspicious -> "suspicious")
    c.code c.subject c.detail;
  if c.rules_involved <> [] then
    Format.fprintf ppf " (rules: %s)" (String.concat ", " c.rules_involved)

let conflict severity code subject detail rules_involved =
  {
    severity;
    code;
    subject;
    detail;
    rules_involved = List.sort_uniq String.compare rules_involved;
  }

(* The implication graph: qualified terms as nodes, edges from atomic
   Term => Term rules and from each ontology's SubclassOf / SI edges. *)
let implication_graph ~ontologies rules =
  let g =
    List.fold_left
      (fun g o ->
        let qualified = Ontology.qualify o in
        Digraph.fold_edges
          (fun (e : Digraph.edge) g ->
            if
              String.equal e.label Rel.subclass_of
              || String.equal e.label Rel.semantic_implication
            then Digraph.add_edge g e.src "implies" e.dst
            else g)
          qualified g)
      Digraph.empty ontologies
  in
  List.fold_left
    (fun g (r : Rule.t) ->
      match r.Rule.body with
      | Rule.Implication (Rule.Term lhs, Rule.Term rhs) ->
          Digraph.add_edge g (Term.qualified lhs) "implies" (Term.qualified rhs)
      | Rule.Implication _ | Rule.Functional _ | Rule.Disjoint _ -> g)
    g rules

let rules_mentioning rules term =
  List.filter_map
    (fun (r : Rule.t) ->
      if List.exists (Term.equal term) (Rule.terms r) then Some r.Rule.name
      else None)
    rules

let check ?conversions ~ontologies rules =
  let conflicts = ref [] in
  let add c = conflicts := c :: !conflicts in
  let impl = implication_graph ~ontologies rules in
  let reaches a b =
    String.equal a b || Traversal.path_exists impl a b
  in

  (* Disjointness violations. *)
  let disjoint_pairs =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Disjoint (a, b) -> Some (r.Rule.name, a, b)
        | Rule.Implication _ | Rule.Functional _ -> None)
      rules
  in
  List.iter
    (fun (rule_name, a, b) ->
      let qa = Term.qualified a and qb = Term.qualified b in
      if Traversal.path_exists impl qa qb || Traversal.path_exists impl qb qa then
        add
          (conflict Fatal "disjoint-implication"
             (qa ^ " / " ^ qb)
             "an implication path connects terms declared disjoint"
             (rule_name :: (rules_mentioning rules a @ rules_mentioning rules b)));
      (* Common implier: some term flows into both sides. *)
      Digraph.iter_nodes
        (fun n ->
          if
            (not (String.equal n qa))
            && (not (String.equal n qb))
            && reaches n qa && reaches n qb
          then
            add
              (conflict Fatal "disjoint-overlap" n
                 (Printf.sprintf
                    "term implies both %s and %s, which are declared disjoint" qa qb)
                 [ rule_name ]))
        impl)
    disjoint_pairs;

  (* Self-implication. *)
  List.iter
    (fun (r : Rule.t) ->
      match r.Rule.body with
      | Rule.Implication (Rule.Term lhs, Rule.Term rhs) when Term.equal lhs rhs ->
          add
            (conflict Fatal "self-implication" (Term.qualified lhs)
               "rule implies a term by itself" [ r.Rule.name ])
      | Rule.Implication _ | Rule.Functional _ | Rule.Disjoint _ -> ())
    rules;

  (* Functional clashes: same (src, dst), different function. *)
  let functionals =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Functional { fn; src; dst } -> Some (r.Rule.name, fn, src, dst)
        | Rule.Implication _ | Rule.Disjoint _ -> None)
      rules
  in
  let rec clash = function
    | [] -> ()
    | (n1, f1, s1, d1) :: rest ->
        List.iter
          (fun (n2, f2, s2, d2) ->
            if Term.equal s1 s2 && Term.equal d1 d2 && not (String.equal f1 f2) then
              add
                (conflict Fatal "functional-clash"
                   (Term.qualified s1 ^ " => " ^ Term.qualified d1)
                   (Printf.sprintf "converted by both %s and %s" f1 f2)
                   [ n1; n2 ]))
          rest;
        clash rest
  in
  clash functionals;

  (* Duplicate rules. *)
  let rec dups = function
    | [] -> ()
    | (r1 : Rule.t) :: rest ->
        List.iter
          (fun (r2 : Rule.t) ->
            if Rule.equal_body r1.Rule.body r2.Rule.body then
              add
                (conflict Suspicious "duplicate-rule" (Rule.to_string r1)
                   "two rules have the same body" [ r1.Rule.name; r2.Rule.name ]))
          rest;
        dups rest
  in
  dups rules;

  (* Conversion-registry checks. *)
  (match conversions with
  | None -> ()
  | Some registry ->
      List.iter
        (fun (rule_name, fn, src, dst) ->
          if not (Conversion.mem registry fn) then
            add
              (conflict Suspicious "unknown-converter"
                 (Term.qualified src ^ " => " ^ Term.qualified dst)
                 (Printf.sprintf "function %s is not registered" fn)
                 [ rule_name ])
          else
            match Conversion.roundtrip_error registry fn (Conversion.Num 100.0) with
            | Some err when err > 1e-6 ->
                add
                  (conflict Suspicious "roundtrip-drift" fn
                     (Printf.sprintf
                        "declared inverse drifts by %.2e on a probe value" err)
                     [ rule_name ])
            | Some _ | None -> ())
        functionals);

  (* Unknown terms: rules naming terms absent from a supplied source
     ontology.  Terms attributed to ontologies we were not given (e.g. the
     articulation ontology being built) are exempt. *)
  let find_ontology onto_name =
    List.find_opt (fun o -> String.equal (Ontology.name o) onto_name) ontologies
  in
  List.iter
    (fun (r : Rule.t) ->
      List.iter
        (fun (t : Term.t) ->
          match find_ontology t.Term.ontology with
          | Some o when not (Ontology.has_term o t.Term.name) ->
              add
                (conflict Suspicious "unknown-term" (Term.qualified t)
                   (Printf.sprintf "ontology %s has no such term" t.Term.ontology)
                   [ r.Rule.name ])
          | Some _ | None -> ())
        (Rule.terms r))
    rules;

  let rank = function Fatal -> 0 | Suspicious -> 1 in
  List.stable_sort
    (fun a b ->
      match Stdlib.compare (rank a.severity) (rank b.severity) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.subject b.subject
          | c -> c)
      | c -> c)
    (List.rev !conflicts)

let fatal conflicts = List.filter (fun c -> c.severity = Fatal) conflicts
let suspicious conflicts = List.filter (fun c -> c.severity = Suspicious) conflicts
