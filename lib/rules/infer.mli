(** A Horn-clause inference engine over ontology graphs.

    Section 4.1: "Since inference engines for full first-order systems tend
    not to scale up to large knowledge bases, for performance reasons, we
    envisage that for a lot of applications we will use simple Horn Clauses
    to represent articulation rules.  The modular design of the ONION
    system implies that we can then plug in a much lighter (and faster)
    inference engine."

    This is that lighter engine: binary-predicate Datalog with semi-naive
    forward chaining.  Facts are graph edges [rel(src, dst)]; rules derive
    new edges.  The engine is decoupled from the ontology representation
    (section 2.1): it consumes and produces plain {!Digraph} values. *)

type vterm = Var of string | Const of string

type atom = { rel : string; src : vterm; dst : vterm }
(** [rel(src, dst)], e.g. [SubclassOf(X, Y)]. *)

type horn = {
  rule_name : string;
  head : atom;
  body : atom list;  (** Non-empty; variables in the head must occur in
                         the body (range restriction). *)
}

val atom : string -> vterm -> vterm -> atom

val horn : name:string -> head:atom -> body:atom list -> horn
(** @raise Invalid_argument on an empty body or an unrestricted head
    variable. *)

val pp_horn : Format.formatter -> horn -> unit

(** {1 Stock rule sets} *)

val default_rules : horn list
(** The rules the paper's examples rely on:
    transitivity of [SubclassOf] and [SI]; [SubclassOf] implies [SI];
    instance inheritance ([InstanceOf(i, c), SubclassOf(c, d) |-
    InstanceOf(i, d)]); attribute inheritance along [SubclassOf]; and
    bridge widening ([SI(a, b), SIBridge(b, m) |- SIBridge(a, m)]). *)

val of_registry : Rel.registry -> horn list
(** Compile relationship property declarations (transitive, symmetric,
    inverse, implies) into Horn rules. *)

(** {1 Running} *)

type provenance = {
  edge : Digraph.edge;
  rule : string;
  premises : Digraph.edge list;
}
(** How a derived edge was first produced. *)

type result = {
  graph : Digraph.t;  (** Input graph plus all derived edges. *)
  derived : provenance list;  (** In derivation order. *)
  rounds : int;  (** Fixpoint iterations used. *)
}

val run :
  ?max_rounds:int ->
  ?strategy:[ `Semi_naive | `Naive ] ->
  rules:horn list ->
  Digraph.t ->
  result
(** Evaluation to fixpoint (or [max_rounds], default 10_000 — effectively
    unbounded).  [`Semi_naive] (the default) requires each rule firing to
    use at least one edge derived in the previous round; [`Naive] rejoins
    everything every round — same fixpoint, more work; kept for the
    ablation benchmark that justifies the strategy choice. *)

val derived_edges : result -> Digraph.edge list

val provenance_of : result -> Digraph.edge -> provenance option
(** [None] for base facts and unknown edges. *)
