let subclass_of = "SubclassOf"
let attribute_of = "AttributeOf"
let instance_of = "InstanceOf"
let semantic_implication = "SI"
let si_bridge = "SIBridge"

let short = function
  | "SubclassOf" -> "S"
  | "AttributeOf" -> "A"
  | "InstanceOf" -> "I"
  | "SI" -> "SI"
  | "SIBridge" -> "SIB"
  | other -> other

let of_short = function
  | "S" -> subclass_of
  | "A" -> attribute_of
  | "I" -> instance_of
  | "SI" -> semantic_implication
  | "SIB" -> si_bridge
  | other -> other

let is_conversion_label label =
  let n = String.length label in
  n > 2 && String.equal (String.sub label (n - 2) 2) "()"

let conversion_label name = name ^ "()"

let conversion_name label =
  if is_conversion_label label then
    Some (String.sub label 0 (String.length label - 2))
  else None

type property =
  | Transitive
  | Symmetric
  | Reflexive
  | Inverse_of of string
  | Implies of string

let equal_property p1 p2 =
  match (p1, p2) with
  | Transitive, Transitive | Symmetric, Symmetric | Reflexive, Reflexive -> true
  | Inverse_of a, Inverse_of b | Implies a, Implies b -> String.equal a b
  | (Transitive | Symmetric | Reflexive | Inverse_of _ | Implies _), _ -> false

let pp_property ppf = function
  | Transitive -> Format.pp_print_string ppf "transitive"
  | Symmetric -> Format.pp_print_string ppf "symmetric"
  | Reflexive -> Format.pp_print_string ppf "reflexive"
  | Inverse_of r -> Format.fprintf ppf "inverse-of(%s)" r
  | Implies r -> Format.fprintf ppf "implies(%s)" r

module Smap = Map.Make (String)

type registry = property list Smap.t

let empty_registry = Smap.empty

let declare registry name props =
  let existing = match Smap.find_opt name registry with Some l -> l | None -> [] in
  let add acc p = if List.exists (equal_property p) acc then acc else acc @ [ p ] in
  Smap.add name (List.fold_left add existing props) registry

let standard_registry =
  empty_registry
  |> fun r ->
  declare r subclass_of [ Transitive ] |> fun r ->
  declare r semantic_implication [ Transitive ] |> fun r ->
  declare r attribute_of [] |> fun r ->
  declare r instance_of [] |> fun r -> declare r si_bridge []

let properties registry name =
  match Smap.find_opt name registry with Some l -> l | None -> []

let has_property registry name p =
  List.exists (equal_property p) (properties registry name)

let is_transitive registry name = has_property registry name Transitive

let declared registry = Smap.bindings registry

let merge r1 r2 = Smap.fold (fun name props acc -> declare acc name props) r2 r1
