(** Format-dispatching ontology loader (the "wrappers" feeding the ONION
    data layer in Fig. 1).

    Three concrete syntaxes are supported, as listed in section 2.1:
    XML documents, IDL specifications, and simple adjacency lists. *)

type format = Xml | Idl | Adjacency

val format_of_path : string -> format option
(** By extension: [.xml]; [.idl]; [.adj] / [.graph] / [.txt]. *)

val sniff : string -> format
(** Guess the format from document content (leading [<] means XML;
    a leading [module] / [interface] keyword means IDL; otherwise
    adjacency). *)

val load_string :
  ?format:format -> ?name:string -> string -> (Ontology.t, string) result
(** Parse ontology text.  [format] defaults to {!sniff}.  [name] (default
    ["ontology"]) names the ontology for formats that do not embed a name
    (adjacency lists, bare-interface IDL). *)

val load_file : ?format:format -> ?name:string -> string -> (Ontology.t, string) result
(** Like {!load_string}, reading from a file; [format] defaults to
    {!format_of_path}, then {!sniff}; [name] defaults to the file's
    basename without extension. *)

val save_string : ?format:format -> Ontology.t -> (string, string) result
(** Serialize to [format] (default [Xml]).  Adjacency rendering is the
    deterministic {!Adjacency.print} (so [load_string] reconstructs the
    very same graph); XML goes through {!Xml_parse.ontology_to_xml},
    which is faithful including the relation registry.  IDL export is
    not supported and yields [Error]. *)

val save_file : Ontology.t -> string -> unit
(** Write in the format implied by the path's extension (default XML). *)
