type t = {
  name : string;
  graph : Digraph.t;
  relations : Rel.registry;
  revision : int;
      (* Fresh Revision stamp on any change to name, graph or registry;
         no-op graph mutations keep the stamp.  Equal revisions imply the
         very same ontology value, so result caches key on this alone. *)
}

let create ?(relations = Rel.standard_registry) name =
  if String.length name = 0 then invalid_arg "Ontology.create: empty name";
  if String.contains name ':' then
    invalid_arg "Ontology.create: ontology names must not contain ':'";
  { name; graph = Digraph.empty; relations; revision = Revision.fresh () }

let name o = o.name
let graph o = o.graph
let relations o = o.relations
let revision o = o.revision

(* Route every graph replacement through here: an unchanged graph (no-op
   mutation) keeps the ontology — and its revision — intact. *)
let update_graph o graph =
  if graph == o.graph then o
  else { o with graph; revision = Revision.fresh () }

let with_graph o graph = update_graph o graph

let with_name o name =
  if String.length name = 0 then invalid_arg "Ontology.with_name: empty name";
  if String.contains name ':' then
    invalid_arg "Ontology.with_name: ontology names must not contain ':'";
  { o with name; revision = Revision.fresh () }

let add_term o term = update_graph o (Digraph.add_node o.graph term)

let add_rel o src relationship dst =
  update_graph o (Digraph.add_edge o.graph src relationship dst)

let add_subclass o ~sub ~super = add_rel o sub Rel.subclass_of super
let add_attribute o ~concept ~attr = add_rel o concept Rel.attribute_of attr
let add_instance o ~instance ~concept = add_rel o instance Rel.instance_of concept

let add_implication o ~specific ~general =
  add_rel o specific Rel.semantic_implication general

let declare_relation o rel props =
  { o with relations = Rel.declare o.relations rel props; revision = Revision.fresh () }

let remove_term o term = update_graph o (Digraph.remove_node o.graph term)

let remove_rel o src relationship dst =
  update_graph o (Digraph.remove_edge o.graph src relationship dst)

let has_term o term = Digraph.mem_node o.graph term
let has_rel o src relationship dst = Digraph.mem_edge o.graph src relationship dst
let terms o = Digraph.nodes o.graph
let relationships o = Digraph.edges o.graph
let nb_terms o = Digraph.nb_nodes o.graph
let nb_relationships o = Digraph.nb_edges o.graph

let subclasses o term = Digraph.pred_by o.graph term Rel.subclass_of
let superclasses o term = Digraph.succ_by o.graph term Rel.subclass_of

let follow_subclass = Traversal.only [ Rel.subclass_of ]

let all_superclasses o term =
  if Rel.is_transitive o.relations Rel.subclass_of then
    Traversal.reachable ~follow:follow_subclass o.graph term
  else superclasses o term

let all_subclasses o term =
  if Rel.is_transitive o.relations Rel.subclass_of then
    Traversal.co_reachable ~follow:follow_subclass o.graph term
  else subclasses o term

let is_subclass o ~sub ~super =
  (not (String.equal sub super)) && List.mem super (all_superclasses o sub)

let own_attributes o term = Digraph.succ_by o.graph term Rel.attribute_of

let attributes o term =
  let inherited =
    List.concat_map (fun super -> own_attributes o super) (all_superclasses o term)
  in
  List.sort_uniq String.compare (own_attributes o term @ inherited)

let instances o term =
  let of_concept c = Digraph.pred_by o.graph c Rel.instance_of in
  List.sort_uniq String.compare
    (of_concept term @ List.concat_map of_concept (all_subclasses o term))

let roots o =
  List.filter (fun t -> superclasses o t = []) (terms o)

let leaves o =
  List.filter (fun t -> subclasses o t = []) (terms o)

(* Expand one round of property-derived edges; returns the enlarged graph. *)
let expand_once relations g =
  let expand_label g label =
    let props = Rel.properties relations label in
    List.fold_left
      (fun g prop ->
        match (prop : Rel.property) with
        | Rel.Transitive ->
            Traversal.transitive_closure ~follow:(Traversal.only [ label ])
              ~close_label:label g
        | Rel.Symmetric ->
            Digraph.fold_edges
              (fun (e : Digraph.edge) g ->
                if String.equal e.label label then Digraph.add_edge g e.dst label e.src
                else g)
              g g
        | Rel.Reflexive ->
            Digraph.fold_nodes (fun n g -> Digraph.add_edge g n label n) g g
        | Rel.Inverse_of other ->
            Digraph.fold_edges
              (fun (e : Digraph.edge) g ->
                if String.equal e.label label then Digraph.add_edge g e.dst other e.src
                else g)
              g g
        | Rel.Implies other ->
            Digraph.fold_edges
              (fun (e : Digraph.edge) g ->
                if String.equal e.label label then Digraph.add_edge g e.src other e.dst
                else g)
              g g)
      g props
  in
  List.fold_left expand_label g (List.map fst (Rel.declared relations))

let closure o =
  let rec fixpoint g iterations =
    let g' = expand_once o.relations g in
    if Digraph.nb_edges g' = Digraph.nb_edges g || iterations = 0 then g'
    else fixpoint g' (iterations - 1)
  in
  (* Property interactions (Implies feeding Transitive, inverses feeding
     implications) converge in very few rounds; the bound is a safety net
     against pathological registries. *)
  update_graph o (fixpoint o.graph 16)

let qualify o =
  Digraph.fold_nodes
    (fun n g -> Digraph.rename_node g n (o.name ^ ":" ^ n))
    o.graph o.graph

let restrict o keep = update_graph o (Digraph.subgraph o.graph keep)

let term_of o term_name = Term.make ~ontology:o.name term_name

let equal o1 o2 = String.equal o1.name o2.name && Digraph.equal o1.graph o2.graph

let pp ppf o =
  Format.fprintf ppf "@[<v2>ontology %s (%d terms, %d relationships)" o.name
    (nb_terms o) (nb_relationships o);
  List.iter
    (fun (e : Digraph.edge) ->
      Format.fprintf ppf "@,%s -%s-> %s" e.src (Rel.short e.label) e.dst)
    (relationships o);
  Format.fprintf ppf "@]"
