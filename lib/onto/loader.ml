type format = Xml | Idl | Adjacency

let format_of_path path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".xml" -> Some Xml
  | ".idl" -> Some Idl
  | ".adj" | ".graph" | ".txt" -> Some Adjacency
  | _ -> None

let sniff content =
  let trimmed = String.trim content in
  if String.length trimmed > 0 && trimmed.[0] = '<' then Xml
  else
    let starts_with prefix =
      String.length trimmed >= String.length prefix
      && String.equal (String.sub trimmed 0 (String.length prefix)) prefix
    in
    if starts_with "module" || starts_with "interface" || starts_with "//" then Idl
    else Adjacency

let load_string ?format ?(name = "ontology") content =
  let format = match format with Some f -> f | None -> sniff content in
  match format with
  | Xml -> Xml_parse.parse_ontology content
  | Idl -> (
      match Idl_parse.parse_ontology ~name content with
      | Ok o -> Ok o
      | Error e -> Error (Format.asprintf "IDL: %a" Idl_parse.pp_error e))
  | Adjacency -> (
      match Adjacency.parse content with
      | Ok g -> Ok (Ontology.with_graph (Ontology.create name) g)
      | Error errors ->
          let msg =
            errors
            |> List.map (fun e -> Format.asprintf "%a" Adjacency.pp_error e)
            |> String.concat "; "
          in
          Error ("adjacency: " ^ msg))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file ?format ?name path =
  let content = read_file path in
  let format =
    match format with
    | Some f -> Some f
    | None -> format_of_path path
  in
  let name =
    match name with
    | Some n -> n
    | None -> Filename.remove_extension (Filename.basename path)
  in
  load_string ?format ~name content

let save_string ?(format = Xml) o =
  match format with
  | Idl -> Error "IDL export is not supported"
  | Adjacency -> Ok (Adjacency.print (Ontology.graph o))
  | Xml -> Ok (Xml_parse.to_string (Xml_parse.ontology_to_xml o))

let save_file o path =
  let content =
    match format_of_path path with
    | Some Idl ->
        invalid_arg "Loader.save_file: IDL export is not supported"
    | Some Adjacency -> Adjacency.print (Ontology.graph o)
    | Some Xml | None -> Xml_parse.to_string (Xml_parse.ontology_to_xml o)
  in
  Atomic_io.write path content
