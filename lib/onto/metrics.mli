(** Descriptive metrics of an ontology.

    The viewer and the workspace status report these so an expert can size
    up an unfamiliar source before articulating against it, and the
    workload generator's tests assert its output stays in realistic
    shape. *)

type t = {
  terms : int;
  relationships : int;
  relation_labels : (string * int) list;
      (** Edge count per relationship label, sorted by label. *)
  roots : int;  (** Terms with no superclass. *)
  leaves : int;  (** Terms with no subclass. *)
  max_depth : int;
      (** Longest [SubclassOf] chain (0 when there is no taxonomy).
          Computed on the DAG; cycles contribute their longest acyclic
          stretch. *)
  avg_fanout : float;
      (** Mean direct-subclass count over terms that have at least one. *)
  attribute_terms : int;  (** Distinct targets of [AttributeOf] edges. *)
  instances : int;  (** Distinct sources of [InstanceOf] edges. *)
}

val compute : Ontology.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary. *)
