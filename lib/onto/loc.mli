(** Source locations for diagnostics.

    The ingestion formats (XML, IDL, adjacency lists, the rule and
    pattern notations) are all plain text, and the lint layer wants every
    finding to point at [file:line:col].  This module is the shared
    vocabulary: 1-based positions, half-open spans, and the two ways the
    tree recovers positions after the fact — mapping a byte offset back
    to line/col, and locating the first whole-word occurrence of a term
    or rule name inside a source text. *)

type pos = { line : int; col : int }
(** 1-based line and column (columns count bytes, which coincides with
    characters for the ASCII notations used throughout). *)

type span = { start : pos; stop : pos }
(** [stop] is exclusive on the column: the span of ["abc"] at the start
    of a file is [{1,1}–{1,4}]. *)

val pos : line:int -> col:int -> pos
(** @raise Invalid_argument on non-positive line or column. *)

val span : pos -> pos -> span

val line_span : string -> int -> span
(** The span covering (the non-empty part of) the 1-based line number in
    the text; a span at the text's last line when the number overshoots. *)

val of_offset : string -> int -> pos
(** Map a byte offset into the text to its position (clamped to the
    text's end for overshooting offsets). *)

val find_word : string -> string -> span option
(** [find_word text needle] is the span of the first occurrence of
    [needle] in [text] that is not embedded in a longer identifier
    (neighbouring characters are not letters, digits, [_] or [']).
    [None] when absent or [needle] is empty. *)

val compare_pos : pos -> pos -> int

val pp_pos : Format.formatter -> pos -> unit
(** [line:col]. *)

val pp_span : Format.formatter -> span -> unit
(** [line:col-line:col], collapsed to [line:col] for empty spans. *)

val to_string : span -> string
