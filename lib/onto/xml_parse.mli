(** XML ingestion — hand-written parser for the XML subset ONION accepts
    (section 2.1: "we accept ontologies based on IDL specifications and
    XML-based documents, as well as simple adjacency list representations").

    The generic layer parses well-formed element trees (attributes,
    self-closing tags, comments, character data, the five predefined
    entities).  The ontology layer interprets documents of the shape:

    {v
    <ontology name="carrier">
      <relation name="drives" transitive="true"/>
      <term name="Car">
        <subclassOf term="Vehicle"/>
        <attribute term="Price"/>
        <rel label="drives" term="Road"/>
      </term>
      <instance name="MyCar" of="Car"/>
      <edge src="Car" label="SI" dst="Transport"/>
    </ontology>
    v} *)

type xml =
  | Element of string * (string * string) list * xml list
      (** tag, attributes (document order), children *)
  | Text of string

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** {1 Generic layer} *)

val parse_document : string -> (xml, error) result
(** Parse one root element (prolog and comments allowed around it).
    Whitespace-only text nodes are dropped. *)

val to_string : xml -> string
(** Serialize (entities re-escaped); inverse of {!parse_document} up to
    insignificant whitespace. *)

val attr : xml -> string -> string option
(** Attribute lookup on an [Element]; [None] on [Text] or when absent. *)

val children_named : xml -> string -> xml list
(** Child elements with the given tag, in document order. *)

(** {1 Ontology layer} *)

val ontology_of_xml : xml -> (Ontology.t, string) result
(** Interpret a parsed [<ontology>] document. *)

val ontology_to_xml : Ontology.t -> xml
(** Render an ontology as a [<term>]-oriented document; round-trips
    through {!ontology_of_xml}. *)

val parse_ontology : string -> (Ontology.t, string) result
(** [parse_document] followed by [ontology_of_xml]. *)
