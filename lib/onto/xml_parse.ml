type xml =
  | Element of string * (string * string) list * xml list
  | Text of string

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

(* ------------------------------------------------------------------ *)
(* Generic parser                                                     *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int; mutable line : int }

let fail cur message = raise (Parse_error { line = cur.line; message })

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur =
  (match peek cur with Some '\n' -> cur.line <- cur.line + 1 | _ -> ());
  cur.pos <- cur.pos + 1

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.src && String.equal (String.sub cur.src cur.pos n) s

let skip_string cur s = String.iter (fun _ -> advance cur) s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws cur =
  let rec loop () =
    match peek cur with
    | Some c when is_space c ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ()

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name cur =
  let start = cur.pos in
  let rec loop () =
    match peek cur with
    | Some c when is_name_char c ->
        advance cur;
        loop ()
    | _ -> ()
  in
  loop ();
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.src start (cur.pos - start)

let decode_entities cur s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      match String.index_from_opt s i ';' with
      | None -> fail cur "unterminated entity reference"
      | Some j ->
          let entity = String.sub s (i + 1) (j - i - 1) in
          (match entity with
          | "amp" -> Buffer.add_char buf '&'
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | e when String.length e > 1 && e.[0] = '#' -> (
              let code =
                if e.[1] = 'x' || e.[1] = 'X' then
                  int_of_string_opt ("0x" ^ String.sub e 2 (String.length e - 2))
                else int_of_string_opt (String.sub e 1 (String.length e - 1))
              in
              match code with
              | Some c when c >= 0 && c < 128 -> Buffer.add_char buf (Char.chr c)
              | Some _ -> fail cur "non-ASCII character reference unsupported"
              | None -> fail cur ("bad character reference &" ^ e ^ ";"))
          | e -> fail cur ("unknown entity &" ^ e ^ ";"));
          loop (j + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let read_attr_value cur =
  match peek cur with
  | Some (('"' | '\'') as quote) ->
      advance cur;
      let start = cur.pos in
      let rec loop () =
        match peek cur with
        | Some c when c = quote -> ()
        | Some _ ->
            advance cur;
            loop ()
        | None -> fail cur "unterminated attribute value"
      in
      loop ();
      let raw = String.sub cur.src start (cur.pos - start) in
      advance cur;
      decode_entities cur raw
  | _ -> fail cur "expected quoted attribute value"

let read_attributes cur =
  let rec loop acc =
    skip_ws cur;
    match peek cur with
    | Some ('>' | '/' | '?') -> List.rev acc
    | Some _ ->
        let attr_name = read_name cur in
        skip_ws cur;
        (match peek cur with
        | Some '=' -> advance cur
        | _ -> fail cur ("expected '=' after attribute " ^ attr_name));
        skip_ws cur;
        let value = read_attr_value cur in
        loop ((attr_name, value) :: acc)
    | None -> fail cur "unexpected end of input in tag"
  in
  loop []

let skip_comment cur =
  skip_string cur "<!--";
  let rec loop () =
    if looking_at cur "-->" then skip_string cur "-->"
    else if peek cur = None then fail cur "unterminated comment"
    else begin
      advance cur;
      loop ()
    end
  in
  loop ()

let skip_prolog_or_doctype cur =
  (* <?xml ... ?> or <!DOCTYPE ... > (no internal subset) *)
  if looking_at cur "<?" then begin
    let rec loop () =
      if looking_at cur "?>" then skip_string cur "?>"
      else if peek cur = None then fail cur "unterminated processing instruction"
      else begin
        advance cur;
        loop ()
      end
    in
    loop ()
  end
  else begin
    let rec loop () =
      match peek cur with
      | Some '>' -> advance cur
      | Some _ ->
          advance cur;
          loop ()
      | None -> fail cur "unterminated declaration"
    in
    loop ()
  end

let rec parse_element cur =
  (* cur is at '<' of a start tag *)
  advance cur;
  let tag = read_name cur in
  let attrs = read_attributes cur in
  skip_ws cur;
  if looking_at cur "/>" then begin
    skip_string cur "/>";
    Element (tag, attrs, [])
  end
  else begin
    (match peek cur with
    | Some '>' -> advance cur
    | _ -> fail cur ("malformed start tag <" ^ tag));
    let children = parse_content cur tag in
    Element (tag, attrs, children)
  end

and parse_content cur tag =
  let items = ref [] in
  let buf = Buffer.create 64 in
  let flush_text () =
    let text = Buffer.contents buf in
    Buffer.clear buf;
    if String.exists (fun c -> not (is_space c)) text then
      items := Text (decode_entities cur text) :: !items
  in
  let rec loop () =
    match peek cur with
    | None -> fail cur ("unterminated element <" ^ tag ^ ">")
    | Some '<' ->
        if looking_at cur "<!--" then begin
          flush_text ();
          skip_comment cur;
          loop ()
        end
        else if looking_at cur "</" then begin
          flush_text ();
          skip_string cur "</";
          let closing = read_name cur in
          skip_ws cur;
          (match peek cur with
          | Some '>' -> advance cur
          | _ -> fail cur ("malformed end tag </" ^ closing));
          if not (String.equal closing tag) then
            fail cur
              (Printf.sprintf "mismatched end tag: expected </%s>, got </%s>" tag
                 closing)
        end
        else begin
          flush_text ();
          items := parse_element cur :: !items;
          loop ()
        end
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
  in
  loop ();
  List.rev !items

let parse_document src =
  let cur = { src; pos = 0; line = 1 } in
  try
    let rec find_root () =
      skip_ws cur;
      match peek cur with
      | None -> fail cur "no root element"
      | Some '<' ->
          if looking_at cur "<!--" then begin
            skip_comment cur;
            find_root ()
          end
          else if looking_at cur "<?" || looking_at cur "<!" then begin
            skip_prolog_or_doctype cur;
            find_root ()
          end
          else parse_element cur
      | Some c -> fail cur (Printf.sprintf "unexpected character %C before root" c)
    in
    let root = find_root () in
    skip_ws cur;
    (* allow trailing comments *)
    let rec trailing () =
      skip_ws cur;
      if looking_at cur "<!--" then begin
        skip_comment cur;
        trailing ()
      end
      else
        match peek cur with
        | None -> ()
        | Some c -> fail cur (Printf.sprintf "trailing content %C after root" c)
    in
    trailing ();
    Ok root
  with Parse_error e -> Error e

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string xml =
  let buf = Buffer.create 1024 in
  let rec emit indent = function
    | Text t -> Buffer.add_string buf (indent ^ escape_text t ^ "\n")
    | Element (tag, attrs, children) ->
        let attrs_s =
          attrs
          |> List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape_text v))
          |> String.concat ""
        in
        if children = [] then
          Buffer.add_string buf (Printf.sprintf "%s<%s%s/>\n" indent tag attrs_s)
        else begin
          Buffer.add_string buf (Printf.sprintf "%s<%s%s>\n" indent tag attrs_s);
          List.iter (emit (indent ^ "  ")) children;
          Buffer.add_string buf (Printf.sprintf "%s</%s>\n" indent tag)
        end
  in
  emit "" xml;
  Buffer.contents buf

let attr xml attr_name =
  match xml with
  | Element (_, attrs, _) -> List.assoc_opt attr_name attrs
  | Text _ -> None

let children_named xml tag =
  match xml with
  | Element (_, _, children) ->
      List.filter
        (function Element (t, _, _) -> String.equal t tag | Text _ -> false)
        children
  | Text _ -> []

(* ------------------------------------------------------------------ *)
(* Ontology layer                                                     *)
(* ------------------------------------------------------------------ *)

let require_attr xml attr_name ~context =
  match attr xml attr_name with
  | Some v when v <> "" -> Ok v
  | Some _ -> Error (Printf.sprintf "%s: empty attribute %S" context attr_name)
  | None -> Error (Printf.sprintf "%s: missing attribute %S" context attr_name)

let ( let* ) = Result.bind

let bool_attr xml attr_name =
  match attr xml attr_name with
  | Some "true" | Some "1" | Some "yes" -> true
  | _ -> false

let interpret_relation o node =
  let* rel_name = require_attr node "name" ~context:"<relation>" in
  let props = ref [] in
  if bool_attr node "transitive" then props := Rel.Transitive :: !props;
  if bool_attr node "symmetric" then props := Rel.Symmetric :: !props;
  if bool_attr node "reflexive" then props := Rel.Reflexive :: !props;
  (match attr node "inverse-of" with
  | Some r when r <> "" -> props := Rel.Inverse_of r :: !props
  | _ -> ());
  (match attr node "implies" with
  | Some r when r <> "" -> props := Rel.Implies r :: !props
  | _ -> ());
  Ok (Ontology.declare_relation o rel_name (List.rev !props))

let interpret_term o node =
  let* term_name = require_attr node "name" ~context:"<term>" in
  let o = Ontology.add_term o term_name in
  let children = match node with Element (_, _, c) -> c | Text _ -> [] in
  List.fold_left
    (fun acc child ->
      let* o = acc in
      match child with
      | Element ("subclassOf", _, _) ->
          let* super = require_attr child "term" ~context:"<subclassOf>" in
          Ok (Ontology.add_subclass o ~sub:term_name ~super)
      | Element ("attribute", _, _) ->
          let* attr_term = require_attr child "term" ~context:"<attribute>" in
          Ok (Ontology.add_attribute o ~concept:term_name ~attr:attr_term)
      | Element ("instanceOf", _, _) ->
          let* concept = require_attr child "term" ~context:"<instanceOf>" in
          Ok (Ontology.add_instance o ~instance:term_name ~concept)
      | Element ("implies", _, _) ->
          let* general = require_attr child "term" ~context:"<implies>" in
          Ok (Ontology.add_implication o ~specific:term_name ~general)
      | Element ("rel", _, _) ->
          let* label = require_attr child "label" ~context:"<rel>" in
          let* target = require_attr child "term" ~context:"<rel>" in
          Ok (Ontology.add_rel o term_name label target)
      | Element (tag, _, _) ->
          Error (Printf.sprintf "unknown element <%s> inside <term name=%S>" tag term_name)
      | Text _ -> Ok o)
    (Ok o) children

let ontology_of_xml root =
  match root with
  | Text _ -> Error "expected an <ontology> element"
  | Element (tag, _, children) when String.equal tag "ontology" ->
      let* onto_name = require_attr root "name" ~context:"<ontology>" in
      if String.contains onto_name ':' then
        Error "<ontology>: name must not contain ':'"
      else
        List.fold_left
          (fun acc child ->
            let* o = acc in
            match child with
            | Element ("relation", _, _) -> interpret_relation o child
            | Element ("term", _, _) -> interpret_term o child
            | Element ("instance", _, _) ->
                let* inst = require_attr child "name" ~context:"<instance>" in
                let* concept = require_attr child "of" ~context:"<instance>" in
                Ok (Ontology.add_instance o ~instance:inst ~concept)
            | Element ("edge", _, _) ->
                let* src = require_attr child "src" ~context:"<edge>" in
                let* label = require_attr child "label" ~context:"<edge>" in
                let* dst = require_attr child "dst" ~context:"<edge>" in
                Ok (Ontology.add_rel o src (Rel.of_short label) dst)
            | Element (tag, _, _) ->
                Error (Printf.sprintf "unknown element <%s> inside <ontology>" tag)
            | Text _ -> Ok o)
          (Ok (Ontology.create onto_name))
          children
  | Element (tag, _, _) ->
      Error (Printf.sprintf "expected <ontology>, found <%s>" tag)

let ontology_to_xml o =
  let g = Ontology.graph o in
  let term_element term_name =
    let outs = Digraph.out_edges g term_name in
    let children =
      List.map
        (fun (e : Digraph.edge) ->
          if String.equal e.label Rel.subclass_of then
            Element ("subclassOf", [ ("term", e.dst) ], [])
          else if String.equal e.label Rel.attribute_of then
            Element ("attribute", [ ("term", e.dst) ], [])
          else if String.equal e.label Rel.instance_of then
            Element ("instanceOf", [ ("term", e.dst) ], [])
          else if String.equal e.label Rel.semantic_implication then
            Element ("implies", [ ("term", e.dst) ], [])
          else Element ("rel", [ ("label", e.label); ("term", e.dst) ], []))
        outs
    in
    Element ("term", [ ("name", term_name) ], children)
  in
  let relation_elements =
    Rel.declared (Ontology.relations o)
    |> List.filter_map (fun (rel_name, props) ->
           if props = [] then None
           else
             let attrs =
               List.filter_map
                 (fun (p : Rel.property) ->
                   match p with
                   | Rel.Transitive -> Some ("transitive", "true")
                   | Rel.Symmetric -> Some ("symmetric", "true")
                   | Rel.Reflexive -> Some ("reflexive", "true")
                   | Rel.Inverse_of r -> Some ("inverse-of", r)
                   | Rel.Implies r -> Some ("implies", r))
                 props
             in
             Some (Element ("relation", ("name", rel_name) :: attrs, [])))
  in
  Element
    ( "ontology",
      [ ("name", Ontology.name o) ],
      relation_elements @ List.map term_element (Ontology.terms o) )

let parse_ontology src =
  match parse_document src with
  | Error e -> Error (Format.asprintf "%a" pp_error e)
  | Ok root -> ontology_of_xml root
