(** Consistency checking of ontologies.

    The paper restricts attention to {e consistent} ontologies: "a term in
    an ontology does not refer to different concepts within one knowledge
    base" (section 1), which the graph representation enforces by
    construction (one node per term).  The remaining, checkable obligations
    are structural: taxonomy acyclicity, sane relationship declarations,
    and no category confusion between classes and instances.  The
    articulation engine runs these checks on generated articulations so the
    expert is warned about "inconsistencies in the suggested articulation"
    (section 2.4). *)

type severity = Error | Warning

type issue = {
  severity : severity;
  code : string;  (** Stable identifier, e.g. ["subclass-cycle"]. *)
  subject : string;  (** Term or relationship the issue is about. *)
  message : string;
}

val pp_issue : Format.formatter -> issue -> unit

val check : ?strict:bool -> Ontology.t -> issue list
(** All issues, errors first.  With [strict] (default [false]) undeclared
    relationship labels are also reported as warnings.

    Errors: [subclass-cycle] ([SubclassOf] cycles contradict the subset
    semantics), [instance-of-instance] (an instance used as a concept),
    [inverse-unknown] (an [Inverse_of] / [Implies] declaration naming an
    undeclared relationship).

    Warnings: [si-cycle] (SI cycles merely state equivalence but deserve
    expert attention), [class-and-instance] (a term used as both),
    [attribute-cycle], [undeclared-relationship] (strict only). *)

val is_consistent : Ontology.t -> bool
(** No [Error]-severity issues. *)

val errors : issue list -> issue list

val warnings : issue list -> issue list
