(** N-Triples import/export.

    The paper positions ONION in the emerging semantic-web stack (XML [1],
    RDF [4]).  This module renders ontology graphs — including qualified
    unified graphs with their bridges — as RDF N-Triples, so any RDF
    tooling can consume an articulation, and reads them back.

    Mapping: a node labeled [l] becomes the IRI [<base ^ encode l>]; an
    edge label becomes [<base ^ "rel/" ^ encode label>].  Percent-encoding
    covers characters outside the unreserved IRI set, so arbitrary term
    labels round-trip. *)

val default_base : string
(** ["urn:onion:"]. *)

val encode : string -> string
(** Percent-encode a label for IRI use; decoded by {!decode}. *)

val decode : string -> string

val of_graph : ?base:string -> Digraph.t -> string
(** One triple per edge, sorted; isolated nodes are emitted as
    [<node> <base^"rel/isolated"> <node>] self-triples so the node set
    round-trips. *)

val of_ontology : ?base:string -> Ontology.t -> string
(** The qualified graph of the ontology. *)

val to_graph : ?base:string -> string -> (Digraph.t, string) result
(** Parse N-Triples produced by {!of_graph} (and any plain N-Triples whose
    subjects/objects are IRIs under [base]; literals are rejected).
    [to_graph (of_graph g) = Ok g]. *)
