let default_base = "urn:onion:"

let unreserved c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '-' || c = '.' || c = '_' || c = '~' || c = ':' || c = '/'

let encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if unreserved c && c <> '%' then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '%' && i + 2 < n then begin
      match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
      | Some code when code >= 0 && code < 256 ->
          Buffer.add_char buf (Char.chr code);
          loop (i + 3)
      | _ ->
          Buffer.add_char buf '%';
          loop (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf

let isolated_rel = "rel/isolated"

let of_graph ?(base = default_base) g =
  let buf = Buffer.create 1024 in
  let iri label = Printf.sprintf "<%s%s>" base (encode label) in
  let rel label = Printf.sprintf "<%srel/%s>" base (encode label) in
  List.iter
    (fun n ->
      if Digraph.out_degree g n = 0 && Digraph.in_degree g n = 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s <%s%s> %s .\n" (iri n) base isolated_rel (iri n)))
    (Digraph.nodes g);
  List.iter
    (fun (e : Digraph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s .\n" (iri e.src) (rel e.label) (iri e.dst)))
    (Digraph.edges g);
  Buffer.contents buf

let of_ontology ?base o = of_graph ?base (Ontology.qualify o)

let strip_iri ~base token =
  let n = String.length token in
  if n >= 2 && token.[0] = '<' && token.[n - 1] = '>' then begin
    let inner = String.sub token 1 (n - 2) in
    let lb = String.length base in
    if String.length inner >= lb && String.equal (String.sub inner 0 lb) base then
      Ok (String.sub inner lb (String.length inner - lb))
    else Error (Printf.sprintf "IRI %s outside base %s" inner base)
  end
  else Error (Printf.sprintf "expected an IRI, got %s" token)

let to_graph ?(base = default_base) text =
  let lines = String.split_on_char '\n' text in
  let rec process g lineno = function
    | [] -> Ok g
    | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then process g (lineno + 1) rest
        else begin
          (* subject predicate object '.' — tokens are whitespace-separated
             IRIs in our output; literals are rejected. *)
          let tokens =
            String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
          in
          match tokens with
          | [ s; p; o; "." ] -> (
              let ( let* ) = Result.bind in
              let result =
                let* subject = strip_iri ~base s in
                let* predicate = strip_iri ~base p in
                let* obj = strip_iri ~base o in
                let subject = decode subject and obj = decode obj in
                if String.equal predicate isolated_rel then
                  Ok (Digraph.add_node g subject)
                else
                  let lp = String.length "rel/" in
                  if
                    String.length predicate > lp
                    && String.equal (String.sub predicate 0 lp) "rel/"
                  then
                    let label =
                      decode (String.sub predicate lp (String.length predicate - lp))
                    in
                    Ok (Digraph.add_edge g subject label obj)
                  else Error (Printf.sprintf "predicate %s is not rel/..." predicate)
              in
              match result with
              | Ok g -> process g (lineno + 1) rest
              | Error m -> Error (Printf.sprintf "line %d: %s" lineno m))
          | _ -> Error (Printf.sprintf "line %d: malformed triple" lineno)
        end
  in
  process Digraph.empty 1 lines
