type pos = { line : int; col : int }

type span = { start : pos; stop : pos }

let pos ~line ~col =
  if line < 1 || col < 1 then invalid_arg "Loc.pos: line and column are 1-based";
  { line; col }

let span start stop = { start; stop }

let compare_pos a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c

let of_offset text offset =
  let n = String.length text in
  let offset = if offset < 0 then 0 else min offset n in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if text.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { line = !line; col = offset - !bol + 1 }

let line_span text wanted =
  let n = String.length text in
  (* Walk lines, remembering the last one so overshooting clamps. *)
  let rec walk lineno start =
    let stop =
      match String.index_from_opt text start '\n' with
      | Some i -> i
      | None -> n
    in
    if lineno = wanted || stop >= n then
      {
        start = { line = lineno; col = 1 };
        stop = { line = lineno; col = stop - start + 1 };
      }
    else walk (lineno + 1) (stop + 1)
  in
  walk 1 0

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let find_word text needle =
  let nt = String.length text and nn = String.length needle in
  if nn = 0 then None
  else begin
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i + nn <= nt do
      if
        String.sub text !i nn = needle
        && ((!i = 0 || not (is_word_char text.[!i - 1]))
           && (!i + nn >= nt || not (is_word_char text.[!i + nn])))
      then found := Some !i
      else incr i
    done;
    Option.map
      (fun off ->
        let start = of_offset text off in
        { start; stop = { start with col = start.col + nn } })
      !found
  end

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

let pp_span ppf s =
  if compare_pos s.start s.stop = 0 then pp_pos ppf s.start
  else Format.fprintf ppf "%a-%a" pp_pos s.start pp_pos s.stop

let to_string s = Format.asprintf "%a" pp_span s
