type step = Write | Rename | Read | Remove

type action =
  | Proceed
  | Crash of string
  | Torn of float
  | Fail of string
  | Corrupt

exception Crashed of string

let counter = ref 0
let hook : (op:int -> step:step -> path:string -> action) option ref = ref None
let protected_depth = ref 0

let set_hook h = hook := h
let ops () = !counter
let reset_ops () = counter := 0
let in_protected () = !protected_depth > 0

let protect f =
  incr protected_depth;
  Fun.protect ~finally:(fun () -> decr protected_depth) f

(* Every primitive step passes through here: the counter always advances
   (so harnesses can measure an operation's IO footprint with no hook
   installed), and the hook, when present, rules on the step. *)
let consult step path =
  let op = !counter in
  incr counter;
  match !hook with None -> Proceed | Some f -> f ~op ~step ~path

let tmp_suffix = ".onion-tmp"
let is_tmp path = Filename.check_suffix path tmp_suffix

(* Unix-level writes so the payload can be fsynced before the rename
   makes it visible. *)
let write_raw path content =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length content in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd content !written (n - !written)
      done;
      Unix.fsync fd)

(* Directory fsync makes the rename durable; not every filesystem allows
   opening a directory, so failures here are ignored. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let wrap_unix path f =
  try f ()
  with Unix.Unix_error (e, _, _) ->
    raise (Sys_error (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let write path content =
  let tmp = path ^ tmp_suffix in
  (match consult Write tmp with
  | Proceed -> wrap_unix tmp (fun () -> write_raw tmp content)
  | Torn fraction ->
      let keep =
        let f = Float.max 0.0 (Float.min 1.0 fraction) in
        int_of_float (f *. float_of_int (String.length content))
      in
      wrap_unix tmp (fun () -> write_raw tmp (String.sub content 0 keep));
      raise (Crashed (Printf.sprintf "torn write of %s" tmp))
  | Crash m -> raise (Crashed m)
  | Fail m -> raise (Sys_error (Printf.sprintf "%s: %s" tmp m))
  | Corrupt -> wrap_unix tmp (fun () -> write_raw tmp content));
  match consult Rename path with
  | Proceed | Corrupt ->
      wrap_unix path (fun () -> Unix.rename tmp path);
      fsync_dir (Filename.dirname path)
  | Crash m ->
      (* Tmp is fully written but never published: the torn-state the
         protocol is designed to survive. *)
      raise (Crashed m)
  | Torn _ -> raise (Crashed ("crash before rename of " ^ path))
  | Fail m ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise (Sys_error (Printf.sprintf "%s: %s" path m))

let read path =
  let plain () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match consult Read path with
  | Proceed -> plain ()
  | Crash m -> raise (Crashed m)
  | Fail m -> raise (Sys_error (Printf.sprintf "%s: %s" path m))
  | Corrupt ->
      let content = plain () in
      if String.length content = 0 then content
      else begin
        let b = Bytes.of_string content in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        Bytes.to_string b
      end
  | Torn fraction ->
      let content = plain () in
      let keep =
        let f = Float.max 0.0 (Float.min 1.0 fraction) in
        int_of_float (f *. float_of_int (String.length content))
      in
      String.sub content 0 keep

(* Chunked fold over a file's bytes: one IO op on the fault surface,
   like [read].  The injected Corrupt/Torn actions need the whole
   content to mutate, so those (test-only) branches fall back to
   buffering; the Proceed path never holds more than [chunk_bytes]. *)
let fold_file ?(chunk_bytes = 65536) path ~init ~f =
  let chunk_bytes = max 1 chunk_bytes in
  let feed_string content =
    let n = String.length content in
    let rec go acc pos =
      if pos >= n then acc
      else
        let len = min chunk_bytes (n - pos) in
        let buf = Bytes.of_string (String.sub content pos len) in
        go (f acc buf len) (pos + len)
    in
    go init 0
  in
  let plain () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match consult Read path with
  | Proceed ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let buf = Bytes.create chunk_bytes in
          let rec go acc =
            let len = input ic buf 0 chunk_bytes in
            if len = 0 then acc else go (f acc buf len)
          in
          go init)
  | Crash m -> raise (Crashed m)
  | Fail m -> raise (Sys_error (Printf.sprintf "%s: %s" path m))
  | Corrupt ->
      let content = plain () in
      if String.length content = 0 then feed_string content
      else begin
        let b = Bytes.of_string content in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
        feed_string (Bytes.to_string b)
      end
  | Torn fraction ->
      let content = plain () in
      let keep =
        let f = Float.max 0.0 (Float.min 1.0 fraction) in
        int_of_float (f *. float_of_int (String.length content))
      in
      feed_string (String.sub content 0 keep)

let remove path =
  match consult Remove path with
  | Crash m -> raise (Crashed m)
  | Fail m -> raise (Sys_error (Printf.sprintf "%s: %s" path m))
  | Proceed | Torn _ | Corrupt -> Sys.remove path
