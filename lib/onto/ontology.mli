(** Ontologies: a named, directed labeled graph of terms plus the declared
    properties of its relationships (section 2.1, "the ONION data layer").

    A consistent ontology has one node per term, so terms are node labels.
    Values are immutable. *)

type t

val create : ?relations:Rel.registry -> string -> t
(** [create name] is an empty ontology.  [relations] defaults to
    {!Rel.standard_registry}.
    @raise Invalid_argument on an empty or colon-containing name (the name
    is used as qualification prefix). *)

val name : t -> string

val graph : t -> Digraph.t

val relations : t -> Rel.registry

val with_graph : t -> Digraph.t -> t
(** Replace the underlying graph, keeping name and relation registry. *)

val with_name : t -> string -> t
(** Rename the ontology (prefix used by {!qualify}). *)

val revision : t -> int
(** The ontology's {!Revision} stamp: refreshed by any change to the
    name, graph or relation registry; kept by no-op mutations (adding an
    existing term, removing an absent relationship).  Equal revisions
    imply the very same ontology value — see {!Digraph.revision}. *)

(** {1 Construction} *)

val add_term : t -> string -> t

val add_rel : t -> string -> string -> string -> t
(** [add_rel o src relationship dst] adds one labeled edge, creating
    endpoint terms as needed. *)

val add_subclass : t -> sub:string -> super:string -> t
(** Edge [sub -SubclassOf-> super]. *)

val add_attribute : t -> concept:string -> attr:string -> t
(** Edge [concept -AttributeOf-> attr]. *)

val add_instance : t -> instance:string -> concept:string -> t
(** Edge [instance -InstanceOf-> concept]. *)

val add_implication : t -> specific:string -> general:string -> t
(** Edge [specific -SI-> general] (intra-ontology semantic implication). *)

val declare_relation : t -> string -> Rel.property list -> t

val remove_term : t -> string -> t
(** ND: removes the term and all incident relationships. *)

val remove_rel : t -> string -> string -> string -> t

(** {1 Queries} *)

val has_term : t -> string -> bool

val has_rel : t -> string -> string -> string -> bool

val terms : t -> string list
(** Sorted. *)

val relationships : t -> Digraph.edge list

val nb_terms : t -> int

val nb_relationships : t -> int

val subclasses : t -> string -> string list
(** Direct subclasses (sorted). *)

val superclasses : t -> string -> string list
(** Direct superclasses (sorted). *)

val all_subclasses : t -> string -> string list
(** Transitive subclasses, honouring the [SubclassOf] transitivity
    declaration; empty when the relation is not declared transitive and
    there is no direct edge. *)

val all_superclasses : t -> string -> string list

val is_subclass : t -> sub:string -> super:string -> bool
(** Transitive subclass test ([sub] is not its own subclass). *)

val attributes : t -> string -> string list
(** Attribute nodes of a concept, including those inherited from
    transitive superclasses, sorted. *)

val own_attributes : t -> string -> string list
(** Attribute nodes attached directly to the concept, sorted. *)

val instances : t -> string -> string list
(** Direct instances of a concept plus instances of its transitive
    subclasses, sorted. *)

val roots : t -> string list
(** Terms with no outgoing [SubclassOf] edge, sorted: the top concepts. *)

val leaves : t -> string list
(** Terms with no incoming [SubclassOf] edge, sorted. *)

(** {1 Derived views} *)

val closure : t -> t
(** Expand every declared relationship property (transitive closure,
    symmetry, inverses, implications) to a fixpoint.  The result is a new
    ontology; the original is untouched (the paper separates the inference
    engine from the representation, section 2.1). *)

val qualify : t -> Digraph.t
(** The graph with every node renamed to its qualified form
    ["name:term"] — the rendering used inside unified ontologies. *)

val restrict : t -> string list -> t
(** Sub-ontology induced by the given terms. *)

val term_of : t -> string -> Term.t
(** Qualify one term of this ontology. *)

val equal : t -> t -> bool
(** Same name, same graph.  Relation registries are not compared. *)

val pp : Format.formatter -> t -> unit
