(** Qualified ontology terms.

    Within one (consistent) ontology a term is just its label; across
    ontologies the paper prefixes terms with their ontology, as in
    [carrier:Car] (section 4.1).  Unified-ontology graphs use this
    qualified rendering as node labels, which keeps same-named terms of
    different sources distinct. *)

type t = { ontology : string; name : string }

val make : ontology:string -> string -> t
(** @raise Invalid_argument on an empty ontology or term name. *)

val qualified : t -> string
(** ["carrier:Car"]. *)

val of_qualified : string -> t option
(** Parse ["onto:name"]; [None] if there is no colon or a side is empty.
    Only the first colon separates, so names may contain colons. *)

val of_string : default_ontology:string -> string -> t
(** Parse ["onto:name"], or attribute a bare ["name"] to the default
    ontology. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
