(** IDL ingestion — the second structured source format of section 2.1.

    A small ODMG-flavoured IDL subset is accepted:

    {v
    // carrier's export schema
    module carrier {
      interface Vehicle {
        attribute float price;
      };
      interface Car : Vehicle {
        attribute string owner;
        relationship Driver drivenBy;
      };
    };
    v}

    [interface X : Y, Z] yields [X -SubclassOf-> Y] and [X -SubclassOf-> Z];
    each [attribute <type> <name>;] yields [X -AttributeOf-> <name>] (the
    declared type is recorded as a term related through the custom
    [hasType] label); [relationship <Target> <name>;] yields an edge
    labeled [<name>] from the interface to the target interface. *)

type error = { line : int; col : int; message : string }
(** 1-based line and column of the offending token (see {!Loc}). *)

val pp_error : Format.formatter -> error -> unit

val parse_ontology : ?name:string -> string -> (Ontology.t, error) result
(** Parse a module (the module name becomes the ontology name) or, when
    the document has only bare interfaces, an ontology named by [name]
    (default ["idl"]). *)

val parse_ontology_exn : ?name:string -> string -> Ontology.t
(** @raise Invalid_argument on parse errors. *)

val has_type_label : string
(** The edge label relating an attribute to its declared IDL type. *)
