(** Crash-safe primitive file IO, with an injectable fault surface.

    Every byte the toolkit persists (registered sources, stored
    articulations, exported files) funnels through this module, which
    implements the classic atomic-publish protocol:

    {v
    write <path>.onion-tmp   (full payload)
    fsync                    (payload durable before it is visible)
    rename -> <path>         (atomic on POSIX: readers see old or new)
    fsync <dir>              (the rename itself is durable)
    v}

    A crash at any point leaves either the previous committed file or a
    stray [*.onion-tmp] — never a torn committed file.  Stray tmp files
    are quarantined by {!Workspace.fsck}.

    The module also hosts the {e mechanism} half of fault injection: a
    single pluggable hook consulted before every primitive step, plus a
    monotonically increasing operation counter so harnesses can address
    "the Nth IO operation".  The {e policy} half (fault plans, seeding,
    retry) lives in [Durable_io] in the store layer. *)

type step =
  | Write  (** Writing the payload into the tmp file (incl. fsync). *)
  | Rename  (** Publishing the tmp file over the destination. *)
  | Read  (** Reading a whole file. *)
  | Remove  (** Unlinking a file. *)

type action =
  | Proceed  (** Execute the step normally. *)
  | Crash of string
      (** Simulated process death before the step executes: raises
          {!Crashed}.  Whatever is on disk stays on disk. *)
  | Torn of float
      (** Only meaningful at {!Write}: persist just that fraction of the
          payload bytes into the tmp file, then die ({!Crashed}). *)
  | Fail of string
      (** Transient environment failure ([ENOSPC], [EINTR]-ish): the step
          does not happen and [Sys_error] is raised.  A supervisor may
          retry. *)
  | Corrupt
      (** Only meaningful at {!Read}: return the file's content with one
          byte flipped (silent media corruption). *)

exception Crashed of string
(** Simulated process death.  Test harnesses catch this where a real
    deployment would restart the process. *)

val set_hook : (op:int -> step:step -> path:string -> action) option -> unit
(** Install (or clear) the fault hook.  The hook sees the global op index
    and decides the action; [None] (the default) means all ops proceed. *)

val ops : unit -> int
(** Primitive IO steps executed since the last {!reset_ops}. *)

val reset_ops : unit -> unit

val protect : (unit -> 'a) -> 'a
(** Mark a retry-supervised region: probabilistic transient-fault noise
    (CI's [ONION_FAULT_SEED] mode) only fires inside such regions, so
    unsupervised writers are never handed failures nobody retries. *)

val in_protected : unit -> bool

val tmp_suffix : string
(** [".onion-tmp"] — the in-flight suffix the protocol uses; anything
    carrying it after a restart is a torn write. *)

val is_tmp : string -> bool

val write : string -> string -> unit
(** [write path content]: the atomic protocol above.
    @raise Sys_error on real or injected environment failure.
    @raise Crashed on injected crashes. *)

val read : string -> string
(** Whole-file read.
    @raise Sys_error / {!Crashed} as above. *)

val fold_file :
  ?chunk_bytes:int -> string -> init:'a -> f:('a -> bytes -> int -> 'a) -> 'a
(** [fold_file path ~init ~f] folds [f acc buf len] over the file's
    bytes in chunks of at most [chunk_bytes] (default 64 KiB) without
    buffering the whole file.  One op on the fault surface, same actions
    as {!read} (the injected Corrupt/Torn branches buffer, as they must
    mutate whole content).  [buf] is reused between calls: consume the
    first [len] bytes before returning.
    @raise Sys_error / {!Crashed} as above. *)

val remove : string -> unit
(** Unlink through the fault surface. *)
