type error = { line : int; col : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d, col %d: %s" e.line e.col e.message

exception Parse_error of error

let has_type_label = "hasType"

(* ------------------------------------------------------------------ *)
(* Tokenizer                                                          *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Lbrace
  | Rbrace
  | Colon
  | Semicolon
  | Comma
  | Eof

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Lbrace -> Format.pp_print_string ppf "'{'"
  | Rbrace -> Format.pp_print_string ppf "'}'"
  | Colon -> Format.pp_print_string ppf "':'"
  | Semicolon -> Format.pp_print_string ppf "';'"
  | Comma -> Format.pp_print_string ppf "','"
  | Eof -> Format.pp_print_string ppf "end of input"

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  (* offset of the current line's first byte, for columns *)
  let i = ref 0 in
  let pos_at off = { Loc.line = !line; col = off - !bol + 1 } in
  let fail message = raise (Parse_error { line = !line; col = !i - !bol + 1; message }) in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_'
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then begin
          incr line;
          bol := !i + 1
        end;
        if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail "unterminated block comment"
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      tokens := (Ident (String.sub src start (!i - start)), pos_at start) :: !tokens
    end
    else begin
      let tok =
        match c with
        | '{' -> Lbrace
        | '}' -> Rbrace
        | ':' -> Colon
        | ';' -> Semicolon
        | ',' -> Comma
        | c -> fail (Printf.sprintf "unexpected character %C" c)
      in
      tokens := (tok, pos_at !i) :: !tokens;
      incr i
    end
  done;
  List.rev ((Eof, pos_at !i) :: !tokens)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (token * Loc.pos) list }

let peek s =
  match s.toks with
  | (t, p) :: _ -> (t, p)
  | [] -> (Eof, { Loc.line = 1; col = 1 })

let next s =
  let t = peek s in
  (match s.toks with [] -> () | _ :: rest -> s.toks <- rest);
  t

let fail_at (p : Loc.pos) message =
  raise (Parse_error { line = p.Loc.line; col = p.Loc.col; message })

let expect s want ~context =
  let got, line = next s in
  if got <> want then
    fail_at line
      (Format.asprintf "%s: expected %a, found %a" context pp_token want pp_token got)

let expect_ident s ~context =
  match next s with
  | Ident id, _ -> id
  | got, line ->
      fail_at line
        (Format.asprintf "%s: expected an identifier, found %a" context pp_token got)

(* interface X [: Y, Z] { members };  — returns updated ontology *)
let rec parse_interface s o =
  let iface = expect_ident s ~context:"interface" in
  let o = Ontology.add_term o iface in
  let o =
    match peek s with
    | Colon, _ ->
        ignore (next s);
        let rec supers o =
          let super = expect_ident s ~context:"interface supertypes" in
          let o = Ontology.add_subclass o ~sub:iface ~super in
          match peek s with
          | Comma, _ ->
              ignore (next s);
              supers o
          | _ -> o
        in
        supers o
    | _ -> o
  in
  expect s Lbrace ~context:("interface " ^ iface);
  let o = parse_members s o iface in
  expect s Rbrace ~context:("interface " ^ iface);
  expect s Semicolon ~context:("interface " ^ iface);
  o

and parse_members s o iface =
  match peek s with
  | Rbrace, _ -> o
  | Ident "attribute", _ ->
      ignore (next s);
      let type_name = expect_ident s ~context:"attribute" in
      let attr_name = expect_ident s ~context:"attribute" in
      expect s Semicolon ~context:"attribute";
      let o = Ontology.add_attribute o ~concept:iface ~attr:attr_name in
      let o = Ontology.add_rel o attr_name has_type_label type_name in
      parse_members s o iface
  | Ident "relationship", _ ->
      ignore (next s);
      let target = expect_ident s ~context:"relationship" in
      let rel_name = expect_ident s ~context:"relationship" in
      expect s Semicolon ~context:"relationship";
      let o = Ontology.add_rel o iface rel_name target in
      parse_members s o iface
  | got, line ->
      fail_at line
        (Format.asprintf "interface %s: expected 'attribute' or 'relationship', found %a"
           iface pp_token got)

let parse_toplevel s default_name =
  match peek s with
  | Ident "module", _ ->
      ignore (next s);
      let module_name = expect_ident s ~context:"module" in
      expect s Lbrace ~context:("module " ^ module_name);
      let rec interfaces o =
        match peek s with
        | Ident "interface", _ ->
            ignore (next s);
            interfaces (parse_interface s o)
        | Rbrace, _ ->
            ignore (next s);
            o
        | got, line ->
            fail_at line
              (Format.asprintf "module %s: expected 'interface', found %a" module_name
                 pp_token got)
      in
      let o = interfaces (Ontology.create module_name) in
      (match peek s with
      | Semicolon, _ -> ignore (next s)
      | _ -> ());
      expect s Eof ~context:"module";
      o
  | Ident "interface", _ ->
      let rec interfaces o =
        match peek s with
        | Ident "interface", _ ->
            ignore (next s);
            interfaces (parse_interface s o)
        | Eof, _ -> o
        | got, line ->
            fail_at line
              (Format.asprintf "expected 'interface' or end of input, found %a" pp_token
                 got)
      in
      interfaces (Ontology.create default_name)
  | got, line ->
      fail_at line
        (Format.asprintf "expected 'module' or 'interface', found %a" pp_token got)

let parse_ontology ?(name = "idl") src =
  try Ok (parse_toplevel { toks = tokenize src } name)
  with Parse_error e -> Error e

let parse_ontology_exn ?name src =
  match parse_ontology ?name src with
  | Ok o -> o
  | Error e -> invalid_arg (Format.asprintf "Idl_parse: %a" pp_error e)
