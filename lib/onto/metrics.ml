type t = {
  terms : int;
  relationships : int;
  relation_labels : (string * int) list;
  roots : int;
  leaves : int;
  max_depth : int;
  avg_fanout : float;
  attribute_terms : int;
  instances : int;
}

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* Longest SubclassOf chain, cycle-safe: depth over the label-filtered DAG
   with memoization; nodes on a cycle fall back to the depth already on the
   path. *)
let max_depth g =
  let memo = Hashtbl.create 64 in
  let rec depth on_path n =
    match Hashtbl.find_opt memo n with
    | Some d -> d
    | None ->
        if Sset.mem n on_path then 0
        else begin
          let on_path = Sset.add n on_path in
          let supers = Digraph.succ_by g n Rel.subclass_of in
          let d =
            match supers with
            | [] -> 0
            | _ -> 1 + List.fold_left (fun acc s -> max acc (depth on_path s)) 0 supers
          in
          Hashtbl.replace memo n d;
          d
        end
  in
  Digraph.fold_nodes (fun n acc -> max acc (depth Sset.empty n)) g 0

let compute o =
  let g = Ontology.graph o in
  let relation_labels =
    Digraph.fold_edges
      (fun (e : Digraph.edge) acc ->
        Smap.update e.label (function Some c -> Some (c + 1) | None -> Some 1) acc)
      g Smap.empty
    |> Smap.bindings
  in
  let fanouts =
    Digraph.fold_nodes
      (fun n acc ->
        let subs = List.length (Digraph.pred_by g n Rel.subclass_of) in
        if subs > 0 then subs :: acc else acc)
      g []
  in
  let avg_fanout =
    match fanouts with
    | [] -> 0.0
    | fs ->
        float_of_int (List.fold_left ( + ) 0 fs) /. float_of_int (List.length fs)
  in
  let attribute_terms =
    Digraph.fold_edges
      (fun (e : Digraph.edge) acc ->
        if String.equal e.label Rel.attribute_of then Sset.add e.dst acc else acc)
      g Sset.empty
    |> Sset.cardinal
  in
  let instances =
    Digraph.fold_edges
      (fun (e : Digraph.edge) acc ->
        if String.equal e.label Rel.instance_of then Sset.add e.src acc else acc)
      g Sset.empty
    |> Sset.cardinal
  in
  {
    terms = Ontology.nb_terms o;
    relationships = Ontology.nb_relationships o;
    relation_labels;
    roots = List.length (Ontology.roots o);
    leaves = List.length (Ontology.leaves o);
    max_depth = max_depth g;
    avg_fanout;
    attribute_terms;
    instances;
  }

let pp ppf m =
  Format.fprintf ppf "@[<v>%d terms, %d relationships" m.terms m.relationships;
  Format.fprintf ppf "@,taxonomy: %d roots, %d leaves, depth %d, fanout %.1f"
    m.roots m.leaves m.max_depth m.avg_fanout;
  Format.fprintf ppf "@,%d attribute terms, %d instances" m.attribute_terms
    m.instances;
  List.iter
    (fun (label, count) -> Format.fprintf ppf "@,  %-16s %d" label count)
    m.relation_labels;
  Format.fprintf ppf "@]"
