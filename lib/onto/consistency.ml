type severity = Error | Warning

type issue = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
}

let pp_issue ppf i =
  Format.fprintf ppf "[%s] %s: %s (%s)"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.code i.message i.subject

let issue severity code subject message = { severity; code; subject; message }

let cycle_issues g ~label ~severity ~code ~message =
  let follow = Traversal.only [ label ] in
  let sccs = Traversal.strongly_connected_components ~follow g in
  let multi = List.filter (fun c -> List.length c > 1) sccs in
  let selfloops =
    List.filter (fun n -> Digraph.mem_edge g n label n) (Digraph.nodes g)
  in
  List.map
    (fun c -> issue severity code (String.concat ", " c) message)
    multi
  @ List.map (fun n -> issue severity code n (message ^ " (self-loop)")) selfloops

let check ?(strict = false) o =
  let g = Ontology.graph o in
  let registry = Ontology.relations o in
  let issues = ref [] in
  let add i = issues := i :: !issues in

  (* Taxonomy acyclicity. *)
  List.iter add
    (cycle_issues g ~label:Rel.subclass_of ~severity:Error ~code:"subclass-cycle"
       ~message:"SubclassOf cycle: a class cannot be a proper subclass of itself");

  (* SI cycles state equivalence; flag for the expert. *)
  List.iter add
    (cycle_issues g ~label:Rel.semantic_implication ~severity:Warning
       ~code:"si-cycle"
       ~message:"semantic-implication cycle: terms are mutually implied (equivalent)");

  (* Attribute cycles. *)
  List.iter add
    (cycle_issues g ~label:Rel.attribute_of ~severity:Warning
       ~code:"attribute-cycle" ~message:"AttributeOf cycle");

  (* Category confusion. *)
  let is_instance n = Digraph.succ_by g n Rel.instance_of <> [] in
  let has_instances n = Digraph.pred_by g n Rel.instance_of <> [] in
  let is_class n =
    Digraph.succ_by g n Rel.subclass_of <> []
    || Digraph.pred_by g n Rel.subclass_of <> []
    || has_instances n
  in
  List.iter
    (fun n ->
      if is_instance n && has_instances n then
        add
          (issue Error "instance-of-instance" n
             "term is an instance and simultaneously has instances");
      if is_instance n && is_class n && not (has_instances n) then
        add
          (issue Warning "class-and-instance" n
             "term participates in the taxonomy and is also an instance"))
    (Digraph.nodes g);

  (* Declaration sanity. *)
  let declared_names = List.map fst (Rel.declared registry) in
  List.iter
    (fun (rel_name, props) ->
      List.iter
        (fun (p : Rel.property) ->
          match p with
          | Rel.Inverse_of other | Rel.Implies other ->
              if not (List.mem other declared_names) then
                add
                  (issue Error "inverse-unknown" rel_name
                     (Format.asprintf
                        "property %a names undeclared relationship %s"
                        Rel.pp_property p other))
          | Rel.Transitive | Rel.Symmetric | Rel.Reflexive -> ())
        props)
    (Rel.declared registry);

  (* Undeclared edge labels (strict mode). *)
  if strict then
    List.iter
      (fun label ->
        if (not (List.mem label declared_names)) && not (Rel.is_conversion_label label)
        then
          add
            (issue Warning "undeclared-relationship" label
               "edge label has no relationship declaration"))
      (Digraph.edge_labels g);

  let severity_rank = function Error -> 0 | Warning -> 1 in
  List.stable_sort
    (fun a b ->
      match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.subject b.subject
          | c -> c)
      | c -> c)
    (List.rev !issues)

let errors issues = List.filter (fun i -> i.severity = Error) issues
let warnings issues = List.filter (fun i -> i.severity = Warning) issues
let is_consistent o = errors (check o) = []
