type t = { ontology : string; name : string }

let make ~ontology name =
  if String.length ontology = 0 then invalid_arg "Term.make: empty ontology name";
  if String.length name = 0 then invalid_arg "Term.make: empty term name";
  { ontology; name }

let qualified t = t.ontology ^ ":" ^ t.name

let of_qualified s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
      let ontology = String.sub s 0 i in
      let name = String.sub s (i + 1) (String.length s - i - 1) in
      if ontology = "" || name = "" then None else Some { ontology; name }

let of_string ~default_ontology s =
  match of_qualified s with
  | Some t -> t
  | None -> make ~ontology:default_ontology s

let equal t1 t2 =
  String.equal t1.ontology t2.ontology && String.equal t1.name t2.name

let compare t1 t2 =
  match String.compare t1.ontology t2.ontology with
  | 0 -> String.compare t1.name t2.name
  | c -> c

let pp ppf t = Format.pp_print_string ppf (qualified t)
