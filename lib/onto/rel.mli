(** Semantic relationships and their algebraic properties.

    Ontology graphs label edges with either pre-defined semantic
    relationships — [SubclassOf], [AttributeOf], [InstanceOf], semantic
    implication — or free natural-language verbs.  The paper requires each
    ontology to carry "rules that define the properties of each
    relationship, e.g. ... the transitive nature of the SubclassOf
    relationship" (section 2.5); those property declarations live here and
    drive the inference engine. *)

(** {1 Standard relationship labels}

    Canonical edge-label strings.  Fig. 2 abbreviates them S / A / I / SI;
    {!short} maps to those display forms. *)

val subclass_of : string
(** ["SubclassOf"] — displayed [S]. *)

val attribute_of : string
(** ["AttributeOf"] — displayed [A].  Directed from the concept to its
    attribute node, matching the pattern notation [truck(O: owner, model)]
    which reads attributes off outgoing edges. *)

val instance_of : string
(** ["InstanceOf"] — displayed [I]. *)

val semantic_implication : string
(** ["SI"] — semantic implication inside one ontology. *)

val si_bridge : string
(** ["SIBridge"] — the semantic-bridge label connecting a source-ontology
    term to an articulation-ontology term (section 4.1). *)

val short : string -> string
(** Display abbreviation (["S"], ["A"], ["I"], ["SI"], ["SIB"]); other
    labels render unchanged. *)

val of_short : string -> string
(** Inverse of {!short} on the standard abbreviations; other strings are
    returned unchanged. *)

val is_conversion_label : string -> bool
(** Functional-rule edges are labeled with the converter name followed by
    ["()"], e.g. ["DGToEuroFn()"] (section 4.1, Functional Rules). *)

val conversion_label : string -> string
(** [conversion_label "DGToEuroFn"] is ["DGToEuroFn()"]. *)

val conversion_name : string -> string option
(** [conversion_name "DGToEuroFn()"] is [Some "DGToEuroFn"]. *)

(** {1 Property declarations} *)

type property =
  | Transitive  (** a R b, b R c |- a R c *)
  | Symmetric  (** a R b |- b R a *)
  | Reflexive  (** a R a for every term (used by consistency checks only) *)
  | Inverse_of of string  (** a R b |- b R' a *)
  | Implies of string  (** a R b |- a R' b (e.g. InstanceOf implies membership) *)

val equal_property : property -> property -> bool

val pp_property : Format.formatter -> property -> unit

type registry
(** Relationship-name -> property set, the per-ontology rule store. *)

val empty_registry : registry

val standard_registry : registry
(** [SubclassOf] transitive; [SI] transitive; [SIBridge] carries no closure
    property (bridges compose through the articulation ontology, not by
    raw transitivity); [AttributeOf] and [InstanceOf] plain. *)

val declare : registry -> string -> property list -> registry
(** Add properties to a relationship (cumulative, duplicate-free). *)

val properties : registry -> string -> property list

val has_property : registry -> string -> property -> bool

val is_transitive : registry -> string -> bool

val declared : registry -> (string * property list) list
(** All declarations, sorted by relationship name. *)

val merge : registry -> registry -> registry
