type job = { run : unit -> unit; expire : unit -> unit; deadline : Deadline.t }

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (** Signals workers: job queued or stopping. *)
  idle : Condition.t;  (** Signals drainers: queue empty and nothing runs. *)
  jobs : job Queue.t;
  capacity : int;
  mutable in_flight : int;
  mutable expired : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable threads : Thread.t list;
}

type verdict = Accepted | Shed of { depth : int } | Draining

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if Queue.is_empty t.jobs && not t.stopped then begin
        Condition.wait t.work_ready t.mutex;
        await ()
      end
    in
    await ();
    match Queue.take_opt t.jobs with
    | None ->
        (* Stopped and empty. *)
        Mutex.unlock t.mutex;
        ()
    | Some job ->
        t.in_flight <- t.in_flight + 1;
        (* A job whose deadline passed while it waited is resolved with
           its expire callback instead of being run — the cheapest
           possible disposition, and the client still gets an answer
           (a timeout reply) rather than work it can no longer use. *)
        let timed_out = Deadline.expired job.deadline in
        if timed_out then t.expired <- t.expired + 1;
        Mutex.unlock t.mutex;
        (try (if timed_out then job.expire else job.run) () with _ -> ());
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        if Queue.is_empty t.jobs && t.in_flight = 0 then
          Condition.broadcast t.idle;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ~capacity ~workers =
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      idle = Condition.create ();
      jobs = Queue.create ();
      capacity = max 0 capacity;
      in_flight = 0;
      expired = 0;
      draining = false;
      stopped = false;
      threads = [];
    }
  in
  t.threads <- List.init (max 1 workers) (fun _ -> Thread.create worker t);
  t

(* Drop queued jobs whose deadline has passed; returns them so their
   expire callbacks can run outside the lock. *)
let purge_expired_locked t =
  if Queue.is_empty t.jobs then []
  else begin
    let keep = Queue.create () in
    let dropped = ref [] in
    Queue.iter
      (fun j ->
        if Deadline.expired j.deadline then dropped := j :: !dropped
        else Queue.add j keep)
      t.jobs;
    (match !dropped with
    | [] -> ()
    | ds ->
        Queue.clear t.jobs;
        Queue.transfer keep t.jobs;
        t.expired <- t.expired + List.length ds);
    List.rev !dropped
  end

let submit ?(deadline = Deadline.never) ?(on_expired = fun () -> ()) t run =
  Mutex.lock t.mutex;
  let purged = ref [] in
  let verdict =
    if t.draining || t.stopped then Draining
    else begin
      (* Deadline-aware shedding: a full queue first evicts queued jobs
         that already expired — they can never do useful work — and
         admits into the space reclaimed.  Under overload this beats
         plain FIFO: fresh requests with live budgets displace corpses
         instead of being shed behind them. *)
      if Queue.length t.jobs >= t.capacity then
        purged := purge_expired_locked t;
      if Queue.length t.jobs >= t.capacity then
        Shed { depth = Queue.length t.jobs }
      else begin
        Queue.add { run; expire = on_expired; deadline } t.jobs;
        Condition.signal t.work_ready;
        Accepted
      end
    end
  in
  Mutex.unlock t.mutex;
  List.iter (fun j -> try j.expire () with _ -> ()) !purged;
  verdict

let depth t =
  Mutex.lock t.mutex;
  let d = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  d

let in_flight t =
  Mutex.lock t.mutex;
  let n = t.in_flight in
  Mutex.unlock t.mutex;
  n

let expired_total t =
  Mutex.lock t.mutex;
  let n = t.expired in
  Mutex.unlock t.mutex;
  n

let drain ?deadline t =
  match deadline with
  | None ->
      Mutex.lock t.mutex;
      t.draining <- true;
      while not (Queue.is_empty t.jobs && t.in_flight = 0) do
        Condition.wait t.idle t.mutex
      done;
      Mutex.unlock t.mutex
  | Some deadline ->
      Mutex.lock t.mutex;
      t.draining <- true;
      Mutex.unlock t.mutex;
      (* The stdlib Condition has no timed wait, so the bounded drain
         polls.  When the grace deadline passes, every still-queued job
         is resolved through its expire callback and the drain returns
         even if in-flight jobs remain — the caller's hard stop makes
         those raise at their next cooperative check, and [shutdown]'s
         join collects the workers. *)
      let rec wait () =
        Mutex.lock t.mutex;
        let idle = Queue.is_empty t.jobs && t.in_flight = 0 in
        Mutex.unlock t.mutex;
        if idle then ()
        else if Deadline.expired deadline then begin
          Mutex.lock t.mutex;
          let dropped = ref [] in
          Queue.iter (fun j -> dropped := j :: !dropped) t.jobs;
          Queue.clear t.jobs;
          t.expired <- t.expired + List.length !dropped;
          Mutex.unlock t.mutex;
          List.iter (fun j -> try j.expire () with _ -> ()) (List.rev !dropped)
        end
        else begin
          Thread.delay 0.002;
          wait ()
        end
      in
      wait ()

let shutdown ?deadline t =
  drain ?deadline t;
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join threads
