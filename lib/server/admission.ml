(* Sharded, tenant-aware admission with domain workers.

   PR 4's admission was one mutex-guarded FIFO drained by sys-threads —
   every request executed inside the accept loop's domain, interleaving
   under one runtime lock however many cores the machine had.  Here the
   worker crew is [Domain.spawn]ed, so N workers execute N requests
   truly in parallel, and the queue is striped: one shard per worker,
   each with its own lock, submits distributed round-robin.  A worker
   drains its own shard first and steals from the others when empty, so
   handoff contention is per-shard, not global.

   Within a shard, jobs are grouped per tenant and picked round-robin
   across tenants: a tenant with one queued request waits behind at most
   one job per busy tenant, not behind a hot tenant's whole backlog.
   Shedding is fair-share aware: when the (global) queue is full, a
   tenant still under its share [capacity / #tenants] displaces the
   newest queued job of the most backed-up other tenant (answered
   through [on_evicted], a busy reply) instead of being shed behind it.

   The deadline semantics of PR 7 are preserved: a full queue first
   evicts queued jobs whose deadline already passed, a job whose
   deadline passes while queued is resolved through [on_expired] at
   pickup, and a bounded drain resolves still-queued jobs the same way
   when the grace runs out. *)

type job = {
  run : unit -> unit;
  expire : unit -> unit;
  evict : depth:int -> unit;
  deadline : Deadline.t;
  tenant : string;
}

type shard = {
  s_lock : Mutex.t;
  queues : (string, job Queue.t) Hashtbl.t;
  mutable order : string list;  (** round-robin ring over tenants *)
}

type t = {
  shards : shard array;
  capacity : int;
  tenants : string list;  (** registered; fair share = capacity / length *)
  pending : int Atomic.t;  (** queued, not yet picked up *)
  running : int Atomic.t;
  rr : int Atomic.t;  (** round-robin submit cursor *)
  counts_lock : Mutex.t;
  queued_by_tenant : (string, int) Hashtbl.t;  (** under [counts_lock] *)
  mutable expired : int;  (** under [counts_lock] *)
  mutable evicted : int;  (** under [counts_lock] *)
  mutable shed_by_tenant : (string * int) list;  (** under [counts_lock] *)
  mutable draining : bool;  (** under [counts_lock] *)
  stop_flag : bool Atomic.t;
  bell_lock : Mutex.t;
  bell : Condition.t;  (** idle workers sleep here; submits ring it *)
  idle_lock : Mutex.t;
  idle : Condition.t;  (** drainers sleep here; the last job rings it *)
  mutable domains : unit Domain.t list;
}

type verdict = Accepted | Shed of { depth : int } | Draining

let default_tenant = "default"

(* ------------------------------------------------------------------ *)
(* Shard operations (caller holds nothing; each takes the shard lock) *)
(* ------------------------------------------------------------------ *)

let shard_push sh job =
  Mutex.lock sh.s_lock;
  (match Hashtbl.find_opt sh.queues job.tenant with
  | Some q -> Queue.add job q
  | None ->
      let q = Queue.create () in
      Queue.add job q;
      Hashtbl.add sh.queues job.tenant q;
      sh.order <- sh.order @ [ job.tenant ]);
  Mutex.unlock sh.s_lock

(* Round-robin across the shard's tenants: serve the first tenant in the
   ring with work, then rotate it to the back so its neighbours go next. *)
let shard_pop sh =
  Mutex.lock sh.s_lock;
  let rec go seen = function
    | [] -> (None, List.rev seen)
    | tn :: rest -> (
        match Hashtbl.find_opt sh.queues tn with
        | Some q when not (Queue.is_empty q) ->
            (Some (Queue.take q), List.rev_append seen (rest @ [ tn ]))
        | _ -> go (tn :: seen) rest)
  in
  let job, order = go [] sh.order in
  sh.order <- order;
  Mutex.unlock sh.s_lock;
  job

(* Drop queued jobs whose deadline has passed; returns them so their
   expire callbacks can run outside the locks. *)
let shard_purge_expired sh =
  Mutex.lock sh.s_lock;
  let dropped = ref [] in
  Hashtbl.iter
    (fun _ q ->
      if not (Queue.is_empty q) then begin
        let keep = Queue.create () in
        Queue.iter
          (fun j ->
            if Deadline.expired j.deadline then dropped := j :: !dropped
            else Queue.add j keep)
          q;
        if !dropped <> [] then begin
          Queue.clear q;
          Queue.transfer keep q
        end
      end)
    sh.queues;
  Mutex.unlock sh.s_lock;
  !dropped

(* Remove the newest queued job of [tenant] (the back of its longest
   shard queue): the victim asked most recently, so displacing it keeps
   per-tenant FIFO fairness. *)
let steal_newest_of t tenant =
  let best = ref None in
  Array.iter
    (fun sh ->
      Mutex.lock sh.s_lock;
      (match Hashtbl.find_opt sh.queues tenant with
      | Some q ->
          let len = Queue.length q in
          let cur = match !best with Some (_, _, l) -> l | None -> 0 in
          if len > cur then best := Some (sh, q, len)
      | None -> ());
      Mutex.unlock sh.s_lock)
    t.shards;
  match !best with
  | None -> None
  | Some (sh, q, _) ->
      Mutex.lock sh.s_lock;
      (* Re-validated under the lock: the queue may have drained since. *)
      let victim =
        if Queue.is_empty q then None
        else begin
          let keep = Queue.create () in
          let n = Queue.length q in
          for _ = 1 to n - 1 do
            Queue.add (Queue.take q) keep
          done;
          let last = Queue.take q in
          Queue.transfer keep q;
          Some last
        end
      in
      Mutex.unlock sh.s_lock;
      victim

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let tenant_queued_locked t tn =
  Option.value (Hashtbl.find_opt t.queued_by_tenant tn) ~default:0

let adjust_queued t tn delta =
  Mutex.lock t.counts_lock;
  Hashtbl.replace t.queued_by_tenant tn (tenant_queued_locked t tn + delta);
  Mutex.unlock t.counts_lock

let note_dropped t jobs =
  if jobs <> [] then begin
    Mutex.lock t.counts_lock;
    List.iter
      (fun j ->
        Hashtbl.replace t.queued_by_tenant j.tenant
          (tenant_queued_locked t j.tenant - 1))
      jobs;
    t.expired <- t.expired + List.length jobs;
    Mutex.unlock t.counts_lock;
    List.iter (fun _ -> Atomic.decr t.pending) jobs
  end

(* ------------------------------------------------------------------ *)
(* Workers                                                            *)
(* ------------------------------------------------------------------ *)

let take_job t me =
  match shard_pop t.shards.(me) with
  | Some j -> Some j
  | None ->
      let n = Array.length t.shards in
      let rec sweep k =
        if k >= n then None
        else
          match shard_pop t.shards.((me + k) mod n) with
          | Some j -> Some j
          | None -> sweep (k + 1)
      in
      sweep 1

let maybe_ring_idle t =
  if Atomic.get t.pending = 0 && Atomic.get t.running = 0 then begin
    Mutex.lock t.idle_lock;
    Condition.broadcast t.idle;
    Mutex.unlock t.idle_lock
  end

let worker t me () =
  let rec loop () =
    match take_job t me with
    | Some job ->
        Atomic.decr t.pending;
        adjust_queued t job.tenant (-1);
        (* A job whose deadline passed while it waited is resolved with
           its expire callback instead of being run — the cheapest
           possible disposition, and the client still gets an answer
           (a timeout reply) rather than work it can no longer use. *)
        let timed_out = Deadline.expired job.deadline in
        if timed_out then begin
          Mutex.lock t.counts_lock;
          t.expired <- t.expired + 1;
          Mutex.unlock t.counts_lock;
          (try job.expire () with _ -> ())
        end
        else begin
          Atomic.incr t.running;
          (try job.run () with _ -> ());
          Atomic.decr t.running
        end;
        maybe_ring_idle t;
        loop ()
    | None ->
        if not (Atomic.get t.stop_flag) then begin
          Mutex.lock t.bell_lock;
          if Atomic.get t.pending = 0 && not (Atomic.get t.stop_flag) then
            Condition.wait t.bell t.bell_lock;
          Mutex.unlock t.bell_lock;
          loop ()
        end
  in
  loop ()

let create ?(tenants = [ default_tenant ]) ~capacity ~workers () =
  let workers = max 1 workers in
  let t =
    {
      shards =
        Array.init workers (fun _ ->
            { s_lock = Mutex.create (); queues = Hashtbl.create 4; order = [] });
      capacity = max 0 capacity;
      tenants = (if tenants = [] then [ default_tenant ] else tenants);
      pending = Atomic.make 0;
      running = Atomic.make 0;
      rr = Atomic.make 0;
      counts_lock = Mutex.create ();
      queued_by_tenant = Hashtbl.create 4;
      expired = 0;
      evicted = 0;
      shed_by_tenant = [];
      draining = false;
      stop_flag = Atomic.make false;
      bell_lock = Mutex.create ();
      bell = Condition.create ();
      idle_lock = Mutex.create ();
      idle = Condition.create ();
      domains = [];
    }
  in
  t.domains <- List.init workers (fun i -> Domain.spawn (worker t i));
  t

let fair_share t =
  t.capacity / max 1 (List.length t.tenants)

let note_shed t tn =
  Mutex.lock t.counts_lock;
  t.shed_by_tenant <-
    (let cur =
       Option.value (List.assoc_opt tn t.shed_by_tenant) ~default:0
     in
     (tn, cur + 1) :: List.remove_assoc tn t.shed_by_tenant);
  Mutex.unlock t.counts_lock

let enqueue t job =
  let i = Atomic.fetch_and_add t.rr 1 mod Array.length t.shards in
  shard_push t.shards.(i) job;
  Atomic.incr t.pending;
  adjust_queued t job.tenant 1;
  Mutex.lock t.bell_lock;
  Condition.signal t.bell;
  Mutex.unlock t.bell_lock

let submit ?(tenant = default_tenant) ?(deadline = Deadline.never)
    ?(on_expired = fun () -> ()) ?(on_evicted = fun ~depth:_ -> ()) t run =
  let job =
    { run; expire = on_expired; evict = on_evicted; deadline; tenant }
  in
  Mutex.lock t.counts_lock;
  let draining = t.draining in
  Mutex.unlock t.counts_lock;
  if draining || Atomic.get t.stop_flag then Draining
  else if Atomic.get t.pending < t.capacity then begin
    enqueue t job;
    Accepted
  end
  else begin
    (* Deadline-aware shedding first: a full queue evicts queued jobs
       that already expired — they can never do useful work — and
       admits into the space reclaimed.  Under overload this beats
       plain FIFO: fresh requests with live budgets displace corpses
       instead of being shed behind them. *)
    let purged =
      List.concat_map shard_purge_expired (Array.to_list t.shards)
    in
    note_dropped t purged;
    List.iter (fun j -> try j.expire () with _ -> ()) purged;
    if Atomic.get t.pending < t.capacity then begin
      enqueue t job;
      Accepted
    end
    else begin
      (* Fair-share arbitration: a tenant still under its share of the
         queue displaces the newest job of the most backed-up other
         tenant; a tenant at or over its share is shed itself. *)
      let depth = Atomic.get t.pending in
      Mutex.lock t.counts_lock;
      let mine = tenant_queued_locked t tenant in
      let hog =
        Hashtbl.fold
          (fun tn n best ->
            if tn = tenant then best
            else
              match best with
              | Some (_, bn) when bn >= n -> best
              | _ when n > 0 -> Some (tn, n)
              | _ -> best)
          t.queued_by_tenant None
      in
      Mutex.unlock t.counts_lock;
      match hog with
      | Some (hog_tn, hog_n) when mine < fair_share t && hog_n > mine -> (
          match steal_newest_of t hog_tn with
          | Some victim ->
              Atomic.decr t.pending;
              adjust_queued t victim.tenant (-1);
              Mutex.lock t.counts_lock;
              t.evicted <- t.evicted + 1;
              Mutex.unlock t.counts_lock;
              note_shed t victim.tenant;
              (try victim.evict ~depth with _ -> ());
              enqueue t job;
              Accepted
          | None ->
              note_shed t tenant;
              Shed { depth })
      | _ ->
          note_shed t tenant;
          Shed { depth }
    end
  end

let depth t = Atomic.get t.pending

let tenant_depth t tn =
  Mutex.lock t.counts_lock;
  let n = tenant_queued_locked t tn in
  Mutex.unlock t.counts_lock;
  n

let in_flight t = Atomic.get t.running

let expired_total t =
  Mutex.lock t.counts_lock;
  let n = t.expired in
  Mutex.unlock t.counts_lock;
  n

let evicted_total t =
  Mutex.lock t.counts_lock;
  let n = t.evicted in
  Mutex.unlock t.counts_lock;
  n

let shed_by_tenant t =
  Mutex.lock t.counts_lock;
  let l = List.sort (fun (a, _) (b, _) -> String.compare a b) t.shed_by_tenant in
  Mutex.unlock t.counts_lock;
  l

let quiescent t = Atomic.get t.pending = 0 && Atomic.get t.running = 0

let drain ?deadline t =
  Mutex.lock t.counts_lock;
  t.draining <- true;
  Mutex.unlock t.counts_lock;
  match deadline with
  | None ->
      Mutex.lock t.idle_lock;
      while not (quiescent t) do
        Condition.wait t.idle t.idle_lock
      done;
      Mutex.unlock t.idle_lock
  | Some deadline ->
      (* The stdlib Condition has no timed wait, so the bounded drain
         polls.  When the grace deadline passes, every still-queued job
         is resolved through its expire callback and the drain returns
         even if in-flight jobs remain — the caller's hard stop makes
         those raise at their next cooperative check, and [shutdown]'s
         join collects the workers. *)
      let rec wait () =
        if quiescent t then ()
        else if Deadline.expired deadline then begin
          let dropped =
            Array.to_list t.shards
            |> List.concat_map (fun sh ->
                   Mutex.lock sh.s_lock;
                   let jobs = ref [] in
                   Hashtbl.iter
                     (fun _ q ->
                       Queue.iter (fun j -> jobs := j :: !jobs) q;
                       Queue.clear q)
                     sh.queues;
                   Mutex.unlock sh.s_lock;
                   List.rev !jobs)
          in
          note_dropped t dropped;
          List.iter (fun j -> try j.expire () with _ -> ()) dropped
        end
        else begin
          Thread.delay 0.002;
          wait ()
        end
      in
      wait ()

let shutdown ?deadline t =
  drain ?deadline t;
  Atomic.set t.stop_flag true;
  Mutex.lock t.bell_lock;
  Condition.broadcast t.bell;
  Mutex.unlock t.bell_lock;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds
