type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (** Signals workers: job queued or stopping. *)
  idle : Condition.t;  (** Signals drainers: queue empty and nothing runs. *)
  jobs : (unit -> unit) Queue.t;
  capacity : int;
  mutable in_flight : int;
  mutable draining : bool;
  mutable stopped : bool;
  mutable threads : Thread.t list;
}

type verdict = Accepted | Shed of { depth : int } | Draining

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec await () =
      if Queue.is_empty t.jobs && not t.stopped then begin
        Condition.wait t.work_ready t.mutex;
        await ()
      end
    in
    await ();
    match Queue.take_opt t.jobs with
    | None ->
        (* Stopped and empty. *)
        Mutex.unlock t.mutex;
        ()
    | Some job ->
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.mutex;
        (try job () with _ -> ());
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        if Queue.is_empty t.jobs && t.in_flight = 0 then
          Condition.broadcast t.idle;
        Mutex.unlock t.mutex;
        loop ()
  in
  loop ()

let create ~capacity ~workers =
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      idle = Condition.create ();
      jobs = Queue.create ();
      capacity = max 0 capacity;
      in_flight = 0;
      draining = false;
      stopped = false;
      threads = [];
    }
  in
  t.threads <- List.init (max 1 workers) (fun _ -> Thread.create worker t);
  t

let submit t job =
  Mutex.lock t.mutex;
  let verdict =
    if t.draining || t.stopped then Draining
    else if Queue.length t.jobs >= t.capacity then
      Shed { depth = Queue.length t.jobs }
    else begin
      Queue.add job t.jobs;
      Condition.signal t.work_ready;
      Accepted
    end
  in
  Mutex.unlock t.mutex;
  verdict

let depth t =
  Mutex.lock t.mutex;
  let d = Queue.length t.jobs in
  Mutex.unlock t.mutex;
  d

let in_flight t =
  Mutex.lock t.mutex;
  let n = t.in_flight in
  Mutex.unlock t.mutex;
  n

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  while not (Queue.is_empty t.jobs && t.in_flight = 0) do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  drain t;
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work_ready;
  let threads = t.threads in
  t.threads <- [];
  Mutex.unlock t.mutex;
  List.iter Thread.join threads
