(** Request metrics for the query daemon.

    Every request the server answers is measured: per-op counters
    (ok / error), an in-flight gauge, a bounded log-scaled latency
    histogram per op (so p50/p99 come from fixed memory however long the
    daemon runs), admission-control tallies (accepted / shed busy /
    refused while draining), and the movement of the {!Cache_stats}
    counters since the daemon started — the warm-cache dividend a
    long-lived process exists to collect.

    All entry points are thread-safe: connection threads and admission
    workers record concurrently. *)

type t

val create : unit -> t
(** Also snapshots the current {!Cache_stats} counters as the baseline
    for {!cache_deltas}. *)

(** {1 Recording} *)

val incr_in_flight : t -> unit
val decr_in_flight : t -> unit

val record : t -> op:string -> ok:bool -> ns:float -> unit
(** One finished request: latency in nanoseconds, success or error. *)

val shed : t -> unit
(** One request refused with a [busy] reply. *)

val refused_draining : t -> unit
(** One request refused with a [draining] reply. *)

val protocol_error : t -> unit
(** One malformed frame answered with an error reply. *)

val timeout : t -> unit
(** One request whose deadline expired mid-execution (answered
    [timeout]). *)

val expired_in_queue : t -> unit
(** One request whose deadline expired while queued (answered [timeout]
    without running). *)

val io_stall : t -> unit
(** One connection dropped by the slow-client defense (socket timeout
    or frame-progress watchdog). *)

val conn_expired : t -> unit
(** One connection closed by the per-connection lifetime cap. *)

(** {1 Reading} *)

type op_stats = {
  op : string;
  ok : int;
  errors : int;
  p50_ns : float;  (** Histogram-estimated median latency. *)
  p99_ns : float;
  max_ns : float;
  total_ns : float;
}

type snapshot = {
  uptime_s : float;
  in_flight : int;
  accepted : int;  (** Requests admitted for execution. *)
  shed_busy : int;
  refused_draining : int;
  protocol_errors : int;
  timeouts : int;  (** Deadlines blown mid-execution. *)
  expired_in_queue : int;  (** Deadlines blown while queued. *)
  io_stalls : int;  (** Connections dropped by the slow-client defense. *)
  conns_expired : int;  (** Connections past the lifetime cap. *)
  ops : op_stats list;  (** Sorted by op name. *)
  cache_deltas : (string * Cache_stats.snapshot) list;
      (** Per-cache counter movement since {!create}: hits / misses /
          evictions are deltas; entries / capacity are current. *)
  plans : (string * int) list;
      (** The adaptive planners' strategy distribution
          ({!Cache_stats.plan_counts}): how often each execution strategy
          (["match.naive"], ["pool.parallel"], ...) was chosen over the
          process lifetime.  Lives here rather than in the [status] body
          because status is a pure function of the workspace (concurrent
          replies are bit-for-bit equal) while these counters move with
          every planned request. *)
}

val snapshot : t -> snapshot

val in_flight : t -> int

val to_json : ?extra:(string * string) list -> t -> string
(** The [stats] protocol reply body.  [extra] appends top-level fields
    whose values are already-rendered JSON (the server passes the
    workspace's circuit-breaker array). *)

val pp : Format.formatter -> t -> unit
(** Human rendering, logged when the daemon drains. *)
