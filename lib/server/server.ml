type config = {
  tcp : (string * int) option;
  unix_path : string option;
  queue_capacity : int;
  workers : int;
  max_frame : int;
  io_timeout_ms : int;
  conn_lifetime_ms : int;
  default_deadline_ms : int;
  grace_ms : int;
}

let env_ms name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> default)
  | None -> default

let default_config =
  {
    tcp = None;
    unix_path = None;
    queue_capacity = 64;
    workers = 4;
    max_frame = Protocol.default_max_frame;
    io_timeout_ms = env_ms "ONION_IO_TIMEOUT_MS" 30_000;
    conn_lifetime_ms = env_ms "ONION_CONN_LIFETIME_MS" 600_000;
    default_deadline_ms = env_ms "ONION_DEFAULT_DEADLINE_MS" 0;
    grace_ms = env_ms "ONION_GRACE_MS" 5_000;
  }

type t = {
  config : config;
  (* Workspaces served by this daemon, in configuration order; the first
     is the default tenant (requests without a [workspace=] attribute).
     Names are unique — [create] rejects duplicates. *)
  tenants : (string * Workspace.t) list;
  admission : Admission.t;
  stats : Server_stats.t;
  listeners : Unix.file_descr list;
  tcp_port : int option;
  unix_path : string option;
  stop_flag : bool Atomic.t;
  (* Live client connections, so shutdown can disconnect lingerers. *)
  conn_mutex : Mutex.t;
  mutable conn_fds : Unix.file_descr list;
  mutable conn_threads : Thread.t list;
}

(* ------------------------------------------------------------------ *)
(* Listeners                                                          *)
(* ------------------------------------------------------------------ *)

let listen_tcp host port =
  let inet =
    try Unix.inet_addr_of_string host
    with _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with _ -> raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (inet, port));
  Unix.listen fd 128;
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, actual_port)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  fd

let rec find_dup = function
  | [] -> None
  | n :: rest -> if List.mem n rest then Some n else find_dup rest

let create config tenants =
  if config.tcp = None && config.unix_path = None then
    Error "serve: configure a TCP port and/or a Unix socket path"
  else if tenants = [] then Error "serve: configure at least one workspace"
  else
    match find_dup (List.map fst tenants) with
    | Some n -> Error (Printf.sprintf "serve: duplicate workspace name %S" n)
    | None -> begin
        (* A peer vanishing mid-reply must not kill the daemon. *)
        (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
        (* Spawn the persistent compute pool now so no request pays a
           domain spawn. *)
        Domain_pool.ensure_started ();
        match
          let tcp_listener =
            Option.map (fun (host, port) -> listen_tcp host port) config.tcp
          in
          let unix_listener = Option.map listen_unix config.unix_path in
          (tcp_listener, unix_listener)
        with
        | exception Unix.Unix_error (e, fn, arg) ->
            Error
              (Printf.sprintf "serve: cannot listen (%s %s: %s)" fn arg
                 (Unix.error_message e))
        | tcp_listener, unix_listener ->
            Ok
              {
                config;
                tenants;
                admission =
                  Admission.create
                    ~tenants:(List.map fst tenants)
                    ~capacity:config.queue_capacity ~workers:config.workers ();
                stats = Server_stats.create ();
                listeners =
                  List.filter_map Fun.id
                    [ Option.map fst tcp_listener; unix_listener ];
                tcp_port = Option.map snd tcp_listener;
                unix_path = config.unix_path;
                stop_flag = Atomic.make false;
                conn_mutex = Mutex.create ();
                conn_fds = [];
                conn_threads = [];
              }
      end

let stop t = Atomic.set t.stop_flag true
let stats t = t.stats
let port t = t.tcp_port

let addresses t =
  (match (t.config.tcp, t.tcp_port) with
  | Some (host, _), Some port -> [ Printf.sprintf "tcp://%s:%d" host port ]
  | _ -> [])
  @
  match t.unix_path with
  | Some path -> [ Printf.sprintf "unix://%s" path ]
  | None -> []

let default_tenant t = List.hd t.tenants

let tenant_for t req =
  match req.Protocol.workspace with
  | None -> Ok (default_tenant t)
  | Some name -> (
      match List.assoc_opt name t.tenants with
      | Some ws -> Ok (name, ws)
      | None -> Error (Printf.sprintf "unknown workspace %S" name))

(* ------------------------------------------------------------------ *)
(* Request execution                                                  *)
(* ------------------------------------------------------------------ *)

(* Per-DOMAIN mediator-environment memos, keyed by workspace root: the
   admission workers are domains, so each one keeps its own memo table
   and no lock is ever taken on the request path.  The revision check is
   physical equality on the space value — Workspace.space and
   Workspace.query_space return the identical value while the on-disk
   fingerprint is unchanged (their rebuilds are serialised under the
   workspace memo lock), so a rolled fingerprint changes the value and
   every domain rebuilds its env lazily on next use.  Each root keeps a
   short MRU list rather than one slot, because a paged tenant serves
   several routed group spaces concurrently (one per anchor group) and a
   single slot would thrash between them.  N tenants x N domains idle
   envs are the price of lock-free reads; envs are a few closures over
   the space, not copies of the data. *)
let env_memo_width = 8

let env_memos :
    (string, (Federation.t * Mediator.env) list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let env_for ws space =
  let tbl = Domain.DLS.get env_memos in
  let key = Workspace.root ws in
  let entries = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  match List.find_opt (fun (s, _) -> s == space) entries with
  | Some (_, env) ->
      (* Move to front so the width bound evicts the coldest space. *)
      let rest = List.filter (fun (s, _) -> not (s == space)) entries in
      Hashtbl.replace tbl key ((space, env) :: rest);
      env
  | None ->
      let kbs =
        List.map
          (fun o ->
            Kb.of_ontology_instances ~ontology:o ("kb-" ^ Ontology.name o))
          space.Federation.sources
      in
      let env = Mediator.env_federated ~kbs ~space () in
      let entries =
        List.filteri (fun i _ -> i < env_memo_width - 1) entries
      in
      Hashtbl.replace tbl key ((space, env) :: entries);
      env

let health_warnings health =
  if Health.ok health then []
  else
    List.map
      (fun i -> Format.asprintf "%a" Health.pp_issue i)
      health.Health.issues

(* Queries go through Workspace.query_space: on a paged tenant the
   anchor label routes to its articulation group and only that group is
   decoded.  The default ontology must come from the FULL workspace
   (Workspace.default_ontology), not the routed space's own primary
   articulation — otherwise restricting the space would change how a
   bare concept in the query text parses.  Reply warnings cover the
   parts actually serving the routed space plus store-level strays;
   the status/health ops still scan the whole workspace. *)
let run_query ws text =
  if String.trim text = "" then Protocol.error "query: empty query text"
  else
    match Workspace.query_space ws text with
    | Error m -> Protocol.error ("workspace: " ^ m)
    | Ok (space, health) -> (
        let env = env_for ws space in
        match
          Mediator.run_text
            ?default_ontology:(Workspace.default_ontology ws)
            env text
        with
        | Ok report ->
            Protocol.ok
              ~warnings:(health_warnings health)
              (Format.asprintf "%a" Mediator.pp_report report ^ "\n")
        | Error m -> Protocol.error ("query error: " ^ m))

let run_algebra ws arg =
  let op, name =
    match String.index_opt arg ' ' with
    | None -> (arg, "")
    | Some i ->
        ( String.sub arg 0 i,
          String.trim (String.sub arg (i + 1) (String.length arg - i - 1)) )
  in
  let op = String.lowercase_ascii op in
  if name = "" then
    Protocol.error "algebra: usage: algebra union|intersection|difference <articulation>"
  else
    match Workspace.load_articulation ws name with
    | Error m -> Protocol.error ("algebra: " ^ m)
    | Ok art -> (
        let sources () =
          match
            ( Workspace.load_source ws (Articulation.left art),
              Workspace.load_source ws (Articulation.right art) )
          with
          | Ok l, Ok r -> Ok (l, r)
          | Error m, _ | _, Error m -> Error m
        in
        match op with
        | "intersection" ->
            Protocol.ok (Render.ontology_tree (Algebra.intersection art))
        | "union" -> (
            match sources () with
            | Error m -> Protocol.error ("algebra: " ^ m)
            | Ok (left, right) ->
                Protocol.ok
                  (Render.unified_overview (Algebra.union ~left ~right art)))
        | "difference" -> (
            match sources () with
            | Error m -> Protocol.error ("algebra: " ^ m)
            | Ok (left, right) ->
                Protocol.ok
                  (Render.ontology_tree
                     (Algebra.difference ~minuend:left ~subtrahend:right art)))
        | other ->
            Protocol.error
              (Printf.sprintf
                 "algebra: unknown operator %s (union|intersection|difference)"
                 other))

let run_workload ws (req : Protocol.request) =
  match req.Protocol.op with
  | "query" -> run_query ws req.Protocol.arg
  | "algebra" -> run_algebra ws req.Protocol.arg
  | "status" -> Protocol.ok (Status_json.workspace ws)
  | "health" -> Protocol.ok (Status_json.health (Workspace.health ws))
  | op -> Protocol.error (Printf.sprintf "unknown op %S" op)

let is_workload op =
  match op with
  | "query" | "algebra" | "status" | "health" -> true
  | _ -> false

(* The retry hint scales with how backed up the queue is; shedding at
   depth 0 (capacity 0, the test configuration) still suggests a pause. *)
let retry_ms_for depth = min 1000 (25 * (depth + 1))

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

let forget_connection t fd =
  Mutex.lock t.conn_mutex;
  t.conn_fds <- List.filter (fun f -> f != fd) t.conn_fds;
  Mutex.unlock t.conn_mutex

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e9)

let busy_reply depth =
  {
    Protocol.status = Protocol.Busy { depth; retry_ms = retry_ms_for depth };
    warnings = [];
    body = "";
  }

(* Execute one admitted workload request: the connection thread parks on
   a cell an admission worker domain fills, then writes the reply back
   itself — execution happens on the worker's domain, reply IO stays
   with the owning connection.  The request's deadline rides along:
   expiry while queued resolves the cell with a timeout reply (so the
   connection thread never wedges), and expiry mid-execution surfaces as
   Deadline.Expired from a cooperative check inside the workload.
   Fair-share eviction resolves the cell with a busy reply. *)
let execute_admitted t tenant ws req deadline =
  if Deadline.expired deadline then begin
    (* Dead on arrival (or deadline-ms <= 0): answer without queueing. *)
    Server_stats.expired_in_queue t.stats;
    Protocol.timeout "deadline expired while queued"
  end
  else begin
    let cell = ref None in
    let m = Mutex.create () in
    let ready = Condition.create () in
    let fill reply =
      Mutex.lock m;
      cell := Some reply;
      Condition.signal ready;
      Mutex.unlock m
    in
    let job () =
      let reply =
        try Deadline.with_deadline deadline (fun () -> run_workload ws req)
        with
        | Deadline.Expired ->
            Server_stats.timeout t.stats;
            Protocol.timeout "deadline expired during execution"
        | e -> Protocol.error ("internal error: " ^ Printexc.to_string e)
      in
      fill reply
    in
    let on_expired () =
      Server_stats.expired_in_queue t.stats;
      fill (Protocol.timeout "deadline expired while queued")
    in
    let on_evicted ~depth =
      Server_stats.shed t.stats;
      fill (busy_reply depth)
    in
    match
      Admission.submit ~tenant ~deadline ~on_expired ~on_evicted t.admission
        job
    with
    | Admission.Shed { depth } ->
        Server_stats.shed t.stats;
        busy_reply depth
    | Admission.Draining ->
        Server_stats.refused_draining t.stats;
        { Protocol.status = Protocol.Draining; warnings = []; body = "" }
    | Admission.Accepted ->
        Mutex.lock m;
        while !cell = None do
          Condition.wait ready m
        done;
        let reply = Option.get !cell in
        Mutex.unlock m;
        reply
  end

(* A workspace's circuit breakers, rendered for the stats body. *)
let breakers_json ws =
  let str s = "\"" ^ Status_json.escape s ^ "\"" in
  let one (b : Breaker.info) =
    Printf.sprintf
      "{ \"name\": %s, \"state\": %s, \"failures\": %d, \"cooldown_ms\": %d }"
      (str b.Breaker.name)
      (str (Breaker.string_of_state b.Breaker.info_state))
      b.Breaker.info_failures b.Breaker.info_cooldown_ms
  in
  "[" ^ String.concat ", " (List.map one (Workspace.breakers ws)) ^ "]"

(* Per-tenant view: admission pressure, breaker state and block-cache
   residency, one object per configured workspace. *)
let workspaces_json t =
  let str s = "\"" ^ Status_json.escape s ^ "\"" in
  let shed = Admission.shed_by_tenant t.admission in
  let one (name, ws) =
    let bc = Workspace.block_stats ws in
    Printf.sprintf
      "{ \"name\": %s, \"queued\": %d, \"shed\": %d, \"breakers\": %s, \
       \"block_cache\": { \"entries\": %d, \"bytes\": %d } }"
      (str name)
      (Admission.tenant_depth t.admission name)
      (Option.value (List.assoc_opt name shed) ~default:0)
      (breakers_json ws) bc.Block_cache.entries bc.Block_cache.bytes
  in
  "[" ^ String.concat ", " (List.map one t.tenants) ^ "]"

(* Process-wide segment-store counters: lifetime block-cache traffic
   (the "store.*" plan counters survive Cache_stats.clear_all) plus
   current residency against the byte budget. *)
let store_json () =
  let count name =
    Option.value ~default:0 (List.assoc_opt name (Cache_stats.plan_counts ()))
  in
  Printf.sprintf
    "{ \"segments_loaded\": %d, \"block_hits\": %d, \"block_misses\": %d, \
     \"block_evictions\": %d, \"bytes_resident\": %d, \"budget_bytes\": %d }"
    (count "store.segment_load")
    (count "store.block_hit")
    (count "store.block_miss")
    (count "store.block_evict")
    (Workspace.block_cache_resident ())
    (Workspace.block_cache_budget ())

(* Incremental-analysis plan counters: how much re-linting the delta
   engine consumed, skipped and patched.  Like "store.*" and "pool.*"
   these survive Cache_stats.clear_all — clearing caches models a cold
   start, not an amnesiac planner. *)
let delta_json () =
  let count name =
    Option.value ~default:0 (List.assoc_opt name (Cache_stats.plan_counts ()))
  in
  Printf.sprintf
    "{ \"ops\": %d, \"passes_rerun\": %d, \"passes_skipped\": %d, \
     \"index_patches\": %d }"
    (count "delta.ops")
    (count "delta.passes_rerun")
    (count "delta.passes_skipped")
    (count "delta.index_patch")

let handle_request t (req : Protocol.request) =
  (* Snapshot before the gauge ticks up: a lone stats probe reads the
     daemon as idle rather than counting itself in flight. *)
  let stats_body =
    if req.Protocol.op = "stats" then
      Some
        (Server_stats.to_json
           ~extra:
             [
               ("breakers", breakers_json (snd (default_tenant t)));
               ("workspaces", workspaces_json t);
               ("store", store_json ());
               ("delta", delta_json ());
             ]
           t.stats)
    else None
  in
  (* The request's time budget: an explicit deadline-ms attribute wins;
     otherwise the configured default (0 = none). *)
  let deadline =
    match req.Protocol.deadline_ms with
    | Some ms -> Deadline.after_ms ms
    | None ->
        if t.config.default_deadline_ms > 0 then
          Deadline.after_ms t.config.default_deadline_ms
        else Deadline.never
  in
  Server_stats.incr_in_flight t.stats;
  Fun.protect
    ~finally:(fun () -> Server_stats.decr_in_flight t.stats)
    (fun () ->
      let reply, ns =
        timed (fun () ->
            match req.Protocol.op with
            | "ping" -> Protocol.ok "pong\n"
            | "stats" -> Protocol.ok (Option.get stats_body)
            | "shutdown" ->
                stop t;
                Protocol.ok "draining, then exiting\n"
            | op when is_workload op -> (
                match tenant_for t req with
                | Error m -> Protocol.error m
                | Ok (tenant, ws) ->
                    execute_admitted t tenant ws req deadline)
            | op -> Protocol.error (Printf.sprintf "unknown op %S" op))
      in
      (match reply.Protocol.status with
      | Protocol.Ok | Protocol.Error ->
          Server_stats.record t.stats ~op:req.Protocol.op
            ~ok:(reply.Protocol.status = Protocol.Ok)
            ~ns
      | Protocol.Busy _ | Protocol.Draining | Protocol.Timeout -> ());
      reply)

let handle_connection t fd =
  (* Slow-client defense: reads and writes that make no progress for
     io_timeout_ms fail (surfacing as Stalled) instead of pinning this
     thread; the same budget bounds whole-frame progress inside
     read_frame.  Socket options only exist on sockets — the raw-stream
     unit tests drive this code over files, where setsockopt fails and
     is ignored. *)
  let io_ms = t.config.io_timeout_ms in
  if io_ms > 0 then begin
    let s = float_of_int io_ms /. 1000. in
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with _ -> ()
  end;
  let budget_ms = if io_ms > 0 then Some io_ms else None in
  let conn_deadline =
    if t.config.conn_lifetime_ms > 0 then
      Deadline.after_ms t.config.conn_lifetime_ms
    else Deadline.never
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send reply =
    try Protocol.write_frame oc (Protocol.encode_reply reply)
    with _ ->
      (* A write timeout means the peer stopped reading: drop it. *)
      Server_stats.io_stall t.stats;
      raise Exit
  in
  let rec loop () =
    if Deadline.expired conn_deadline then Server_stats.conn_expired t.stats
    else
      match Protocol.read_frame ~max:t.config.max_frame ?budget_ms ic with
      | Error Protocol.Stalled -> Server_stats.io_stall t.stats
      | Error (Protocol.Refused _ as e) ->
          (* Unrecoverable but polite: say why, then hang up. *)
          Server_stats.protocol_error t.stats;
          (try send (Protocol.error (Protocol.read_error_message e))
           with _ -> ())
      | Error e when Protocol.connection_survives e ->
          Server_stats.protocol_error t.stats;
          send (Protocol.error (Protocol.read_error_message e));
          loop ()
      | Error _ -> () (* EOF or truncated payload: the stream is done. *)
      | Ok payload ->
          let req = Protocol.decode_request payload in
          if req.Protocol.op = "" then begin
            Server_stats.protocol_error t.stats;
            send (Protocol.error "empty request")
          end
          else send (handle_request t req);
          loop ()
  in
  (try loop () with _ -> ());
  forget_connection t fd;
  (try Unix.close fd with _ -> ())

(* ------------------------------------------------------------------ *)
(* Accept loop and graceful shutdown                                  *)
(* ------------------------------------------------------------------ *)

let accept_ready t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ ->
      Mutex.lock t.conn_mutex;
      t.conn_fds <- fd :: t.conn_fds;
      t.conn_threads <-
        Thread.create (fun () -> handle_connection t fd) () :: t.conn_threads;
      Mutex.unlock t.conn_mutex

let serve t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select t.listeners [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ -> List.iter (accept_ready t) ready
  done;
  (* 1. Refuse new connections. *)
  List.iter (fun fd -> try Unix.close fd with _ -> ()) t.listeners;
  (match t.unix_path with
  | Some path -> ( try Unix.unlink path with _ -> ())
  | None -> ());
  (* 2. Drain under the grace budget: queued and in-flight requests
     complete and their replies are written by the connection threads;
     new submits get [draining].  The hard stop is armed first so
     in-flight work that would outlive the grace raises at its next
     cooperative check instead of wedging the drain; when the grace
     runs out, still-queued jobs are resolved with timeout replies. *)
  let grace =
    if t.config.grace_ms > 0 then Some (Deadline.after_ms t.config.grace_ms)
    else None
  in
  (match grace with Some d -> Deadline.set_hard_stop d | None -> ());
  Admission.drain ?deadline:grace t.admission;
  (* 3. The final account, logged where the operator is watching. *)
  Format.eprintf "%a@." Server_stats.pp t.stats;
  (* 4. Disconnect lingering clients and collect every thread. *)
  Mutex.lock t.conn_mutex;
  let fds = t.conn_fds and threads = t.conn_threads in
  t.conn_threads <- [];
  Mutex.unlock t.conn_mutex;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
    fds;
  List.iter Thread.join threads;
  Admission.shutdown t.admission;
  Deadline.clear_hard_stop ()
