(** Sharded, tenant-aware admission control for the query daemon.

    Connection threads do not execute workload requests themselves: they
    submit thunks here, and a fixed crew of {e worker domains} executes
    them — N workers run N requests truly in parallel instead of
    interleaving under one runtime lock (the compute inside each thunk
    fans out further through {!Domain_pool}).  The queue is striped: one
    shard per worker, each with its own mutex, submits distributed
    round-robin; a worker drains its own shard first and steals from the
    others, so handoff contention is per-shard, not global.

    The queue is {e bounded}: when it is full the submit is refused
    immediately with the current depth, and the caller answers the
    client with an explicit [busy] reply instead of letting fan-in
    collapse the daemon.  When the daemon is draining, submits are
    refused with [Draining] while already-queued and in-flight work runs
    to completion.

    Multi-tenant fairness is built in.  Jobs carry a tenant label;
    within a shard, pickup rotates round-robin across tenants, so a
    quiet tenant's lone request waits behind at most one job per busy
    tenant rather than behind a hot tenant's whole backlog.  When the
    queue is full, a tenant still under its fair share
    [capacity / #tenants] displaces the newest queued job of the most
    backed-up other tenant (answered through [on_evicted]) instead of
    being shed behind it; a tenant at or over its share is shed
    itself. *)

type t

val create : ?tenants:string list -> capacity:int -> workers:int -> unit -> t
(** Spawn [workers] (>= 1) worker domains over a queue bounded at
    [capacity] (>= 0; zero refuses every submit — useful for tests).
    [tenants] registers the tenant names used for the fair-share
    computation; it defaults to the single tenant ["default"], which
    makes the share the whole capacity — exactly the single-workspace
    behaviour. *)

type verdict =
  | Accepted  (** The thunk will run; completion is the thunk's business. *)
  | Shed of { depth : int }  (** Queue full: answer [busy]. *)
  | Draining  (** Shutting down: answer [draining]. *)

val submit :
  ?tenant:string ->
  ?deadline:Deadline.t ->
  ?on_expired:(unit -> unit) ->
  ?on_evicted:(depth:int -> unit) ->
  t ->
  (unit -> unit) ->
  verdict
(** Exceptions escaping the thunk are caught and dropped by the worker:
    a thunk must deliver its outcome through its own closure.

    [deadline] makes the job droppable: if it expires before a worker
    picks the job up, [on_expired] runs instead of the thunk (the
    caller answers the client with a [timeout] reply).  Shedding is
    deadline-aware — a full queue first evicts already-expired queued
    jobs (running their [on_expired]) and admits into the space
    reclaimed, so under overload live budgets displace corpses instead
    of being shed behind them.

    [tenant] defaults to ["default"].  [on_evicted] runs if the job is
    displaced from a full queue by an under-share tenant's submit (the
    caller answers the client with a [busy] reply carrying the depth
    passed to the callback). *)

val depth : t -> int
(** Jobs queued and not yet picked up. *)

val tenant_depth : t -> string -> int
(** Jobs queued for one tenant. *)

val in_flight : t -> int
(** Jobs currently executing on a worker. *)

val expired_total : t -> int
(** Jobs resolved through [on_expired] (at pickup, during a purge, or
    by a bounded drain) since creation. *)

val evicted_total : t -> int
(** Jobs displaced through [on_evicted] by fair-share arbitration since
    creation. *)

val shed_by_tenant : t -> (string * int) list
(** Per-tenant count of refusals (sheds and evictions), sorted by
    tenant name. *)

val drain : ?deadline:Deadline.t -> t -> unit
(** Refuse new submits, then block until the queue is empty and every
    in-flight job has finished.  Idempotent.

    With [deadline], the drain is bounded: when the grace expires,
    every still-queued job is resolved through its [on_expired] and the
    drain returns even if in-flight jobs remain — pair with
    {!Deadline.set_hard_stop} so those unwind at their next cooperative
    check. *)

val shutdown : ?deadline:Deadline.t -> t -> unit
(** {!drain} (with the same bound), then stop and join the worker
    domains. *)
