(** Bounded admission control for the query daemon.

    Connection threads do not execute workload requests themselves: they
    submit thunks here, and a fixed crew of worker threads executes them
    (the compute inside each thunk fans out further through
    {!Domain_pool}).  The queue is {e bounded}: when it is full the
    submit is refused immediately with the current depth, and the caller
    answers the client with an explicit [busy] reply instead of letting
    fan-in collapse the daemon.  When the daemon is draining, submits
    are refused with [`Draining] while already-queued and in-flight work
    runs to completion. *)

type t

val create : capacity:int -> workers:int -> t
(** Spawn [workers] (>= 1) worker threads over a queue bounded at
    [capacity] (>= 0; zero refuses every submit — useful for tests). *)

type verdict =
  | Accepted  (** The thunk will run; completion is the thunk's business. *)
  | Shed of { depth : int }  (** Queue full: answer [busy]. *)
  | Draining  (** Shutting down: answer [draining]. *)

val submit : t -> (unit -> unit) -> verdict
(** Exceptions escaping the thunk are caught and dropped by the worker:
    a thunk must deliver its outcome through its own closure. *)

val depth : t -> int
(** Jobs queued and not yet picked up. *)

val in_flight : t -> int
(** Jobs currently executing on a worker. *)

val drain : t -> unit
(** Refuse new submits, then block until the queue is empty and every
    in-flight job has finished.  Idempotent. *)

val shutdown : t -> unit
(** {!drain}, then stop and join the worker threads. *)
