(** Bounded admission control for the query daemon.

    Connection threads do not execute workload requests themselves: they
    submit thunks here, and a fixed crew of worker threads executes them
    (the compute inside each thunk fans out further through
    {!Domain_pool}).  The queue is {e bounded}: when it is full the
    submit is refused immediately with the current depth, and the caller
    answers the client with an explicit [busy] reply instead of letting
    fan-in collapse the daemon.  When the daemon is draining, submits
    are refused with [`Draining] while already-queued and in-flight work
    runs to completion. *)

type t

val create : capacity:int -> workers:int -> t
(** Spawn [workers] (>= 1) worker threads over a queue bounded at
    [capacity] (>= 0; zero refuses every submit — useful for tests). *)

type verdict =
  | Accepted  (** The thunk will run; completion is the thunk's business. *)
  | Shed of { depth : int }  (** Queue full: answer [busy]. *)
  | Draining  (** Shutting down: answer [draining]. *)

val submit :
  ?deadline:Deadline.t -> ?on_expired:(unit -> unit) -> t -> (unit -> unit) ->
  verdict
(** Exceptions escaping the thunk are caught and dropped by the worker:
    a thunk must deliver its outcome through its own closure.

    [deadline] makes the job droppable: if it expires before a worker
    picks the job up, [on_expired] runs instead of the thunk (the
    caller answers the client with a [timeout] reply).  Shedding is
    deadline-aware — a full queue first evicts already-expired queued
    jobs (running their [on_expired]) and admits into the space
    reclaimed, so under overload live budgets displace corpses instead
    of being shed behind them. *)

val depth : t -> int
(** Jobs queued and not yet picked up. *)

val in_flight : t -> int
(** Jobs currently executing on a worker. *)

val expired_total : t -> int
(** Jobs resolved through [on_expired] (at pickup, during a purge, or
    by a bounded drain) since creation. *)

val drain : ?deadline:Deadline.t -> t -> unit
(** Refuse new submits, then block until the queue is empty and every
    in-flight job has finished.  Idempotent.

    With [deadline], the drain is bounded: when the grace expires,
    every still-queued job is resolved through its [on_expired] and the
    drain returns even if in-flight jobs remain — pair with
    {!Deadline.set_hard_stop} so those unwind at their next cooperative
    check. *)

val shutdown : ?deadline:Deadline.t -> t -> unit
(** {!drain} (with the same bound), then stop and join the worker
    threads. *)
