(* Latencies land in 40 power-of-two buckets: bucket i counts requests
   with latency in [2^i, 2^(i+1)) ns, so the histogram is bounded however
   many requests the daemon serves, and percentile estimates are exact to
   within a factor of two (reported as the bucket's upper bound). *)
let n_buckets = 40

type hist = {
  buckets : int array;
  mutable count : int;
  mutable ok : int;
  mutable errors : int;
  mutable max_ns : float;
  mutable total_ns : float;
}

let new_hist () =
  {
    buckets = Array.make n_buckets 0;
    count = 0;
    ok = 0;
    errors = 0;
    max_ns = 0.0;
    total_ns = 0.0;
  }

let bucket_of_ns ns =
  if ns < 1.0 then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 ns))

let bucket_upper_ns i = Float.of_int 2 ** Float.of_int (i + 1)

let percentile h q =
  if h.count = 0 then 0.0
  else begin
    let target = Float.max 1.0 (Float.round (q *. float_of_int h.count)) in
    let rec scan i seen =
      if i >= n_buckets then h.max_ns
      else begin
        let seen = seen + h.buckets.(i) in
        if float_of_int seen >= target then
          Float.min (bucket_upper_ns i) h.max_ns
        else scan (i + 1) seen
      end
    in
    scan 0 0
  end

type t = {
  mutex : Mutex.t;
  started_at : float;
  per_op : (string, hist) Hashtbl.t;
  mutable in_flight : int;
  mutable accepted : int;
  mutable shed_busy : int;
  mutable refused_draining : int;
  mutable protocol_errors : int;
  mutable timeouts : int;  (* deadline blew mid-execution *)
  mutable expired_in_queue : int;  (* deadline blew while queued *)
  mutable io_stalls : int;  (* slow/stalled connections dropped *)
  mutable conns_expired : int;  (* per-connection lifetime cap hit *)
  cache_baseline : (string * Cache_stats.snapshot) list;
}

let create () =
  {
    mutex = Mutex.create ();
    started_at = Unix.gettimeofday ();
    per_op = Hashtbl.create 8;
    in_flight = 0;
    accepted = 0;
    shed_busy = 0;
    refused_draining = 0;
    protocol_errors = 0;
    timeouts = 0;
    expired_in_queue = 0;
    io_stalls = 0;
    conns_expired = 0;
    cache_baseline = Cache_stats.all ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr_in_flight t = locked t (fun () -> t.in_flight <- t.in_flight + 1)
let decr_in_flight t = locked t (fun () -> t.in_flight <- t.in_flight - 1)
let shed t = locked t (fun () -> t.shed_busy <- t.shed_busy + 1)

let refused_draining t =
  locked t (fun () -> t.refused_draining <- t.refused_draining + 1)

let protocol_error t =
  locked t (fun () -> t.protocol_errors <- t.protocol_errors + 1)

let timeout t = locked t (fun () -> t.timeouts <- t.timeouts + 1)

let expired_in_queue t =
  locked t (fun () -> t.expired_in_queue <- t.expired_in_queue + 1)

let io_stall t = locked t (fun () -> t.io_stalls <- t.io_stalls + 1)
let conn_expired t = locked t (fun () -> t.conns_expired <- t.conns_expired + 1)

let record t ~op ~ok ~ns =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.per_op op with
        | Some h -> h
        | None ->
            let h = new_hist () in
            Hashtbl.add t.per_op op h;
            h
      in
      t.accepted <- t.accepted + 1;
      h.count <- h.count + 1;
      if ok then h.ok <- h.ok + 1 else h.errors <- h.errors + 1;
      h.buckets.(bucket_of_ns ns) <- h.buckets.(bucket_of_ns ns) + 1;
      h.max_ns <- Float.max h.max_ns ns;
      h.total_ns <- h.total_ns +. ns)

type op_stats = {
  op : string;
  ok : int;
  errors : int;
  p50_ns : float;
  p99_ns : float;
  max_ns : float;
  total_ns : float;
}

type snapshot = {
  uptime_s : float;
  in_flight : int;
  accepted : int;
  shed_busy : int;
  refused_draining : int;
  protocol_errors : int;
  timeouts : int;
  expired_in_queue : int;
  io_stalls : int;
  conns_expired : int;
  ops : op_stats list;
  cache_deltas : (string * Cache_stats.snapshot) list;
  plans : (string * int) list;
}

let cache_deltas baseline =
  List.map
    (fun (name, (now : Cache_stats.snapshot)) ->
      let base =
        match List.assoc_opt name baseline with
        | Some (b : Cache_stats.snapshot) -> b
        | None ->
            { Cache_stats.hits = 0; misses = 0; evictions = 0;
              entries = 0; capacity = 0 }
      in
      ( name,
        {
          Cache_stats.hits = now.Cache_stats.hits - base.Cache_stats.hits;
          misses = now.Cache_stats.misses - base.Cache_stats.misses;
          evictions = now.Cache_stats.evictions - base.Cache_stats.evictions;
          entries = now.Cache_stats.entries;
          capacity = now.Cache_stats.capacity;
        } ))
    (Cache_stats.all ())

let snapshot t =
  locked t (fun () ->
      let ops =
        Hashtbl.fold
          (fun op (h : hist) acc ->
            {
              op;
              ok = h.ok;
              errors = h.errors;
              p50_ns = percentile h 0.50;
              p99_ns = percentile h 0.99;
              max_ns = h.max_ns;
              total_ns = h.total_ns;
            }
            :: acc)
          t.per_op []
        |> List.sort (fun a b -> String.compare a.op b.op)
      in
      {
        uptime_s = Unix.gettimeofday () -. t.started_at;
        in_flight = t.in_flight;
        accepted = t.accepted;
        shed_busy = t.shed_busy;
        refused_draining = t.refused_draining;
        protocol_errors = t.protocol_errors;
        timeouts = t.timeouts;
        expired_in_queue = t.expired_in_queue;
        io_stalls = t.io_stalls;
        conns_expired = t.conns_expired;
        ops;
        cache_deltas = cache_deltas t.cache_baseline;
        (* Not deltas: the planners' distribution is process-lifetime by
           design (clear_all models a cold cache, not an amnesiac
           planner), and the daemon is the process. *)
        plans = Cache_stats.plan_counts ();
      })

let in_flight t = locked t (fun () -> t.in_flight)

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.1f" x else "0.0"

let to_json ?(extra = []) t =
  let s = snapshot t in
  let str x = "\"" ^ Status_json.escape x ^ "\"" in
  let op_obj (o : op_stats) =
    Printf.sprintf
      "{ \"op\": %s, \"ok\": %d, \"errors\": %d, \"p50_ns\": %s, \
       \"p99_ns\": %s, \"max_ns\": %s, \"total_ns\": %s }"
      (str o.op) o.ok o.errors (json_float o.p50_ns) (json_float o.p99_ns)
      (json_float o.max_ns) (json_float o.total_ns)
  in
  let cache_obj (name, (c : Cache_stats.snapshot)) =
    Printf.sprintf
      "{ \"name\": %s, \"hits\": %d, \"misses\": %d, \"evictions\": %d, \
       \"entries\": %d, \"capacity\": %d }"
      (str name) c.Cache_stats.hits c.Cache_stats.misses
      c.Cache_stats.evictions c.Cache_stats.entries c.Cache_stats.capacity
  in
  let plan_field (name, count) = Printf.sprintf "%s: %d" (str name) count in
  (* [extra] fields (pre-rendered JSON values, e.g. the breaker array)
     are appended at the top level. *)
  let extra_fields =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf ", %s: %s" (str k) v) extra)
  in
  Printf.sprintf
    "{ \"uptime_s\": %.3f, \"in_flight\": %d, \"accepted\": %d, \
     \"shed_busy\": %d, \"refused_draining\": %d, \"protocol_errors\": %d, \
     \"timeouts\": %d, \"expired_in_queue\": %d, \"io_stalls\": %d, \
     \"conns_expired\": %d, \"ops\": [%s], \"cache_deltas\": [%s], \
     \"plans\": { %s }%s }\n"
    s.uptime_s s.in_flight s.accepted s.shed_busy s.refused_draining
    s.protocol_errors s.timeouts s.expired_in_queue s.io_stalls
    s.conns_expired
    (String.concat ", " (List.map op_obj s.ops))
    (String.concat ", " (List.map cache_obj s.cache_deltas))
    (String.concat ", " (List.map plan_field s.plans))
    extra_fields

let pp_ns ppf ns =
  if ns < 1_000.0 then Format.fprintf ppf "%.0fns" ns
  else if ns < 1_000_000.0 then Format.fprintf ppf "%.1fus" (ns /. 1_000.0)
  else if ns < 1_000_000_000.0 then
    Format.fprintf ppf "%.1fms" (ns /. 1_000_000.0)
  else Format.fprintf ppf "%.2fs" (ns /. 1_000_000_000.0)

let pp ppf t =
  let s = snapshot t in
  Format.fprintf ppf
    "@[<v>server stats: uptime %.1fs, %d accepted, %d in flight, %d shed \
     busy, %d refused draining, %d protocol errors, %d timeouts, %d \
     queue-expired, %d io stalls, %d conns expired@,"
    s.uptime_s s.accepted s.in_flight s.shed_busy s.refused_draining
    s.protocol_errors s.timeouts s.expired_in_queue s.io_stalls
    s.conns_expired;
  List.iter
    (fun (o : op_stats) ->
      Format.fprintf ppf "  %-10s ok %6d  err %4d  p50 %a  p99 %a  max %a@,"
        o.op o.ok o.errors pp_ns o.p50_ns pp_ns o.p99_ns pp_ns o.max_ns)
    s.ops;
  let hits, misses =
    List.fold_left
      (fun (h, m) (_, (c : Cache_stats.snapshot)) ->
        (h + c.Cache_stats.hits, m + c.Cache_stats.misses))
      (0, 0) s.cache_deltas
  in
  Format.fprintf ppf "  result caches since start: %d hits, %d misses@," hits
    misses;
  Format.fprintf ppf "  plans: %s@]"
    (match s.plans with
    | [] -> "(none yet)"
    | ps ->
        String.concat ", "
          (List.map (fun (n, c) -> Printf.sprintf "%s=%d" n c) ps))
