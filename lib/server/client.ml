type address = Tcp of { host : string; port : int } | Unix_socket of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect address =
  match
    match address with
    | Unix_socket path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Tcp { host; port } ->
        let inet =
          try Unix.inet_addr_of_string host
          with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | exception Not_found -> Error "connect: unknown host"
  | fd ->
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }

let close t = try Unix.close t.fd with _ -> ()

let send_payload t payload =
  match Protocol.write_frame t.oc payload with
  | () -> (
      match Protocol.read_frame t.ic with
      | Error e -> Error (Protocol.read_error_message e)
      | Ok reply_payload -> Protocol.decode_reply reply_payload)
  | exception Sys_error m -> Error ("send: " ^ m)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let request t ~op ~arg =
  send_payload t (Protocol.encode_request { Protocol.op; arg })

let request_line t line = send_payload t (String.trim line)

let with_connection address f =
  match connect address with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
