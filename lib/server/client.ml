type address = Tcp of { host : string; port : int } | Unix_socket of string

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

let connect ?io_timeout_ms address =
  match
    match address with
    | Unix_socket path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | Tcp { host; port } ->
        let inet =
          try Unix.inet_addr_of_string host
          with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (inet, port));
        fd
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "connect: %s" (Unix.error_message e))
  | exception Not_found -> Error "connect: unknown host"
  | fd ->
      (match io_timeout_ms with
      | Some ms when ms > 0 ->
          let s = float_of_int ms /. 1000. in
          (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO s with _ -> ());
          (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO s with _ -> ())
      | _ -> ());
      Ok
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }

let close t = try Unix.close t.fd with _ -> ()

let send_payload t payload =
  match Protocol.write_frame t.oc payload with
  | () -> (
      match Protocol.read_frame t.ic with
      | Error e -> Error (Protocol.read_error_message e)
      | Ok reply_payload -> Protocol.decode_reply reply_payload)
  | exception Sys_error m -> Error ("send: " ^ m)
  | exception Unix.Unix_error (e, _, _) ->
      Error ("send: " ^ Unix.error_message e)

let request ?deadline_ms ?workspace t ~op ~arg =
  send_payload t
    (Protocol.encode_request { Protocol.op; arg; deadline_ms; workspace })

let request_line ?deadline_ms ?workspace t line =
  let line = String.trim line in
  match (deadline_ms, workspace) with
  | None, None -> send_payload t line
  | _ ->
      (* Re-encode so the flag-level attributes ride along; attributes
         already written in the line win. *)
      let req = Protocol.decode_request line in
      let req =
        if req.Protocol.deadline_ms = None then
          { req with Protocol.deadline_ms }
        else req
      in
      let req =
        if req.Protocol.workspace = None then { req with Protocol.workspace }
        else req
      in
      send_payload t (Protocol.encode_request req)

(* ------------------------------------------------------------------ *)
(* Retry                                                              *)
(* ------------------------------------------------------------------ *)

let rng = lazy (Random.State.make_self_init ())

(* Exponential backoff seeded by the server's own retry hint, jittered
   to 75%-125% so a crowd of shed clients does not reconverge on the
   same instant. *)
let backoff_delay_ms ~attempt retry_ms =
  let base = float_of_int (max 1 retry_ms) *. (2. ** float_of_int attempt) in
  base *. (0.75 +. Random.State.float (Lazy.force rng) 0.5)

let request_with_retry ?(retries = 1) ?deadline_ms ?workspace
    ?(sleep = Unix.sleepf) t ~op ~arg =
  let deadline = Deadline.of_ms_opt deadline_ms in
  let rec go attempt =
    (* Each attempt carries the budget still remaining, not the original
       one — the server must not work past the client's own deadline. *)
    let attempt_deadline_ms =
      Option.map (fun _ -> max 0 (Deadline.remaining_ms deadline)) deadline_ms
    in
    match request ?deadline_ms:attempt_deadline_ms ?workspace t ~op ~arg with
    | Ok { Protocol.status = Protocol.Busy { retry_ms; _ }; _ } as reply
      when attempt < retries -> (
        let delay_ms = backoff_delay_ms ~attempt retry_ms in
        let budget_allows =
          match deadline_ms with
          | None -> true
          | Some _ -> float_of_int (Deadline.remaining_ms deadline) > delay_ms
        in
        match budget_allows with
        | false -> reply
        | true ->
            sleep (delay_ms /. 1000.);
            go (attempt + 1))
    | reply -> reply
  in
  go 0

let request_line_with_retry ?retries ?deadline_ms ?workspace t line =
  let req = Protocol.decode_request line in
  let deadline_ms =
    match req.Protocol.deadline_ms with
    | Some _ as inline -> inline
    | None -> deadline_ms
  in
  let workspace =
    match req.Protocol.workspace with
    | Some _ as inline -> inline
    | None -> workspace
  in
  request_with_retry ?retries ?deadline_ms ?workspace t ~op:req.Protocol.op
    ~arg:req.Protocol.arg

let with_connection ?io_timeout_ms address f =
  match connect ?io_timeout_ms address with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
