(** [onion serve]: the long-lived query daemon.

    The CLI answers one question per process, re-opening the workspace
    and re-warming every cache each time.  The daemon opens its
    workspaces once and answers questions over TCP and/or Unix-domain
    sockets using the {!Protocol} framing, keeping the revision caches,
    {!Label_index}es and the workspace space memos warm across requests —
    the long-lived mediator process the paper's derived-mediator story
    presumes.

    {b Tenancy.}  One daemon serves N workspaces ([onion serve
    --workspace NAME=DIR ...]).  Requests carry an optional [workspace=]
    attribute routing them to a tenant; without one they target the
    default (first-configured) workspace.  Admission is fair-share aware
    per tenant — one hot workspace cannot starve another (see
    {!Admission}) — and circuit-breaker/fsck state is per-workspace by
    construction (it lives in each {!Workspace.t}).

    {b Ops.}  [query <text>] (mediated OQL over the workspace
    federation, body identical to the CLI's report), [algebra
    union|intersection|difference <articulation>] (over the stored
    articulation and the current source files), [status] / [health]
    ({!Status_json} documents — degraded federation stays visible to
    clients), [stats] ({!Server_stats} as JSON, plus per-workspace
    admission and breaker state and the {!Domain_pool} counters inside
    ["plans"]), [ping], and [shutdown] (graceful drain, then the daemon
    exits).

    {b Concurrency.}  One reader thread per connection; workload ops
    ([query], [algebra], [status], [health]) are submitted to the
    bounded {!Admission} queue and executed by its worker {e domains} —
    N workers run N requests truly in parallel — while replies are
    written back by the owning connection thread.  Request compute fans
    out further through the persistent {!Domain_pool} (spawned eagerly
    at {!create}).  Mediator environments are memoised {e per domain}
    keyed on the workspace's space value, so the request path takes no
    environment lock.  Control ops ([ping], [stats], [shutdown]) answer
    inline so the daemon stays observable and stoppable under
    saturation.  A full queue sheds load with an explicit [busy] reply
    carrying the queue depth and a retry hint.

    {b Shutdown.}  {!stop} (SIGTERM in the CLI, or the [shutdown] op)
    stops the accept loop, closes the listeners, drains queued and
    in-flight requests (new ones get [draining]), logs the final
    {!Server_stats} to stderr, then disconnects lingering clients and
    returns from {!serve} — the CLI then exits 0. *)

type config = {
  tcp : (string * int) option;  (** Bind host and port ([0] = ephemeral). *)
  unix_path : string option;  (** Unix-domain socket path. *)
  queue_capacity : int;  (** Admission queue bound. *)
  workers : int;  (** Admission worker domains. *)
  max_frame : int;  (** Largest accepted request frame. *)
  io_timeout_ms : int;
      (** Socket read/write timeout and whole-frame progress budget
          (slow-loris defense).  [0] disables. *)
  conn_lifetime_ms : int;
      (** Per-connection lifetime cap: the connection is closed at the
          next frame boundary past this age.  [0] disables. *)
  default_deadline_ms : int;
      (** Deadline applied to workload requests that carry no
          [deadline-ms=] attribute.  [0] = none. *)
  grace_ms : int;
      (** Shutdown grace: how long the drain waits before still-queued
          requests are answered [timeout] and in-flight work is
          hard-stopped.  [0] = wait forever (the old behaviour). *)
}

val default_config : config
(** No listeners configured, queue 64, workers 4,
    [max_frame = Protocol.default_max_frame].  The resilience knobs read
    the environment once at startup: [ONION_IO_TIMEOUT_MS] (default
    30000), [ONION_CONN_LIFETIME_MS] (600000), [ONION_DEFAULT_DEADLINE_MS]
    (0 = none), [ONION_GRACE_MS] (5000). *)

type t

val create : config -> (string * Workspace.t) list -> (t, string) result
(** Bind and listen on every configured address (at least one of [tcp] /
    [unix_path] is required).  [tenants] is the non-empty list of
    [(name, workspace)] pairs this daemon serves; the first is the
    default tenant and names must be unique.  The sockets are live when
    this returns, so callers may connect before {!serve} starts
    accepting.  Also starts the persistent {!Domain_pool}. *)

val serve : t -> unit
(** Accept loop; blocks until {!stop}, then performs the graceful
    shutdown described above and returns. *)

val stop : t -> unit
(** Request shutdown.  Async-signal-safe and idempotent: just flips an
    atomic flag the accept loop polls. *)

val stats : t -> Server_stats.t

val port : t -> int option
(** The actual TCP port after binding (useful with port [0]). *)

val addresses : t -> string list
(** Human-readable listen addresses ([tcp://...], [unix://...]). *)
