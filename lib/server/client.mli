(** Client side of the {!Protocol}: one connection, request/reply.

    Backs the [onion client] subcommand, the serve test suites and the
    bench harness.  A connection is not itself thread-safe; concurrent
    callers open their own connections (the server handles each on its
    own thread). *)

type address =
  | Tcp of { host : string; port : int }
  | Unix_socket of string

type t

val connect : address -> (t, string) result

val close : t -> unit

val request :
  t -> op:string -> arg:string -> (Protocol.reply, string) result
(** Send one request and wait for its reply.  [Error] is a transport or
    framing failure (the connection should be abandoned); server-side
    failures arrive as replies with [Error]/[Busy]/[Draining] status. *)

val request_line : t -> string -> (Protocol.reply, string) result
(** [request_line c "query SELECT ..."]: the raw [op arg] form used by
    the [--stdin] batch mode. *)

val with_connection :
  address -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, close (also on exceptions). *)
