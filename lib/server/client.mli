(** Client side of the {!Protocol}: one connection, request/reply.

    Backs the [onion client] subcommand, the serve test suites and the
    bench harness.  A connection is not itself thread-safe; concurrent
    callers open their own connections (the server handles each on its
    own thread). *)

type address =
  | Tcp of { host : string; port : int }
  | Unix_socket of string

type t

val connect : ?io_timeout_ms:int -> address -> (t, string) result
(** [io_timeout_ms] arms socket read/write timeouts on the client side,
    so a wedged or vanished server surfaces as a transport error instead
    of blocking forever. *)

val close : t -> unit

val request :
  ?deadline_ms:int -> ?workspace:string -> t -> op:string -> arg:string ->
  (Protocol.reply, string) result
(** Send one request and wait for its reply.  [deadline_ms] rides along
    as the request's [deadline-ms=] attribute — the server sheds or
    cancels it once the budget is gone and answers [timeout].
    [workspace] rides along as the [workspace=] attribute and routes the
    request to that tenant of a multi-workspace daemon.  [Error] is a
    transport or framing failure (the connection should be abandoned);
    server-side failures arrive as replies with
    [Error]/[Busy]/[Draining]/[Timeout] status. *)

val request_line :
  ?deadline_ms:int -> ?workspace:string -> t -> string ->
  (Protocol.reply, string) result
(** [request_line c "query SELECT ..."]: the raw [op arg] form used by
    the [--stdin] batch mode.  [deadline_ms] / [workspace] are attached
    unless the line already carries its own attributes. *)

val request_with_retry :
  ?retries:int -> ?deadline_ms:int -> ?workspace:string ->
  ?sleep:(float -> unit) ->
  t -> op:string -> arg:string -> (Protocol.reply, string) result
(** {!request}, honouring the server's [busy] backpressure: a [Busy]
    reply is retried after its [retry_ms] hint, with exponential backoff
    and 75-125% jitter, up to [retries] extra attempts (default 1 — the
    hint is honoured even in single-shot mode).  A [deadline_ms] budget
    bounds the whole exchange: each attempt carries only the remaining
    budget, and no retry sleep is begun that the budget cannot cover.
    [sleep] is injectable for tests. *)

val request_line_with_retry :
  ?retries:int -> ?deadline_ms:int -> ?workspace:string -> t -> string ->
  (Protocol.reply, string) result
(** {!request_with_retry} over a raw request line. *)

val with_connection :
  ?io_timeout_ms:int ->
  address -> (t -> ('a, string) result) -> ('a, string) result
(** Connect, run, close (also on exceptions). *)
