(** The onion wire protocol: length-prefixed frames over a byte stream.

    A {e frame} is the decimal byte-length of the payload, a newline,
    then exactly that many payload bytes:

    {v
    frame   ::= length '\n' payload
    length  ::= [0-9]{1,9}          (at most 9 digits)
    v}

    Both requests and replies travel as frames, so the stream never
    needs escaping and a reader always knows exactly how many bytes to
    consume.  A malformed header resynchronises at the next newline: the
    connection survives garbage and oversized frames (the oversized
    payload is drained and discarded), and only an EOF in the middle of
    a payload is fatal to the connection.

    {b Request payload}: one line, [op] then an optional argument
    separated by a single space — e.g. ["query SELECT Price FROM
    Vehicle"], ["algebra union transport"], ["status"].

    {b Reply payload}:

    {v
    reply    ::= status-line '\n' 'warnings ' count '\n' warning* body
    status   ::= 'ok' | 'error' | 'draining' | 'timeout'
               | 'busy depth=' int ' retry-ms=' int
    warning  ::= one line per warning (newlines squashed to spaces)
    body     ::= the remaining payload bytes, verbatim
    v}

    Warnings ride in their own field so piped bodies stay
    machine-parseable; [error] replies carry the message as the body. *)

val default_max_frame : int
(** 4 MiB: the largest payload either side accepts by default. *)

(** {1 Frames} *)

type read_error =
  | Eof  (** Clean end of stream before a header. *)
  | Garbage of string
      (** Header line is not a decimal length (kept to 64 bytes). *)
  | Oversized of int
      (** Declared length exceeds the limit; the payload was drained so
          the stream is still in sync. *)
  | Truncated  (** EOF inside a payload: the stream is unusable. *)
  | Stalled
      (** The transfer blew the frame budget or the socket timeout —
          slow-loris defense; the connection must be dropped. *)
  | Refused of int
      (** Declared length exceeds even the drain cap (8× the frame
          limit): nothing was read, the stream is out of sync. *)

val read_error_message : read_error -> string

val connection_survives : read_error -> bool
(** [true] for {!Garbage} and {!Oversized}: the reader may send an error
    reply and keep going.  [false] for {!Eof}, {!Truncated}, {!Stalled}
    and {!Refused}. *)

val write_frame : out_channel -> string -> unit
(** Write one frame and flush. *)

val read_frame :
  ?max:int -> ?budget_ms:int -> in_channel -> (string, read_error) result
(** Read one frame ([max] defaults to {!default_max_frame}).  The
    declared length is validated against [max] (and the 8× drain cap)
    {e before} any payload buffer is allocated.

    [budget_ms] arms a progress watchdog: the budget runs from the
    first header byte to the last payload byte, so a connection that
    dribbles bytes (slow loris) surfaces as {!Stalled} instead of
    pinning the reader.  The wait for the {e first} byte — the idle gap
    between frames — is governed by the socket receive timeout, which
    also surfaces as {!Stalled}. *)

(** {1 Requests} *)

type request = {
  op : string;
  arg : string;
  deadline_ms : int option;
  workspace : string option;
      (** Tenant routing for a multi-workspace daemon; [None] targets
          the default (first-configured) workspace. *)
}

val encode_request : request -> string

val decode_request : string -> request
(** Optional leading attributes in any order — [deadline-ms=N] and
    [workspace=NAME] — then the op (first whitespace-separated token,
    lowercased); the rest, trimmed, is the argument — e.g.
    ["deadline-ms=250 workspace=prod query SELECT Price FROM
    Vehicle"]. *)

(** {1 Replies} *)

type status =
  | Ok
  | Error
  | Busy of { depth : int; retry_ms : int }
      (** Admission queue full: [depth] jobs queued; try again in about
          [retry_ms] milliseconds. *)
  | Draining  (** The server is shutting down and refuses new work. *)
  | Timeout
      (** The request's deadline expired — while queued or
          mid-execution; the body says which. *)

type reply = { status : status; warnings : string list; body : string }

val ok : ?warnings:string list -> string -> reply
val error : string -> reply
val timeout : string -> reply

val encode_reply : reply -> string

val decode_reply : string -> (reply, string) result
(** [Error] on a malformed reply payload. *)

val status_to_string : status -> string
