let default_max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Frames                                                             *)
(* ------------------------------------------------------------------ *)

type read_error = Eof | Garbage of string | Oversized of int | Truncated

let read_error_message = function
  | Eof -> "end of stream"
  | Garbage line ->
      Printf.sprintf "bad frame header %S (want a decimal length)" line
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Truncated -> "stream ended inside a frame payload"

let connection_survives = function
  | Garbage _ | Oversized _ -> true
  | Eof | Truncated -> false

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

let is_length_line line =
  line <> "" && String.length line <= 9
  && String.for_all (fun c -> c >= '0' && c <= '9') line

(* Discard exactly [n] payload bytes so the stream stays framed. *)
let drain ic n =
  let chunk = Bytes.create 8192 in
  let rec go remaining =
    if remaining > 0 then begin
      let k = input ic chunk 0 (min remaining (Bytes.length chunk)) in
      if k = 0 then raise End_of_file;
      go (remaining - k)
    end
  in
  go n

let read_frame ?(max = default_max_frame) ic =
  match input_line ic with
  | exception End_of_file -> Result.Error Eof
  | line ->
      if not (is_length_line line) then Result.Error (Garbage line)
      else begin
        let n = int_of_string line in
        if n > max then
          match drain ic n with
          | () -> Result.Error (Oversized n)
          | exception End_of_file -> Result.Error Truncated
        else
          match really_input_string ic n with
          | payload -> Result.Ok payload
          | exception End_of_file -> Result.Error Truncated
      end

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type request = { op : string; arg : string }

let encode_request { op; arg } = if arg = "" then op else op ^ " " ^ arg

let decode_request payload =
  let payload = String.trim payload in
  match String.index_opt payload ' ' with
  | None -> { op = String.lowercase_ascii payload; arg = "" }
  | Some i ->
      {
        op = String.lowercase_ascii (String.sub payload 0 i);
        arg =
          String.trim
            (String.sub payload (i + 1) (String.length payload - i - 1));
      }

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

type status =
  | Ok
  | Error
  | Busy of { depth : int; retry_ms : int }
  | Draining

type reply = { status : status; warnings : string list; body : string }

let ok ?(warnings = []) body = { status = Ok; warnings; body }
let error message = { status = Error; warnings = []; body = message }

let status_to_string = function
  | Ok -> "ok"
  | Error -> "error"
  | Busy { depth; retry_ms } ->
      Printf.sprintf "busy depth=%d retry-ms=%d" depth retry_ms
  | Draining -> "draining"

(* Warnings are one-per-line fields: embedded newlines would desync the
   count, so they are squashed to spaces. *)
let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let encode_reply { status; warnings; body } =
  let buf = Buffer.create (128 + String.length body) in
  Buffer.add_string buf (status_to_string status);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "warnings %d\n" (List.length warnings));
  List.iter
    (fun w ->
      Buffer.add_string buf (one_line w);
      Buffer.add_char buf '\n')
    warnings;
  Buffer.add_string buf body;
  Buffer.contents buf

let status_of_string line =
  match String.split_on_char ' ' line with
  | [ "ok" ] -> Result.Ok Ok
  | [ "error" ] -> Result.Ok Error
  | [ "draining" ] -> Result.Ok Draining
  | "busy" :: fields ->
      let lookup key =
        List.find_map
          (fun f ->
            match String.split_on_char '=' f with
            | [ k; v ] when String.equal k key -> int_of_string_opt v
            | _ -> None)
          fields
      in
      (match (lookup "depth", lookup "retry-ms") with
      | Some depth, Some retry_ms -> Result.Ok (Busy { depth; retry_ms })
      | _ -> Result.Error (Printf.sprintf "malformed busy status %S" line))
  | _ -> Result.Error (Printf.sprintf "unknown reply status %S" line)

(* Split one line off [payload] at [from]; the empty remainder yields
   None so a missing field is distinguishable from an empty line. *)
let next_line payload from =
  if from >= String.length payload then None
  else
    match String.index_from_opt payload from '\n' with
    | Some i -> Some (String.sub payload from (i - from), i + 1)
    | None ->
        Some (String.sub payload from (String.length payload - from),
              String.length payload)

let decode_reply payload =
  match next_line payload 0 with
  | None -> Result.Error "empty reply payload"
  | Some (status_line, pos) -> (
      match status_of_string status_line with
      | Result.Error _ as e -> e
      | Result.Ok status -> (
          match next_line payload pos with
          | None -> Result.Ok { status; warnings = []; body = "" }
          | Some (warnings_line, pos) -> (
              let count =
                match String.split_on_char ' ' warnings_line with
                | [ "warnings"; n ] -> int_of_string_opt n
                | _ -> None
              in
              match count with
              | None ->
                  Result.Error
                    (Printf.sprintf "malformed warnings field %S" warnings_line)
              | Some count ->
                  let rec take k pos acc =
                    if k = 0 then Result.Ok (List.rev acc, pos)
                    else
                      match next_line payload pos with
                      | None -> Result.Error "truncated warnings field"
                      | Some (w, pos) -> take (k - 1) pos (w :: acc)
                  in
                  (match take count pos [] with
                  | Result.Error _ as e -> e
                  | Result.Ok (warnings, pos) ->
                      let body =
                        String.sub payload pos (String.length payload - pos)
                      in
                      Result.Ok { status; warnings; body }))))
