let default_max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Frames                                                             *)
(* ------------------------------------------------------------------ *)

type read_error =
  | Eof
  | Garbage of string
  | Oversized of int
  | Truncated
  | Stalled
  | Refused of int

let read_error_message = function
  | Eof -> "end of stream"
  | Garbage line ->
      Printf.sprintf "bad frame header %S (want a decimal length)" line
  | Oversized n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Truncated -> "stream ended inside a frame payload"
  | Stalled -> "frame transfer stalled past the io budget"
  | Refused n ->
      Printf.sprintf "frame of %d bytes refused (too large to drain)" n

let connection_survives = function
  | Garbage _ | Oversized _ -> true
  | Eof | Truncated | Stalled | Refused _ -> false

let write_frame oc payload =
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  flush oc

let is_length_line line =
  line <> "" && String.length line <= 9
  && String.for_all (fun c -> c >= '0' && c <= '9') line

(* Resyncing after an oversized frame means reading and discarding the
   whole declared payload; past this multiple of the frame limit the
   read is refused instead — draining hundreds of megabytes to keep a
   connection that is already abusing the protocol is a losing trade. *)
let drain_cap max = 8 * max

(* Internal: a read exceeded the frame budget or the socket timeout. *)
exception Stall

(* Discard exactly [n] payload bytes so the stream stays framed. *)
let drain ?(deadline = Deadline.never) ic n =
  let chunk = Bytes.create 8192 in
  let rec go remaining =
    if remaining > 0 then begin
      if Deadline.expired deadline then raise Stall;
      let k =
        match input ic chunk 0 (min remaining (Bytes.length chunk)) with
        | k -> k
        (* A tripped SO_RCVTIMEO surfaces as [Sys_blocked_io] (EAGAIN on
           a channel read), not [Sys_error]. *)
        | exception (Sys_error _ | Sys_blocked_io) -> raise Stall
      in
      if k = 0 then raise End_of_file;
      go (remaining - k)
    end
  in
  go n

(* Bytes of an overlong header kept for the [Garbage] message; the rest
   of the line is discarded unread so a hostile header cannot balloon
   memory the way [input_line] would. *)
let header_cap = 64

(* Read [n] payload bytes.  [input] (not [really_input]) so every
   partial read is a watchdog checkpoint: a dribbling sender trips the
   budget even though each individual byte arrives inside the socket
   timeout. *)
let read_payload ic n deadline =
  let buf = Bytes.create n in
  let rec go off =
    if off >= n then Result.Ok (Bytes.unsafe_to_string buf)
    else if Deadline.expired deadline then Result.Error Stalled
    else
      match input ic buf off (min 65536 (n - off)) with
      | 0 -> Result.Error Truncated
      | k -> go (off + k)
      | exception (Sys_error _ | Sys_blocked_io) -> Result.Error Stalled
  in
  go 0

let read_frame ?(max = default_max_frame) ?budget_ms ic =
  (* The wait for the first byte is the idle gap between frames — it is
     bounded by the socket receive timeout (surfacing as [Stalled]),
     not by the frame budget. *)
  match input_char ic with
  | exception End_of_file -> Result.Error Eof
  | exception (Sys_error _ | Sys_blocked_io) -> Result.Error Stalled
  | first -> (
      (* Transfer has begun: the watchdog budget runs from the first
         header byte to the last payload byte, so a slow-loris dribble
         is dropped however regularly it feeds bytes. *)
      let deadline = Deadline.of_ms_opt budget_ms in
      let buf = Buffer.create 16 in
      let stalled = ref false in
      (* Header bytes up to the newline; EOF ends the line the way
         [input_line] would (the accumulated bytes are validated). *)
      let rec header c =
        match c with
        | '\n' -> ()
        | c -> (
            if Buffer.length buf < header_cap then Buffer.add_char buf c;
            if Deadline.expired deadline then stalled := true
            else
              match input_char ic with
              | c -> header c
              | exception End_of_file -> ()
              | exception (Sys_error _ | Sys_blocked_io) -> stalled := true)
      in
      header first;
      let line = Buffer.contents buf in
      if !stalled then Result.Error Stalled
      else if not (is_length_line line) then Result.Error (Garbage line)
      else
        (* Validate the declared length against both caps BEFORE any
           payload buffer is allocated. *)
        let n = int_of_string line in
        if n > max then
          if n > drain_cap max then Result.Error (Refused n)
          else
            match drain ~deadline ic n with
            | () -> Result.Error (Oversized n)
            | exception End_of_file -> Result.Error Truncated
            | exception Stall -> Result.Error Stalled
        else read_payload ic n deadline)

(* ------------------------------------------------------------------ *)
(* Requests                                                           *)
(* ------------------------------------------------------------------ *)

type request = {
  op : string;
  arg : string;
  deadline_ms : int option;
  workspace : string option;
}

let deadline_attr = "deadline-ms="
let workspace_attr = "workspace="

let encode_request { op; arg; deadline_ms; workspace } =
  let base = if arg = "" then op else op ^ " " ^ arg in
  let base =
    match workspace with
    | None -> base
    | Some w -> workspace_attr ^ w ^ " " ^ base
  in
  match deadline_ms with
  | None -> base
  | Some ms -> Printf.sprintf "%s%d %s" deadline_attr ms base

(* Split the first space-separated token off [s]. *)
let split_token s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let strip_prefix prefix tok =
  let plen = String.length prefix in
  if String.length tok > plen && String.equal (String.sub tok 0 plen) prefix
  then Some (String.sub tok plen (String.length tok - plen))
  else None

let decode_request payload =
  let payload = String.trim payload in
  (* Optional leading attributes, in any order, each at most once:
     [deadline-ms=N] and [workspace=NAME].  An unparseable value falls
     through and the token is treated as the op (surfacing as an
     unknown-op error rather than being silently dropped). *)
  let rec attrs deadline_ms workspace rest =
    let tok, remainder = split_token rest in
    match strip_prefix deadline_attr tok with
    | Some v -> (
        match (int_of_string_opt v, deadline_ms) with
        | Some ms, None -> attrs (Some ms) workspace remainder
        | _ -> (deadline_ms, workspace, rest))
    | None -> (
        match (strip_prefix workspace_attr tok, workspace) with
        | Some w, None when w <> "" -> attrs deadline_ms (Some w) remainder
        | _ -> (deadline_ms, workspace, rest))
  in
  let deadline_ms, workspace, rest = attrs None None payload in
  let op, arg = split_token rest in
  { op = String.lowercase_ascii op; arg; deadline_ms; workspace }

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

type status =
  | Ok
  | Error
  | Busy of { depth : int; retry_ms : int }
  | Draining
  | Timeout

type reply = { status : status; warnings : string list; body : string }

let ok ?(warnings = []) body = { status = Ok; warnings; body }
let error message = { status = Error; warnings = []; body = message }
let timeout message = { status = Timeout; warnings = []; body = message }

let status_to_string = function
  | Ok -> "ok"
  | Error -> "error"
  | Busy { depth; retry_ms } ->
      Printf.sprintf "busy depth=%d retry-ms=%d" depth retry_ms
  | Draining -> "draining"
  | Timeout -> "timeout"

(* Warnings are one-per-line fields: embedded newlines would desync the
   count, so they are squashed to spaces. *)
let one_line s = String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) s

let encode_reply { status; warnings; body } =
  let buf = Buffer.create (128 + String.length body) in
  Buffer.add_string buf (status_to_string status);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "warnings %d\n" (List.length warnings));
  List.iter
    (fun w ->
      Buffer.add_string buf (one_line w);
      Buffer.add_char buf '\n')
    warnings;
  Buffer.add_string buf body;
  Buffer.contents buf

let status_of_string line =
  match String.split_on_char ' ' line with
  | [ "ok" ] -> Result.Ok Ok
  | [ "error" ] -> Result.Ok Error
  | [ "draining" ] -> Result.Ok Draining
  | [ "timeout" ] -> Result.Ok Timeout
  | "busy" :: fields ->
      let lookup key =
        List.find_map
          (fun f ->
            match String.split_on_char '=' f with
            | [ k; v ] when String.equal k key -> int_of_string_opt v
            | _ -> None)
          fields
      in
      (match (lookup "depth", lookup "retry-ms") with
      | Some depth, Some retry_ms -> Result.Ok (Busy { depth; retry_ms })
      | _ -> Result.Error (Printf.sprintf "malformed busy status %S" line))
  | _ -> Result.Error (Printf.sprintf "unknown reply status %S" line)

(* Split one line off [payload] at [from]; the empty remainder yields
   None so a missing field is distinguishable from an empty line. *)
let next_line payload from =
  if from >= String.length payload then None
  else
    match String.index_from_opt payload from '\n' with
    | Some i -> Some (String.sub payload from (i - from), i + 1)
    | None ->
        Some (String.sub payload from (String.length payload - from),
              String.length payload)

let decode_reply payload =
  match next_line payload 0 with
  | None -> Result.Error "empty reply payload"
  | Some (status_line, pos) -> (
      match status_of_string status_line with
      | Result.Error _ as e -> e
      | Result.Ok status -> (
          match next_line payload pos with
          | None -> Result.Ok { status; warnings = []; body = "" }
          | Some (warnings_line, pos) -> (
              let count =
                match String.split_on_char ' ' warnings_line with
                | [ "warnings"; n ] -> int_of_string_opt n
                | _ -> None
              in
              match count with
              | None ->
                  Result.Error
                    (Printf.sprintf "malformed warnings field %S" warnings_line)
              | Some count ->
                  let rec take k pos acc =
                    if k = 0 then Result.Ok (List.rev acc, pos)
                    else
                      match next_line payload pos with
                      | None -> Result.Error "truncated warnings field"
                      | Some (w, pos) -> take (k - 1) pos (w :: acc)
                  in
                  (match take count pos [] with
                  | Result.Error _ as e -> e
                  | Result.Ok (warnings, pos) ->
                      let body =
                        String.sub payload pos (String.length payload - pos)
                      in
                      Result.Ok { status; warnings; body }))))
