type repair =
  | Dropped_bridge of Bridge.t
  | Renamed_endpoint of { bridge : Bridge.t; now : Bridge.t }
  | Flagged_rule of string
  | Suggested of Skat.suggestion

let pp_repair ppf = function
  | Dropped_bridge b -> Format.fprintf ppf "drop %a" Bridge.pp b
  | Renamed_endpoint { bridge; now } ->
      Format.fprintf ppf "rename %a -> %a" Bridge.pp bridge Bridge.pp now
  | Flagged_rule name -> Format.fprintf ppf "revisit rule %s" name
  | Suggested s -> Format.fprintf ppf "suggest %a" Skat.pp_suggestion s

type result = {
  articulation : Articulation.t;
  repairs : repair list;
  free : bool;
}

let bridge_touches source_name term (b : Bridge.t) =
  let hit (t : Term.t) =
    String.equal t.Term.ontology source_name && String.equal t.Term.name term
  in
  hit b.Bridge.src || hit b.Bridge.dst

(* Drop every bridge with (source_name, term) as an endpoint. *)
let drop_term articulation source_name term =
  let victims =
    List.filter (bridge_touches source_name term) (Articulation.bridges articulation)
  in
  let articulation =
    Articulation.remove_bridges_touching articulation
      (Term.make ~ontology:source_name term)
  in
  let flagged =
    Articulation.rules articulation
    |> List.filter_map (fun (r : Rule.t) ->
           if
             List.exists
               (fun (t : Term.t) ->
                 String.equal t.Term.ontology source_name
                 && String.equal t.Term.name term)
               (Rule.terms r)
           then Some (Flagged_rule r.Rule.name)
           else None)
  in
  (articulation, List.map (fun b -> Dropped_bridge b) victims @ flagged)

let rename_term articulation source_name ~old_name ~new_name =
  let rename_endpoint (t : Term.t) =
    if String.equal t.Term.ontology source_name && String.equal t.Term.name old_name
    then Term.make ~ontology:source_name new_name
    else t
  in
  List.fold_left
    (fun (articulation, repairs) (b : Bridge.t) ->
      if bridge_touches source_name old_name b then begin
        let now =
          {
            Bridge.src = rename_endpoint b.Bridge.src;
            label = b.Bridge.label;
            dst = rename_endpoint b.Bridge.dst;
          }
        in
        let articulation =
          Articulation.add_bridge
            (Articulation.remove_bridges_touching articulation
               (Term.make ~ontology:source_name old_name))
            now
        in
        (articulation, Renamed_endpoint { bridge = b; now } :: repairs)
      end
      else (articulation, repairs))
    (articulation, [])
    (Articulation.bridges articulation)

(* SKAT restricted to the touched terms: the scan is focused, so its cost
   is |touched| x |other|, not |source| x |other|. *)
let suggest_for ?skat articulation source other touched =
  if touched = [] then []
  else begin
    let config = Option.value skat ~default:Skat.default_config in
    let source_is_left =
      String.equal (Ontology.name source) (Articulation.left articulation)
    in
    let config =
      {
        config with
        Skat.exclude = Articulation.rules articulation;
        focus_left = (if source_is_left then Some touched else None);
        focus_right = (if source_is_left then None else Some touched);
      }
    in
    let left, right = if source_is_left then (source, other) else (other, source) in
    Skat.suggest ~config ~left ~right () |> List.map (fun s -> Suggested s)
  end

let apply ?skat articulation ~source ~other op =
  let source_name = Ontology.name source in
  match (op : Change.op) with
  | Change.Remove_term term ->
      let articulation', repairs = drop_term articulation source_name term in
      { articulation = articulation'; repairs; free = repairs = [] }
  | Change.Rename_term { old_name; new_name } ->
      let articulation', repairs =
        rename_term articulation source_name ~old_name ~new_name
      in
      { articulation = articulation'; repairs; free = repairs = [] }
  | Change.Add_term _ | Change.Add_attribute _ | Change.Add_subclass _
  | Change.Remove_rel _ ->
      let touched =
        List.filter (Ontology.has_term source) (Change.touched_terms op)
      in
      (* Additions inside the independent region need nothing; otherwise
         scan just the touched vocabulary for fresh bridge candidates. *)
      let dependent =
        List.filter
          (fun t -> not (Algebra.is_independent ~of_:source ~term:t articulation))
          touched
      in
      if dependent = [] && touched <> [] then
        (* Still propose bridges for genuinely new terms (they are
           independent by construction but may deserve bridging). *)
        let fresh =
          List.filter
            (fun t ->
              Articulation.bridged_terms articulation source_name
              |> List.mem t
              |> not)
            touched
        in
        let repairs = suggest_for ?skat articulation source other fresh in
        { articulation; repairs; free = repairs = [] }
      else begin
        let repairs = suggest_for ?skat articulation source other touched in
        { articulation; repairs; free = repairs = [] }
      end

let apply_script ?skat articulation ~source ~other ops =
  List.fold_left
    (fun (articulation, source, repairs) op ->
      let source' = Change.apply source op in
      let r = apply ?skat articulation ~source:source' ~other op in
      (r.articulation, source', repairs @ r.repairs))
    (articulation, source, []) ops
