(** The maintenance-cost model: articulation versus global schema under
    source churn (the paper's scalability/maintainability claim, sections
    1, 4.2 and 5.3).

    Costs are counted in {e work units}:

    - articulation: an edit touching only the independent region (the
      {!Algebra.difference} side) costs 0; an edit touching a bridged term
      costs the number of bridges and rules that must be revisited (and,
      for removals, regenerated);
    - global schema: every edit invalidates the merge for the changed
      source, costing the pairwise comparisons of a re-integration of that
      source against all others (what {!Global_schema.rebuild}
      performs), amortized per edit when several edits are batched. *)

type cost_report = {
  ops : int;
  articulation_touched_ops : int;
      (** Edits that touched the articulation-relevant region. *)
  articulation_cost : int;  (** Total bridge/rule revisits. *)
  global_cost : int;  (** Total comparison count of the rebuilds. *)
}

val pp_cost_report : Format.formatter -> cost_report -> unit

val articulation_op_cost :
  Articulation.t -> source:Ontology.t -> Change.op -> int
(** Work units to absorb one edit into the articulation: 0 when every
    touched term is independent; otherwise the number of bridges touching
    the affected terms plus the rules mentioning them. *)

val simulate :
  ?rebuild_batch:int ->
  articulation:Articulation.t ->
  left:Ontology.t ->
  right:Ontology.t ->
  change_left:Change.op list ->
  unit ->
  cost_report
(** Apply the edit script to the left source, accounting both approaches.
    [rebuild_batch] (default 1) batches that many edits per global-schema
    rebuild — the most charitable reading of the baseline. *)
