(** Incremental articulation maintenance.

    Section 3 assigns the deletion primitives their role: "Deletion is
    required while updating the articulation in response to changes in the
    underlying ontologies."  {!Maintenance} prices that work;
    this module {e performs} it: given one source edit, it repairs the
    stored articulation in place of a full regeneration —

    - [Remove_term]: every bridge touching the vanished term is dropped
      (ED on the unified graph); rules mentioning it are flagged;
    - [Rename_term]: bridges follow the rename (the concept is unchanged);
    - [Add_term] / [Add_subclass] / [Add_attribute]: SKAT scans {e only
      the touched terms} against the other source and returns fresh
      suggestions for the expert — the incremental counterpart of the
      full suggestion sweep;
    - edits touching no bridged or reachable term: no repair at all (the
      section 5.3 free region).

    The repaired articulation is exact for deletions and renames; for
    additions the suggestions still await expert confirmation, mirroring
    the paper's semi-automatic contract. *)

type repair =
  | Dropped_bridge of Bridge.t
  | Renamed_endpoint of { bridge : Bridge.t; now : Bridge.t }
  | Flagged_rule of string
      (** A stored rule mentions a removed term; the expert must revisit
          it. *)
  | Suggested of Skat.suggestion
      (** A candidate bridge for newly added vocabulary. *)

val pp_repair : Format.formatter -> repair -> unit

type result = {
  articulation : Articulation.t;  (** Deletions/renames applied. *)
  repairs : repair list;  (** In application order. *)
  free : bool;
      (** The edit lay entirely in the independent region: the returned
          articulation is physically the input. *)
}

val apply :
  ?skat:Skat.config ->
  Articulation.t ->
  source:Ontology.t ->
  other:Ontology.t ->
  Change.op ->
  result
(** Repair after one edit of [source] (which must be one of the
    articulation's two sources; the edit is assumed {e already applied} to
    the [source] value passed in). *)

val apply_script :
  ?skat:Skat.config ->
  Articulation.t ->
  source:Ontology.t ->
  other:Ontology.t ->
  Change.op list ->
  Articulation.t * Ontology.t * repair list
(** Fold {!apply} over an edit script, applying each edit to the source
    along the way; returns the final articulation, the evolved source and
    all repairs. *)
