type t = {
  schema : Ontology.t;
  mapping : (Term.t * string) list;
  comparisons : int;
}

module Smap = Map.Make (String)

(* Union-find over qualified term keys. *)
let find parent key =
  let rec loop k = match Smap.find_opt k !parent with
    | Some p when not (String.equal p k) -> loop p
    | _ -> k
  in
  loop key

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if not (String.equal ra rb) then
    (* Smaller label wins as representative to keep names deterministic. *)
    if String.compare ra rb <= 0 then parent := Smap.add rb ra !parent
    else parent := Smap.add ra rb !parent

let equivalent lexicon l1 l2 =
  String.equal (Strsim.normalize_label l1) (Strsim.normalize_label l2)
  || Lexicon.are_synonyms lexicon l1 l2

let integrate ?(lexicon = Lexicon.builtin) ~name sources =
  let comparisons = ref 0 in
  let parent = ref Smap.empty in
  let all_terms =
    List.concat_map
      (fun o ->
        List.map (fun t -> Term.make ~ontology:(Ontology.name o) t) (Ontology.terms o))
      sources
  in
  List.iter
    (fun t -> parent := Smap.add (Term.qualified t) (Term.qualified t) !parent)
    all_terms;
  (* Pairwise matching across distinct sources: the quadratic phase. *)
  let rec pairs = function
    | [] -> ()
    | o1 :: rest ->
        List.iter
          (fun o2 ->
            List.iter
              (fun t1 ->
                List.iter
                  (fun t2 ->
                    incr comparisons;
                    if equivalent lexicon t1 t2 then
                      union parent
                        (Ontology.name o1 ^ ":" ^ t1)
                        (Ontology.name o2 ^ ":" ^ t2))
                  (Ontology.terms o2))
              (Ontology.terms o1))
          rest;
        pairs rest
  in
  pairs sources;
  (* Global name per class: the local label of the representative; when two
     distinct classes would get the same global label, suffix with the
     source name. *)
  let rep_of t = find parent (Term.qualified t) in
  let label_of_key key =
    match Term.of_qualified key with Some t -> t.Term.name | None -> key
  in
  let used = Hashtbl.create 64 in
  let global_names = Hashtbl.create 64 in
  List.iter
    (fun t ->
      let rep = rep_of t in
      if not (Hashtbl.mem global_names rep) then begin
        let base = label_of_key rep in
        let final =
          if not (Hashtbl.mem used base) then base
          else
            match Term.of_qualified rep with
            | Some qt -> base ^ "_" ^ qt.Term.ontology
            | None -> base ^ "_g"
        in
        Hashtbl.add used final ();
        Hashtbl.add global_names rep final
      end)
    all_terms;
  let global_of t = Hashtbl.find global_names (rep_of t) in
  let schema =
    List.fold_left
      (fun schema o ->
        let oname = Ontology.name o in
        let g = Ontology.graph o in
        let schema =
          List.fold_left
            (fun s term -> Ontology.add_term s (global_of (Term.make ~ontology:oname term)))
            schema (Ontology.terms o)
        in
        Digraph.fold_edges
          (fun (e : Digraph.edge) s ->
            Ontology.add_rel s
              (global_of (Term.make ~ontology:oname e.src))
              e.label
              (global_of (Term.make ~ontology:oname e.dst)))
          g schema)
      (Ontology.create name) sources
  in
  let mapping =
    all_terms
    |> List.map (fun t -> (t, global_of t))
    |> List.sort (fun (t1, _) (t2, _) -> Term.compare t1 t2)
  in
  { schema; mapping; comparisons = !comparisons }

let global_term t term =
  List.find_map (fun (s, g) -> if Term.equal s term then Some g else None) t.mapping

let source_terms t global =
  List.filter_map
    (fun (s, g) -> if String.equal g global then Some s else None)
    t.mapping

let rebuild ?lexicon t ~changed ~others =
  let name = Ontology.name t.schema in
  integrate ?lexicon ~name (changed :: others)
