(** The baseline ONION argues against: global schema integration.

    "Previous work on information integration and on schema integration
    has been based on the construction of a unified database schema.
    However, unification of schemas does not scale well since broad schema
    integration leads to huge and difficult-to-maintain schemas"
    (section 1).

    This module builds that global schema: every source is merged into a
    single ontology, terms judged equivalent (same normalized label, or
    lexicon synonyms) collapse into one global term, everything else is
    imported wholesale.  Construction cost is accounted as the number of
    pairwise term comparisons — quadratic in source count and size, the
    scaling the benchmarks contrast with pairwise articulation. *)

type t = {
  schema : Ontology.t;  (** The merged global ontology. *)
  mapping : (Term.t * string) list;
      (** Source term -> global term, sorted; total over all source
          terms. *)
  comparisons : int;
      (** Pairwise term comparisons performed during integration. *)
}

val integrate : ?lexicon:Lexicon.t -> name:string -> Ontology.t list -> t
(** Merge the sources into one schema named [name].  [lexicon] (default
    {!Lexicon.builtin}) supplies the synonym test.  Deterministic: the
    representative of an equivalence class is its lexicographically
    smallest member label; colliding distinct concepts from different
    sources are disambiguated by suffixing the source name. *)

val global_term : t -> Term.t -> string option
(** Where did a source term land? *)

val source_terms : t -> string -> Term.t list
(** All source terms merged into the given global term. *)

val rebuild : ?lexicon:Lexicon.t -> t -> changed:Ontology.t -> others:Ontology.t list -> t
(** Re-integrate after one source changed — what a global-schema
    deployment must do on {e every} source change.  Returns the new schema
    with its own comparison count (the maintenance cost). *)
