type cost_report = {
  ops : int;
  articulation_touched_ops : int;
  articulation_cost : int;
  global_cost : int;
}

let pp_cost_report ppf r =
  Format.fprintf ppf
    "%d edits: articulation touched %d (cost %d work units); global schema \
     cost %d comparisons"
    r.ops r.articulation_touched_ops r.articulation_cost r.global_cost

let articulation_op_cost articulation ~source op =
  let source_name = Ontology.name source in
  let touched = Change.touched_terms op in
  let dependent t = not (Algebra.is_independent ~of_:source ~term:t articulation) in
  let affected = List.filter dependent touched in
  if affected = [] then 0
  else begin
    (* Revisit every bridge touching an affected term, plus every rule
       mentioning one. *)
    let bridges =
      List.filter
        (fun (b : Bridge.t) ->
          List.exists
            (fun t ->
              let q = Term.make ~ontology:source_name t in
              Term.equal b.Bridge.src q || Term.equal b.Bridge.dst q)
            affected)
        (Articulation.bridges articulation)
    in
    let rules =
      List.filter
        (fun (r : Rule.t) ->
          List.exists
            (fun (t : Term.t) ->
              String.equal t.Term.ontology source_name
              && List.mem t.Term.name affected)
            (Rule.terms r))
        (Articulation.rules articulation)
    in
    (* At minimum one unit of work: the expert looked at the change. *)
    max 1 (List.length bridges + List.length rules)
  end

let simulate ?(rebuild_batch = 1) ~articulation ~left ~right ~change_left () =
  if rebuild_batch < 1 then invalid_arg "Maintenance.simulate: rebuild_batch >= 1";
  let ops = List.length change_left in
  let articulation_touched_ops = ref 0 in
  let articulation_cost = ref 0 in
  let global_cost = ref 0 in
  let current = ref left in
  let since_rebuild = ref 0 in
  List.iteri
    (fun i op ->
      let c = articulation_op_cost articulation ~source:!current op in
      if c > 0 then incr articulation_touched_ops;
      articulation_cost := !articulation_cost + c;
      current := Change.apply !current op;
      incr since_rebuild;
      let last = i = ops - 1 in
      if !since_rebuild >= rebuild_batch || last then begin
        let merged = Global_schema.integrate ~name:"global" [ !current; right ] in
        global_cost := !global_cost + merged.Global_schema.comparisons;
        since_rebuild := 0
      end)
    change_left;
  {
    ops;
    articulation_touched_ops = !articulation_touched_ops;
    articulation_cost = !articulation_cost;
    global_cost = !global_cost;
  }
