(* Content-fingerprinted immutable segments, the manifest that names
   them, per-segment label indexes, and the label-hash routing shards.

   On-disk layout under a paged workspace root:

     <root>/onion.workspace          flat-format marker (shared)
     <root>/onion.paged              paged-backend marker
     <root>/manifest                 name -> segment fingerprint map
     <root>/segments/<fp>.seg        immutable segment (header + payload)
     <root>/segments/<fp>.idx        per-segment label index
     <root>/segments/labels.<k>.shard  routing shard k of SHARDS

   Every file goes through Durable_io (atomic publish + CRC sidecar), so
   the crash matrix and fsck semantics from the flat backend carry over.
   A segment file is never rewritten: its name IS the MD5 of its bytes,
   so replacing a source publishes a new fingerprint and the manifest
   swap is the single atomic commit point.  Stale segments left by a
   crash between segment write and manifest swap are orphans; fsck
   removes them.

   The manifest carries, per articulation entry, the names of every
   ontology its bridges touch ("links").  Group assignment (weakly
   connected components of the source/articulation link graph) is
   recomputed from those links on load — never stored — so it cannot go
   stale.  A routed query loads only the segments of its anchor's group. *)

type kind = Source | Articulation

type entry = {
  kind : kind;
  name : string;
  ext : string;  (* original loader extension, e.g. ".adj"; "" for none *)
  fp : string;  (* hex MD5 of the segment file's bytes *)
  links : string list;  (* articulations: bridged ontology names *)
}

type index = {
  idx_nodes : string list;  (* qualified node labels, sorted *)
  idx_edges : (string * int) list;  (* edge label -> count, sorted *)
  idx_parents : (string * string) list;
      (* direct SubclassOf pairs (child, parent), qualified: the
         persisted form of the subclass closure — the transitive closure
         is rebuilt per group on load, which is cheap at group size and
         cannot go stale. *)
}

let ( / ) = Filename.concat

let paged_marker = "onion.paged"
let paged_marker_content = "onion paged workspace, format 1\n"

let segments_dir root = root / "segments"
let manifest_path root = root / "manifest"
let seg_path root fp = segments_dir root / (fp ^ ".seg")
let idx_path root fp = segments_dir root / (fp ^ ".idx")

let is_seg f = Filename.check_suffix f ".seg"
let is_idx f = Filename.check_suffix f ".idx"

let shards = 64

(* Deterministic across OCaml versions (unlike Hashtbl.hash): route by
   CRC of the label. *)
let shard_of_label label =
  Int32.to_int (Int32.logand (Crc32.digest label) 0x7FFFFFFFl) mod shards

let shard_file k = Printf.sprintf "labels.%02d.shard" k
let shard_path root k = segments_dir root / shard_file k

let is_shard f =
  String.length f = String.length "labels.00.shard"
  && String.sub f 0 7 = "labels."
  && Filename.check_suffix f ".shard"

(* ------------------------------------------------------------------ *)
(* Token escaping                                                     *)
(* ------------------------------------------------------------------ *)

(* Names and labels land in whitespace-separated line formats; escape
   the separators (and '%') so any string round-trips. *)
let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '%' | ',' ->
          Buffer.add_string b (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unesc s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '%' && !i + 2 < n then begin
       match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
       | Some code ->
           Buffer.add_char b (Char.chr code);
           i := !i + 2
       | None -> Buffer.add_char b s.[!i]
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let opt_token = function "" -> "-" | s -> esc s
let opt_untoken = function "-" -> "" | s -> unesc s

(* ------------------------------------------------------------------ *)
(* Segment encoding                                                   *)
(* ------------------------------------------------------------------ *)

let kind_token = function Source -> "source" | Articulation -> "articulation"

let kind_of_token = function
  | "source" -> Some Source
  | "articulation" -> Some Articulation
  | _ -> None

let header_magic = "onion.segment 1"

let encode ~kind ~name ~ext payload =
  Printf.sprintf "%s %s %s %s\n%s" header_magic (kind_token kind)
    (opt_token ext) (esc name) payload

let decode content =
  match String.index_opt content '\n' with
  | None -> Error "segment: missing header"
  | Some nl -> (
      let header = String.sub content 0 nl in
      let payload =
        String.sub content (nl + 1) (String.length content - nl - 1)
      in
      match String.split_on_char ' ' header with
      | [ "onion.segment"; "1"; kind; ext; name ] -> (
          match kind_of_token kind with
          | Some kind -> Ok (kind, unesc name, opt_untoken ext, payload)
          | None -> Error ("segment: unknown kind " ^ kind))
      | _ -> Error "segment: malformed header")

let fingerprint encoded = Digest.to_hex (Digest.string encoded)

(* ------------------------------------------------------------------ *)
(* Per-segment indexes                                                *)
(* ------------------------------------------------------------------ *)

let index_of_graph_nodes qualified_nodes graph_edges parents =
  {
    idx_nodes = List.sort_uniq String.compare qualified_nodes;
    idx_edges =
      List.sort (fun (a, _) (b, _) -> String.compare a b) graph_edges;
    idx_parents = List.sort_uniq compare parents;
  }

let index_of_source o =
  let name = Ontology.name o in
  let g = Ontology.graph o in
  let nodes =
    Digraph.fold_nodes (fun n acc -> (name ^ ":" ^ n) :: acc) g []
  in
  let edge_counts = Hashtbl.create 16 in
  let parents = ref [] in
  Digraph.iter_edges
    (fun (e : Digraph.edge) ->
      Hashtbl.replace edge_counts e.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt edge_counts e.label));
      if String.equal e.label Rel.subclass_of then
        parents := (name ^ ":" ^ e.src, name ^ ":" ^ e.dst) :: !parents)
    g;
  index_of_graph_nodes nodes
    (Hashtbl.fold (fun l c acc -> (l, c) :: acc) edge_counts [])
    !parents

let index_of_articulation a =
  let name = Articulation.name a in
  let o = Articulation.ontology a in
  let g = Ontology.graph o in
  let nodes =
    Digraph.fold_nodes (fun n acc -> (name ^ ":" ^ n) :: acc) g []
  in
  (* Bridge endpoints are already qualified; indexing them routes a
     query anchored on a bridged source term to this articulation's
     group even before the source segment is consulted. *)
  let nodes =
    List.fold_left
      (fun acc (b : Bridge.t) ->
        Term.qualified b.Bridge.src :: Term.qualified b.Bridge.dst :: acc)
      nodes (Articulation.bridges a)
  in
  let edge_counts = Hashtbl.create 16 in
  let parents = ref [] in
  Digraph.iter_edges
    (fun (e : Digraph.edge) ->
      Hashtbl.replace edge_counts e.label
        (1 + Option.value ~default:0 (Hashtbl.find_opt edge_counts e.label));
      if String.equal e.label Rel.subclass_of then
        parents := (name ^ ":" ^ e.src, name ^ ":" ^ e.dst) :: !parents)
    g;
  List.iter
    (fun (b : Bridge.t) ->
      let label = b.Bridge.label in
      Hashtbl.replace edge_counts label
        (1 + Option.value ~default:0 (Hashtbl.find_opt edge_counts label)))
    (Articulation.bridges a);
  index_of_graph_nodes nodes
    (Hashtbl.fold (fun l c acc -> (l, c) :: acc) edge_counts [])
    !parents

let index_magic = "onion.idx 1"

let encode_index idx =
  let b = Buffer.create 1024 in
  Buffer.add_string b index_magic;
  Buffer.add_char b '\n';
  List.iter
    (fun n -> Buffer.add_string b (Printf.sprintf "node %s\n" (esc n)))
    idx.idx_nodes;
  List.iter
    (fun (l, c) ->
      Buffer.add_string b (Printf.sprintf "edge %d %s\n" c (esc l)))
    idx.idx_edges;
  List.iter
    (fun (child, parent) ->
      Buffer.add_string b
        (Printf.sprintf "parent %s %s\n" (esc child) (esc parent)))
    idx.idx_parents;
  Buffer.contents b

let decode_index content =
  match String.split_on_char '\n' content with
  | magic :: lines when String.equal magic index_magic -> (
      let nodes = ref [] and edges = ref [] and parents = ref [] in
      try
        List.iter
          (fun line ->
            match String.split_on_char ' ' line with
            | [ "" ] | [] -> ()
            | [ "node"; n ] -> nodes := unesc n :: !nodes
            | [ "edge"; c; l ] -> (
                match int_of_string_opt c with
                | Some c -> edges := (unesc l, c) :: !edges
                | None -> raise Exit)
            | [ "parent"; child; parent ] ->
                parents := (unesc child, unesc parent) :: !parents
            | _ -> raise Exit)
          lines;
        Ok
          {
            idx_nodes = List.rev !nodes;
            idx_edges = List.rev !edges;
            idx_parents = List.rev !parents;
          }
      with Exit -> Error "index: malformed line")
  | _ -> Error "index: bad magic"

let write_index root fp idx =
  Durable_io.write ~path:(idx_path root fp) (encode_index idx)

let read_index root fp =
  match Durable_io.read ~path:(idx_path root fp) with
  | Error m -> Error m
  | Ok content -> decode_index content

(* ------------------------------------------------------------------ *)
(* Manifest                                                           *)
(* ------------------------------------------------------------------ *)

let manifest_magic = "onion.manifest 1"

let entry_order a b =
  match compare a.kind b.kind with
  | 0 -> String.compare a.name b.name
  | c -> c

let encode_manifest entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b manifest_magic;
  Buffer.add_char b '\n';
  List.iter
    (fun e ->
      let links =
        match e.links with
        | [] -> "-"
        | ls -> String.concat "," (List.map esc ls)
      in
      Buffer.add_string b
        (Printf.sprintf "segment %s %s %s %s %s\n" (kind_token e.kind) e.fp
           (opt_token e.ext) links (esc e.name)))
    (List.sort entry_order entries);
  Buffer.contents b

let decode_manifest content =
  match String.split_on_char '\n' content with
  | magic :: lines when String.equal magic manifest_magic -> (
      try
        Ok
          (List.filter_map
             (fun line ->
               match String.split_on_char ' ' line with
               | [ "" ] | [] -> None
               | [ "segment"; kind; fp; ext; links; name ] -> (
                   match kind_of_token kind with
                   | None -> raise Exit
                   | Some kind ->
                       Some
                         {
                           kind;
                           name = unesc name;
                           ext = opt_untoken ext;
                           fp;
                           links =
                             (if String.equal links "-" then []
                              else
                                String.split_on_char ',' links
                                |> List.map unesc);
                         })
               | _ -> raise Exit)
             lines)
      with Exit -> Error "manifest: malformed line")
  | _ -> Error "manifest: bad magic"

let read_manifest root =
  match Durable_io.read ~path:(manifest_path root) with
  | Error m -> Error m
  | Ok content -> decode_manifest content

let write_manifest root entries =
  Durable_io.write ~path:(manifest_path root) (encode_manifest entries)

(* The paged workspace's content fingerprint: the manifest bytes pin
   every segment fingerprint, so one MD5 replaces the per-file walk of
   the flat backend. *)
let manifest_digest root =
  match Digest.file (manifest_path root) with
  | d -> Some (Digest.to_hex d)
  | exception Sys_error _ -> None

(* ------------------------------------------------------------------ *)
(* Segment IO                                                         *)
(* ------------------------------------------------------------------ *)

let mkdir_if_missing dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Publish one segment file.  Content-addressed: if the fingerprint is
   already on disk the write is skipped (same bytes by construction). *)
let write_segment root ~kind ~name ~ext payload =
  mkdir_if_missing (segments_dir root);
  let encoded = encode ~kind ~name ~ext payload in
  let fp = fingerprint encoded in
  let path = seg_path root fp in
  if Sys.file_exists path then Ok fp
  else
    match Durable_io.write ~path encoded with
    | Ok () -> Ok fp
    | Error m -> Error m

type verdict = Durable_io.verdict =
  | Verified
  | Unstamped
  | Mismatch of { expected : string; actual : string }

(* Read + decode one segment; the verdict travels with the result so the
   paged classifiers can surface checksum mismatches exactly like the
   flat backend does. *)
let read_segment root fp =
  match Durable_io.read_verified ~path:(seg_path root fp) with
  | Error m -> Error m
  | Ok (content, verdict) -> (
      match decode content with
      | Error m -> Ok (Error m, verdict)
      | Ok decoded -> Ok (Ok decoded, verdict))

(* ------------------------------------------------------------------ *)
(* Groups (weakly connected components of the link graph)             *)
(* ------------------------------------------------------------------ *)

(* Union-find over ontology names: every articulation entry links its
   endpoints together (and itself).  The representative is the smallest
   member name, so group ids are deterministic. *)
let groups entries =
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None ->
        Hashtbl.replace parent x x;
        x
    | Some p when String.equal p x -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if not (String.equal ra rb) then
      if String.compare ra rb <= 0 then Hashtbl.replace parent rb ra
      else Hashtbl.replace parent ra rb
  in
  List.iter
    (fun e ->
      ignore (find e.name);
      List.iter (fun l -> union e.name l) e.links)
    entries;
  fun name -> find name

(* ------------------------------------------------------------------ *)
(* Routing shards                                                     *)
(* ------------------------------------------------------------------ *)

let shard_magic = "onion.shard 1"

type shard_line = { sl_label : string; sl_count : int; sl_fps : string list }

let encode_shard lines =
  let b = Buffer.create 1024 in
  Buffer.add_string b shard_magic;
  Buffer.add_char b '\n';
  List.iter
    (fun l ->
      Buffer.add_string b
        (Printf.sprintf "label %d %s %s\n" l.sl_count
           (match l.sl_fps with [] -> "-" | fps -> String.concat "," fps)
           (esc l.sl_label)))
    (List.sort (fun a b -> String.compare a.sl_label b.sl_label) lines);
  Buffer.contents b

let decode_shard content =
  match String.split_on_char '\n' content with
  | magic :: lines when String.equal magic shard_magic -> (
      try
        Ok
          (List.filter_map
             (fun line ->
               match String.split_on_char ' ' line with
               | [ "" ] | [] -> None
               | [ "label"; count; fps; label ] -> (
                   match int_of_string_opt count with
                   | None -> raise Exit
                   | Some c ->
                       Some
                         {
                           sl_label = unesc label;
                           sl_count = c;
                           sl_fps =
                             (if String.equal fps "-" then []
                              else String.split_on_char ',' fps);
                         })
               | _ -> raise Exit)
             lines)
      with Exit -> Error "shard: malformed line")
  | _ -> Error "shard: bad magic"

let read_shard root k =
  let path = shard_path root k in
  if not (Sys.file_exists path) then Ok []
  else
    match Durable_io.read ~path with
    | Error m -> Error m
    | Ok content -> decode_shard content

let write_shard root k lines =
  Durable_io.write ~path:(shard_path root k) (encode_shard lines)

(* Apply a publish delta to the routing shards: retire the labels of
   [remove]d segments, enroll the labels of [add]ed ones.  Only the
   shards actually touched are rewritten. *)
let apply_shard_delta root ~remove ~add =
  let touched = Hashtbl.create 16 in
  let note_label label = Hashtbl.replace touched (shard_of_label label) () in
  List.iter (fun (_, idx) -> List.iter note_label idx.idx_nodes) remove;
  List.iter (fun (_, idx) -> List.iter note_label idx.idx_nodes) add;
  let removals = Hashtbl.create 64 and additions = Hashtbl.create 64 in
  List.iter
    (fun (fp, idx) ->
      List.iter (fun l -> Hashtbl.add removals l fp) idx.idx_nodes)
    remove;
  List.iter
    (fun (fp, idx) ->
      List.iter (fun l -> Hashtbl.add additions l fp) idx.idx_nodes)
    add;
  let update_shard k =
    match read_shard root k with
    | Error m -> Error m
    | Ok lines ->
        let tbl = Hashtbl.create (List.length lines * 2) in
        List.iter
          (fun l -> Hashtbl.replace tbl l.sl_label (l.sl_count, l.sl_fps))
          lines;
        Hashtbl.iter
          (fun label fp ->
            if shard_of_label label = k then
              match Hashtbl.find_opt tbl label with
              | None -> ()
              | Some (c, fps) ->
                  let fps = List.filter (fun f -> not (String.equal f fp)) fps in
                  if fps = [] then Hashtbl.remove tbl label
                  else Hashtbl.replace tbl label (max 0 (c - 1), fps))
          removals;
        Hashtbl.iter
          (fun label fp ->
            if shard_of_label label = k then
              match Hashtbl.find_opt tbl label with
              | None -> Hashtbl.replace tbl label (1, [ fp ])
              | Some (c, fps) ->
                  if not (List.mem fp fps) then
                    Hashtbl.replace tbl label
                      (c + 1, List.sort String.compare (fp :: fps))
                  else Hashtbl.replace tbl label (c + 1, fps))
          additions;
        let lines =
          Hashtbl.fold
            (fun label (c, fps) acc ->
              { sl_label = label; sl_count = c; sl_fps = fps } :: acc)
            tbl []
        in
        write_shard root k lines
  in
  Hashtbl.fold
    (fun k () acc -> match acc with Error _ -> acc | Ok () -> update_shard k)
    touched (Ok ())

(* Rebuild every shard from the per-segment indexes of [entries] — the
   fsck path and the bulk-publish path.  Large federations are processed
   in several passes over disjoint shard ranges so the transient
   label->fp staging never holds the whole label population at once:
   bounding peak heap is the paged backend's reason to exist, and a
   single-pass rebuild at 10^6 labels would briefly dwarf the resident
   working set it was built to avoid.  Small entry sets stay one-pass
   (no repeated index reads). *)
let rebuild_shards root entries =
  let passes = if List.length entries > 64 then 8 else 1 in
  let per = Stdlib.( / ) (shards + passes - 1) passes in
  let rec run_pass p =
    if p >= passes then Ok ()
    else
      let lo = p * per and hi = min shards ((p + 1) * per) in
      let by_shard = Array.make (hi - lo) [] in
      let ok =
        List.fold_left
          (fun acc e ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
                match read_index root e.fp with
                | Error m -> Error (Printf.sprintf "index of %s: %s" e.name m)
                | Ok idx ->
                    List.iter
                      (fun label ->
                        let k = shard_of_label label in
                        if k >= lo && k < hi then
                          by_shard.(k - lo) <- (label, e.fp) :: by_shard.(k - lo))
                      idx.idx_nodes;
                    Ok ()))
          (Ok ()) entries
      in
      match ok with
      | Error _ as e -> e
      | Ok () ->
          let rec write k =
            if k >= hi then run_pass (p + 1)
            else
              let tbl = Hashtbl.create 64 in
              List.iter
                (fun (label, fp) ->
                  match Hashtbl.find_opt tbl label with
                  | None -> Hashtbl.replace tbl label (1, [ fp ])
                  | Some (c, fps) ->
                      Hashtbl.replace tbl label
                        ( c + 1,
                          if List.mem fp fps then fps
                          else List.sort String.compare (fp :: fps) ))
                by_shard.(k - lo);
              let lines =
                Hashtbl.fold
                  (fun label (c, fps) acc ->
                    { sl_label = label; sl_count = c; sl_fps = fps } :: acc)
                  tbl []
              in
              match
                if lines = [] && not (Sys.file_exists (shard_path root k))
                then Ok ()
                else write_shard root k lines
              with
              | Error _ as e -> e
              | Ok () -> write (k + 1)
          in
          write lo
  in
  run_pass 0

(* Route one qualified label to the segment fingerprints that contain
   it, via its shard.  [None] when the label is unknown. *)
let lookup_label root label =
  match read_shard root (shard_of_label label) with
  | Error m -> Error m
  | Ok lines -> (
      match List.find_opt (fun l -> String.equal l.sl_label label) lines with
      | None -> Ok None
      | Some l -> Ok (Some l))
