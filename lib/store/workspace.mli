(** The ONION data layer as an on-disk workspace (Fig. 1).

    A workspace is a directory holding the registered source-ontology
    files and the stored articulations — nothing else, because "the source
    ontologies are independently maintained and the articulation is the
    only thing that is physically stored" (section 2).

    {b Flat backend} (the default):

    {v
    <root>/
      onion.workspace        marker + format version
      sources/               registered ontology files (xml / idl / adj)
                             + <file>.crc32 checksum sidecars
      articulations/         <name>.articulation.xml (Articulation_io)
      quarantine/            files set aside by fsck (created on demand)
    v}

    All operations re-read from disk: external edits to a source file are
    picked up on the next call, which is the point — sources evolve
    independently.

    {b Paged backend} ([init ~paged:true]): parts live in
    content-fingerprinted immutable {!Segment} files named by a manifest
    (the single atomic commit point), with per-segment label indexes and
    label-hash routing shards built at publish time:

    {v
    <root>/
      onion.workspace / onion.paged      markers
      manifest                           name -> fingerprint map
      segments/<fp>.seg                  immutable segments (+ .crc32)
      segments/<fp>.idx                  per-segment label indexes
      segments/labels.<k>.shard          routing shards
      quarantine/
    v}

    Parts are decoded on demand through a process-wide byte-budgeted
    {!Block_cache}, and {!query_space} pages in only the articulation
    group a query's anchor label routes to — a million-node federation
    answers a labeled-anchor query without materialising the rest.
    Results are bit-for-bit identical to the flat backend.

    {b Durability.}  Every write goes through {!Durable_io}: atomic
    publish (tmp + fsync + rename), CRC-32 sidecar stamps, bounded retry
    for transient failures.  A crash can therefore never tear a committed
    file; at worst it leaves a stray [*.onion-tmp], an unstamped payload
    or (paged) an orphan segment, all of which {!fsck} repairs.

    {b Degraded federation.}  Loading is per-file fault-isolated: a
    corrupt or unparseable part is excluded from the query space and
    reported in {!Health.t} while every healthy part keeps serving.  On
    the flat backend a parseable payload whose stamp disagrees is treated
    as an external edit (a feature, per the paper) and reported as a
    warning only. *)

type t

val init : ?paged:bool -> string -> (t, string) result
(** Create the directory layout (the root may already exist but must not
    already be a workspace).  [~paged:true] creates a paged workspace:
    an empty manifest, a [segments/] directory and the [onion.paged]
    marker. *)

val open_ : ?paged:bool -> string -> (t, string) result
(** Open an existing workspace ([Error] when the marker is missing).
    The backend is auto-detected from the [onion.paged] marker; passing
    [?paged] asserts the expectation instead of switching behaviour. *)

val root : t -> string

val is_paged : t -> bool

val block_stats : t -> Block_cache.group_stats
(** This workspace's resident footprint in the process-wide block cache
    (zeros for a flat workspace — it never inserts). *)

val block_cache_resident : unit -> int
(** Process-wide block-cache resident bytes (all tenants). *)

val block_cache_budget : unit -> int

(** {1 Sources} *)

val add_source : t -> path:string -> (string * string list, string) result
(** Copy an ontology file into the workspace (atomically, stamped) and
    return the registered name (the ontology's own name) plus any
    non-fatal warnings — e.g. a previously registered file under another
    extension that could not be removed.  The file must parse; re-adding
    a source with the same name replaces it.  On the paged backend this
    is a full publish: segment + index write, shard delta, manifest
    swap. *)

val remove_source : t -> string -> (unit, string) result
(** Unlink the registered file and its checksum sidecar (flat), or
    publish a manifest without the entry (paged). *)

val source_names : t -> string list
(** Sorted; in-flight tmp files and sidecars are not sources. *)

val load_source : t -> string -> (Ontology.t, string) result

val load_sources : t -> Ontology.t list * Health.issue list
(** Degraded load: every source that reads and parses, in name order,
    plus one issue per source that did not (failures) or that parses
    with a stale checksum stamp (warnings). *)

(** {1 Articulations} *)

val store_articulation : t -> Articulation.t -> (unit, string) result

val articulation_names : t -> string list

val load_articulation : t -> string -> (Articulation.t, string) result

val remove_articulation : t -> string -> (unit, string) result

val load_articulations : t -> Articulation.t list * Health.issue list
(** Degraded load, mirroring {!load_sources}. *)

val articulate :
  ?conversions:Conversion.t ->
  t ->
  left:string ->
  right:string ->
  name:string ->
  rules:Rule.t list ->
  (Articulation.t * Generator.warning list, string) result
(** Generate from the workspace's current source files and store the
    result (durably). *)

(** {1 Bulk publish} *)

type publisher
(** A streaming bulk publisher: parts are written durably as they
    arrive (bounded memory — million-node federations stream through),
    and {!commit} performs ONE shard rebuild and ONE manifest swap
    instead of a rewrite per part.  Staged names are expected unique.
    A crash before {!commit} leaves only orphan segments, which
    {!fsck} removes; on the flat backend each part write is already
    durable and {!commit} is a no-op. *)

val publisher : t -> publisher

val publish_source :
  publisher -> Ontology.t -> ext:string -> payload:string ->
  (unit, string) result
(** [payload] must be [o] in the serialisation [ext] implies (the
    caller already has both; re-serialising here would double the
    generator's work). *)

val publish_articulation : publisher -> Articulation.t -> (unit, string) result

val commit : publisher -> (unit, string) result

(** {1 Federation} *)

val space : t -> (Federation.t * Health.t, string) result
(** The query space over every {e healthy} source and stored
    articulation, paired with the health account of the scan.  [Error]
    only when the surviving parts cannot form a federation at all.
    Memoised on a content fingerprint of the workspace files (honours
    [Cache_stats.enabled]). *)

val query_space : t -> string -> (Federation.t * Health.t, string) result
(** The space to answer one query text against.  Flat: {!space}.
    Paged: the query's anchor label is routed through the shards to its
    articulation group and only that group's segments are decoded and
    merged; answers are bit-for-bit identical to running against the
    full space (the anchor's group is the only component a connected
    match can touch).  Health covers the parts actually serving the
    group plus store-level strays — not parts of other groups.  Any
    routing miss (parse failure, unknown label, mid-publish shards)
    falls back to the full space: routing is an optimisation, never a
    filter. *)

val default_ontology : t -> string option
(** The ontology a bare query concept is qualified against — matches
    [Federation.primary_articulation] of the full space, so routed
    parsing agrees with in-memory parsing.  Pass to
    [Mediator.run_text ?default_ontology] when running against
    {!query_space}. *)

val breakers : t -> Breaker.info list
(** The per-source circuit breakers' current state (empty until a load
    has failed).  A source whose circuit is open surfaces in {!health}
    as a {!Health.Breaker_open} failure and its load is skipped until
    the cooldown elapses; {!fsck} repairs reset all circuits. *)

val health : t -> Health.t
(** Read-only scan: healthy parts, load failures, stray tmp files,
    orphan sidecars and (paged) orphan segments.  Repairs nothing. *)

val status : t -> string
(** Human-readable overview: sources with term counts, articulations with
    bridge counts, stale articulations (bridges naming source terms that
    no longer exist — the maintenance signal of section 5.3), and the
    health summary. *)

val stale_bridges : t -> ((string * Bridge.t) list, string) result
(** (articulation name, bridge) pairs whose source-side term has vanished
    from the current source file.  Computed over the healthy parts. *)

val edit : t -> source:string -> Transform.op list -> (Delta.t, string) result
(** Apply a transformation stream (the paper's NA/ND/EA/ED primitives)
    to one registered source and write the result back in the file's
    own serialization (adjacency formats via the deterministic
    {!Adjacency.print}, XML via the faithful round-trip; [.idl] sources
    cannot be re-serialized and yield [Error]).  Flat: a durable
    stamped rewrite of the registered file; paged: a fresh segment +
    index publish with a manifest swap.

    Returns the {!Delta.t} summarizing the edit's changed region.  On
    the side, the pre-state {!Label_index} is patched forward in
    O(|delta|) when warm, and the (fingerprint-before,
    fingerprint-after, delta) chain is recorded so the next {!lint}
    takes the delta-driven incremental path.  Any out-of-band change to
    the workspace breaks the fingerprint chain, and lint falls back to
    the cold scan — the chain is a pure optimisation. *)

val lint : ?conversions:Conversion.t -> ?enabled:string list -> t -> Lint.report
(** The whole-workspace static analysis: every {!Lint} pass over the
    healthy parts (with raw file texts for span provenance), plus one
    ["io"]-pass diagnostic per {!Health} finding (torn writes, unreadable
    or unparseable files, checksum mismatches, orphan sidecars and
    segments), merged in {!Diagnostic.order}.  The report is {e raw} —
    apply {!Diagnostic.apply_config} and a baseline downstream.
    [enabled] restricts computation to the listed diagnostic codes and
    is part of the memo key (see {!Lint.run}).
    Memoised on the workspace content fingerprint (honours
    [Cache_stats.enabled]), on top of the per-part revision memos inside
    {!Lint}; a custom [conversions] registry (default
    {!Conversion.builtin}) bypasses the whole-report memo.  Paged
    diagnostics anchor to the part's {e logical} file name
    ([sources/<name><ext>]), not the segment fingerprint.

    When the only changes since the memoized report came through
    {!edit}, the rebuild is {e incremental}: {!Lint.lint_incremental}
    re-checks only the (pass x scope) cells the recorded delta can
    affect, unchanged parts answer from their revision-keyed memos, and
    the storage-layer diagnostics of untouched files are spliced back
    in.  The result is bit-for-bit identical to the cold scan. *)

(** {1 fsck} *)

type repair =
  | Quarantined of { file : string; to_ : string; reason : string }
      (** Moved into [quarantine/] (torn tmp files, unreadable or
          unparseable payloads and their sidecars; paged: segments whose
          bytes no longer hash to their manifest fingerprint).
          Quarantine preserves evidence; nothing is ever deleted
          outright except orphans. *)
  | Restamped of { file : string; reason : string }
      (** A parseable payload with a missing or stale stamp got a fresh
          sidecar.  Flat: adoption of external files / edits.  Paged:
          only when the content digest still matches the manifest
          fingerprint — the fingerprint authenticates the payload, so a
          disagreeing sidecar is the stale artefact.  A segment whose
          {e content} disagrees with its fingerprint is quarantined
          instead: content-addressing makes "accepting the edit"
          incoherent. *)
  | Removed_orphan of { file : string }  (** Sidecar without a payload. *)
  | Removed_orphan_segment of { file : string }
      (** Paged: a [.seg]/[.idx] file no manifest entry references —
          debris from a crash on either side of a manifest swap. *)
  | Rebuilt_index of { file : string }
      (** Paged: a missing or undecodable per-segment index was
          recomputed from the (healthy) segment payload. *)
  | Rebuilt_manifest of { reason : string }
      (** Paged: the manifest was re-published — reconstructed from the
          decodable segments when unreadable, or rewritten after
          quarantined entries were dropped. *)

type fsck_report = { repairs : repair list; health : Health.t }
(** [health] is the post-repair state. *)

val fsck : t -> fsck_report
(** Detect and repair: quarantine torn tmp files and unparseable
    payloads, drop orphan sidecars, re-stamp parseable files; on the
    paged backend additionally verify every segment against its
    manifest fingerprint (streaming, without buffering payloads),
    quarantine corrupt segments and drop their entries, remove orphan
    segments, rebuild missing indexes, re-publish the manifest and
    rebuild the routing shards.  Any repair invalidates the global
    result caches ([Cache_stats.clear_all]), this workspace's memos and
    its block-cache residency, since cached results may refer to
    pre-repair revisions. *)

val pp_repair : Format.formatter -> repair -> unit
val pp_fsck_report : Format.formatter -> fsck_report -> unit
