(** The ONION data layer as an on-disk workspace (Fig. 1).

    A workspace is a directory holding the registered source-ontology
    files and the stored articulations — nothing else, because "the source
    ontologies are independently maintained and the articulation is the
    only thing that is physically stored" (section 2):

    {v
    <root>/
      onion.workspace        marker + format version
      sources/               registered ontology files (xml / idl / adj)
                             + <file>.crc32 checksum sidecars
      articulations/         <name>.articulation.xml (Articulation_io)
      quarantine/            files set aside by fsck (created on demand)
    v}

    All operations re-read from disk: external edits to a source file are
    picked up on the next call, which is the point — sources evolve
    independently.

    {b Durability.}  Every write goes through {!Durable_io}: atomic
    publish (tmp + fsync + rename), CRC-32 sidecar stamps, bounded retry
    for transient failures.  A crash can therefore never tear a committed
    file; at worst it leaves a stray [*.onion-tmp] or an unstamped
    payload, both of which {!fsck} repairs.

    {b Degraded federation.}  Loading is per-file fault-isolated: a
    corrupt or unparseable source is excluded from the query space and
    reported in {!Health.t} while every healthy part keeps serving.  A
    parseable payload whose stamp disagrees is treated as an external
    edit (a feature, per the paper) and reported as a warning only. *)

type t

val init : string -> (t, string) result
(** Create the directory layout (the root may already exist but must not
    already be a workspace). *)

val open_ : string -> (t, string) result
(** Open an existing workspace ([Error] when the marker is missing). *)

val root : t -> string

(** {1 Sources} *)

val add_source : t -> path:string -> (string * string list, string) result
(** Copy an ontology file into the workspace (atomically, stamped) and
    return the registered name (the ontology's own name) plus any
    non-fatal warnings — e.g. a previously registered file under another
    extension that could not be removed.  The file must parse; re-adding
    a source with the same name replaces it. *)

val remove_source : t -> string -> (unit, string) result
(** Unlink the registered file and its checksum sidecar. *)

val source_names : t -> string list
(** Sorted; in-flight tmp files and sidecars are not sources. *)

val load_source : t -> string -> (Ontology.t, string) result

val load_sources : t -> Ontology.t list * Health.issue list
(** Degraded load: every source that reads and parses, in name order,
    plus one issue per source that did not (failures) or that parses
    with a stale checksum stamp (warnings). *)

(** {1 Articulations} *)

val store_articulation : t -> Articulation.t -> (unit, string) result

val articulation_names : t -> string list

val load_articulation : t -> string -> (Articulation.t, string) result

val remove_articulation : t -> string -> (unit, string) result

val load_articulations : t -> Articulation.t list * Health.issue list
(** Degraded load, mirroring {!load_sources}. *)

val articulate :
  ?conversions:Conversion.t ->
  t ->
  left:string ->
  right:string ->
  name:string ->
  rules:Rule.t list ->
  (Articulation.t * Generator.warning list, string) result
(** Generate from the workspace's current source files and store the
    result (durably). *)

(** {1 Federation} *)

val space : t -> (Federation.t * Health.t, string) result
(** The query space over every {e healthy} source and stored
    articulation, paired with the health account of the scan.  [Error]
    only when the surviving parts cannot form a federation at all.
    Memoised on a content fingerprint of the workspace files (honours
    [Cache_stats.enabled]). *)

val breakers : t -> Breaker.info list
(** The per-source circuit breakers' current state (empty until a load
    has failed).  A source whose circuit is open surfaces in {!health}
    as a {!Health.Breaker_open} failure and its load is skipped until
    the cooldown elapses; {!fsck} repairs reset all circuits. *)

val health : t -> Health.t
(** Read-only scan: healthy parts, load failures, stray tmp files and
    orphan sidecars.  Repairs nothing. *)

val status : t -> string
(** Human-readable overview: sources with term counts, articulations with
    bridge counts, stale articulations (bridges naming source terms that
    no longer exist — the maintenance signal of section 5.3), and the
    health summary. *)

val stale_bridges : t -> ((string * Bridge.t) list, string) result
(** (articulation name, bridge) pairs whose source-side term has vanished
    from the current source file.  Computed over the healthy parts. *)

val lint : ?conversions:Conversion.t -> t -> Lint.report
(** The whole-workspace static analysis: every {!Lint} pass over the
    healthy parts (with raw file texts for span provenance), plus one
    ["io"]-pass diagnostic per {!Health} finding (torn writes, unreadable
    or unparseable files, checksum mismatches, orphan sidecars), merged
    in {!Diagnostic.order}.  The report is {e raw} — apply
    {!Diagnostic.apply_config} and a baseline downstream.  Memoised on
    the workspace content fingerprint (honours [Cache_stats.enabled]),
    on top of the per-part revision memos inside {!Lint}; a custom
    [conversions] registry (default {!Conversion.builtin}) bypasses the
    whole-report memo. *)

(** {1 fsck} *)

type repair =
  | Quarantined of { file : string; to_ : string; reason : string }
      (** Moved into [quarantine/] (torn tmp files, unreadable or
          unparseable payloads and their sidecars).  Quarantine preserves
          evidence; nothing is ever deleted outright except orphan
          sidecars. *)
  | Restamped of { file : string; reason : string }
      (** A parseable payload with a missing or stale stamp got a fresh
          sidecar (adoption of external files / edits). *)
  | Removed_orphan of { file : string }  (** Sidecar without a payload. *)

type fsck_report = { repairs : repair list; health : Health.t }
(** [health] is the post-repair state. *)

val fsck : t -> fsck_report
(** Detect and repair: quarantine torn tmp files and unparseable
    payloads, drop orphan sidecars, re-stamp parseable files.  Any
    repair invalidates the global result caches ([Cache_stats.clear_all])
    and this workspace's space memo, since cached results may refer to
    pre-repair revisions. *)

val pp_repair : Format.formatter -> repair -> unit
val pp_fsck_report : Format.formatter -> fsck_report -> unit
