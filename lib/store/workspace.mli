(** The ONION data layer as an on-disk workspace (Fig. 1).

    A workspace is a directory holding the registered source-ontology
    files and the stored articulations — nothing else, because "the source
    ontologies are independently maintained and the articulation is the
    only thing that is physically stored" (section 2):

    {v
    <root>/
      onion.workspace        marker + format version
      sources/               registered ontology files (xml / idl / adj)
      articulations/         <name>.articulation.xml (Articulation_io)
    v}

    All operations re-read from disk: external edits to a source file are
    picked up on the next call, which is the point — sources evolve
    independently. *)

type t

val init : string -> (t, string) result
(** Create the directory layout (the root may already exist but must not
    already be a workspace). *)

val open_ : string -> (t, string) result
(** Open an existing workspace ([Error] when the marker is missing). *)

val root : t -> string

(** {1 Sources} *)

val add_source : t -> path:string -> (string, string) result
(** Copy an ontology file into the workspace and return the registered
    name (the ontology's own name).  The file must parse; re-adding a
    source with the same name replaces it. *)

val remove_source : t -> string -> (unit, string) result

val source_names : t -> string list
(** Sorted. *)

val load_source : t -> string -> (Ontology.t, string) result

val load_sources : t -> (Ontology.t list, string) result
(** All sources; the first parse failure aborts. *)

(** {1 Articulations} *)

val store_articulation : t -> Articulation.t -> unit

val articulation_names : t -> string list

val load_articulation : t -> string -> (Articulation.t, string) result

val remove_articulation : t -> string -> (unit, string) result

val articulate :
  ?conversions:Conversion.t ->
  t ->
  left:string ->
  right:string ->
  name:string ->
  rules:Rule.t list ->
  (Articulation.t * Generator.warning list, string) result
(** Generate from the workspace's current source files and store the
    result. *)

(** {1 Federation} *)

val space : t -> (Federation.t, string) result
(** The query space over every source and every stored articulation. *)

val status : t -> string
(** Human-readable overview: sources with term counts, articulations with
    bridge counts, and stale articulations (bridges naming source terms
    that no longer exist — the maintenance signal of section 5.3). *)

val stale_bridges : t -> ((string * Bridge.t) list, string) result
(** (articulation name, bridge) pairs whose source-side term has vanished
    from the current source file. *)
