type space_result = (Federation.t * Health.t, string) result

type backend = Flat | Paged

(* Everything the incremental lint path needs from the previous full
   run: the parsed view (so unchanged parts stay physically shared and
   keep answering from their revision-keyed memos), the storage-layer
   diagnostics that were spliced into the report, and the enabled-code
   fingerprint the report was computed under. *)
type lint_state = {
  ls_cfg : string;
  ls_view : Lint.view;
  ls_io : Diagnostic.t list;
  ls_report : Lint.report;
}

(* One edited source in the pending chain.  [ec_delta] is the
   {!Delta.union} of every edit since the memoized view — a sound
   trigger superset even when later edits cancel earlier ones — and
   [ec_ontology] is chained from the view's value, so the unchanged
   sources of the substituted view are still the memoized ones. *)
type edit_change = {
  ec_name : string;
  ec_delta : Delta.t;
  ec_ontology : Ontology.t;
  ec_payload : string;  (* serialized bytes now on disk *)
  ec_file : string option;  (* logical file, for diagnostics *)
}

(* The chain of edits between two disk fingerprints: valid for the
   incremental path exactly when the lint memo holds [p_from] and the
   workspace currently fingerprints to [p_to]. *)
type pending = {
  p_from : string;
  p_to : string;
  p_changes : edit_change list;
}

type t = {
  root : string;
  backend : backend;
      (* Flat: one file per part under sources/ and articulations/ —
         every open loads everything.  Paged: content-fingerprinted
         immutable segments under segments/, named by a manifest; parts
         are decoded on demand through the process-wide block cache, and
         routed queries load only the anchor's articulation group. *)
  memo_lock : Mutex.t;
      (* Guards both memos: the daemon's admission workers are domains,
         so concurrent requests against one workspace race on the memo
         slots.  Rebuilds run under the lock — serialising them means
         every domain observes the SAME physical space value for a given
         fingerprint, which is what the per-domain env memos
         revision-check against. *)
  mutable space_memo : (string * space_result) option;
      (* Last computed query space paired with the disk fingerprint it was
         built from: while the files under sources/ and articulations/ are
         byte-identical, [space] answers from the memo instead of
         re-parsing and re-merging everything.  Honours the global
         Cache_stats.enabled switch like every other cache. *)
  mutable lint_memo : (string * lint_state) option;
      (* Same scheme for the whole lint report: byte-identical workspace
         files mean byte-identical findings.  The state keeps the parsed
         view alongside the report so [edit] can chain in-memory values
         and the incremental path can substitute only what changed. *)
  mutable pending_edits : pending option;
      (* Edits applied through [edit] since the memoized lint, keyed by
         the fingerprints they connect.  Any out-of-band change to the
         workspace breaks the fingerprint chain and falls back to the
         cold path — the chain can mislead no one. *)
  breaker : Breaker.t;
      (* Per-source circuit breakers: a repeatedly-corrupt file is
         skipped (Health.Breaker_open) instead of re-paying read+parse
         on every scan until its cooldown elapses. *)
  manifest_lock : Mutex.t;
      (* Guards [manifest_memo] only.  Separate from [memo_lock] because
         space/lint/route rebuilds (which hold memo_lock) read the
         manifest; the manifest section never takes memo_lock, so there
         is no cycle. *)
  mutable manifest_memo : (string * Segment.entry list) option;
      (* Parsed manifest keyed by the manifest file's digest. *)
  mutable route_memo : (string * (string, space_result) Hashtbl.t) option;
      (* Routed group spaces keyed by (manifest digest, group
         representative), guarded by [memo_lock].  Rebuilds are
         serialised under the lock like the full space, so every domain
         observes the same physical Federation.t per (digest, group) —
         the invariant the daemon's per-domain env memos revalidate
         against. *)
}

(* ------------------------------------------------------------------ *)
(* Block cache (paged backend)                                        *)
(* ------------------------------------------------------------------ *)

(* One process-wide cache of decoded segments, shared by every paged
   workspace (the daemon serves several tenants from one budget).  Keys
   are [root ^ "#" ^ fingerprint]: content-addressed, so entries can
   never go stale — a changed part publishes a new fingerprint. *)
type cached_part = {
  cp_part :
    [ `Source of Ontology.t | `Articulation of Articulation.t ];
  cp_warns : Health.issue list;
  cp_bytes : int;  (* payload bytes, the cache-budget charge *)
}

let block_cache : cached_part Block_cache.t =
  Block_cache.create ~name:"store.block"
    ~size_of:(fun p -> p.cp_bytes + 512)
    ()

let block_stats t = Block_cache.stats_for_group block_cache t.root
let block_cache_resident () = Block_cache.bytes_resident block_cache
let block_cache_budget () = Block_cache.budget block_cache

let marker = "onion.workspace"
let marker_content = "onion workspace, format 1\n"

let ( let* ) = Result.bind

let ( / ) = Filename.concat

let root t = t.root

let sources_dir t = t.root / "sources"
let articulations_dir t = t.root / "articulations"
let quarantine_dir t = t.root / "quarantine"

let is_workspace dir = Sys.file_exists (dir / marker)
let is_paged_dir dir = Sys.file_exists (dir / Segment.paged_marker)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let make ~backend dir =
  {
    root = dir;
    backend;
    memo_lock = Mutex.create ();
    space_memo = None;
    lint_memo = None;
    pending_edits = None;
    breaker = Breaker.create ();
    manifest_lock = Mutex.create ();
    manifest_memo = None;
    route_memo = None;
  }

let is_paged t = match t.backend with Paged -> true | Flat -> false

let init ?(paged = false) dir =
  if is_workspace dir then
    Error (Printf.sprintf "%s is already a workspace" dir)
  else begin
    try
      mkdir_if_missing dir;
      if paged then begin
        mkdir_if_missing (Segment.segments_dir dir);
        match Segment.write_manifest dir [] with
        | Error m -> Error m
        | Ok () ->
            Atomic_io.write (dir / Segment.paged_marker)
              Segment.paged_marker_content;
            Atomic_io.write (dir / marker) marker_content;
            Ok (make ~backend:Paged dir)
      end
      else begin
        mkdir_if_missing (dir / "sources");
        mkdir_if_missing (dir / "articulations");
        Atomic_io.write (dir / marker) marker_content;
        Ok (make ~backend:Flat dir)
      end
    with Sys_error m -> Error m
  end

(* The backend is a property of the directory, auto-detected from the
   onion.paged marker, so every existing caller (CLI, daemon tenants)
   opens paged workspaces transparently.  [~paged] asserts the
   expectation instead of switching behaviour. *)
let open_ ?paged dir =
  if not (is_workspace dir) then
    Error (Printf.sprintf "%s is not an onion workspace (missing %s)" dir marker)
  else
    let actual = if is_paged_dir dir then Paged else Flat in
    match (paged, actual) with
    | Some true, Flat ->
        Error (Printf.sprintf "%s is not a paged workspace (missing %s)" dir
                 Segment.paged_marker)
    | Some false, Paged ->
        Error (Printf.sprintf "%s is a paged workspace (has %s)" dir
                 Segment.paged_marker)
    | _ -> Ok (make ~backend:actual dir)

(* ------------------------------------------------------------------ *)
(* Manifest access (paged backend)                                    *)
(* ------------------------------------------------------------------ *)

(* Parsed manifest memoized on the manifest file's digest: the digest
   read is one MD5 over a small file, so every paged operation starts by
   revalidating against the bytes actually on disk. *)
let manifest t =
  match Segment.manifest_digest t.root with
  | None -> Error "manifest missing"
  | Some digest ->
      Mutex.lock t.manifest_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.manifest_lock)
        (fun () ->
          match t.manifest_memo with
          | Some (d, entries) when String.equal d digest -> Ok entries
          | _ -> (
              match Segment.read_manifest t.root with
              | Error m -> Error m
              | Ok entries ->
                  t.manifest_memo <- Some (digest, entries);
                  Ok entries))

let manifest_entries t =
  match manifest t with Ok entries -> entries | Error _ -> []

let paged_entry t kind name =
  List.find_opt
    (fun (e : Segment.entry) ->
      e.Segment.kind = kind && String.equal e.Segment.name name)
    (manifest_entries t)

(* Logical file name reported for a paged part: segment fingerprints
   change on every edit, so diagnostics anchor to the stable name the
   flat backend would use. *)
let logical_file (e : Segment.entry) =
  match e.Segment.kind with
  | Segment.Source -> "sources/" ^ e.Segment.name ^ e.Segment.ext
  | Segment.Articulation ->
      "articulations/" ^ e.Segment.name ^ ".articulation.xml"

(* Payload files only: in-flight tmp files and checksum sidecars are
   protocol artefacts, not registered content. *)
let payload_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir
    |> Array.to_list
    |> List.filter (fun f ->
           not (Atomic_io.is_tmp f) && not (Durable_io.is_sidecar f))

(* Source files keep their original extension so the loader's format
   dispatch still applies; the registered name is the ontology's own. *)
let source_file t name =
  let candidates =
    [ name ^ ".xml"; name ^ ".idl"; name ^ ".adj"; name ^ ".graph"; name ^ ".txt" ]
  in
  List.find_map
    (fun f ->
      let path = sources_dir t / f in
      if Sys.file_exists path then Some path else None)
    candidates

let ext_of_path path =
  match String.lowercase_ascii (Filename.extension path) with
  | "" -> ".xml"
  | e -> e

(* ------------------------------------------------------------------ *)
(* Paged backend: loading through the block cache                     *)
(* ------------------------------------------------------------------ *)

let part_of_kind = function
  | Segment.Source -> Health.Source
  | Segment.Articulation -> Health.Articulation

(* Decode one manifest entry, through the process-wide block cache.
   Only clean decodes are cached (a warned or failed part re-reads, so
   transient verdicts never stick); keys are content-addressed, so a hit
   can never be stale. *)
let paged_load t (e : Segment.entry) =
  let file = logical_file e in
  let issue kind detail =
    { Health.part = part_of_kind e.Segment.kind; name = e.Segment.name; file;
      kind; detail }
  in
  let key = t.root ^ "#" ^ e.Segment.fp in
  match Block_cache.find_opt block_cache key with
  | Some p -> Ok p
  | None -> (
      Cache_stats.record_plan "store.segment_load";
      match Segment.read_segment t.root e.Segment.fp with
      | Error m -> Error (issue Health.Unreadable m)
      | Ok (decoded, verdict) -> (
          let mismatch_note m =
            match verdict with
            | Durable_io.Mismatch { expected; actual } ->
                Printf.sprintf "%s (checksum mismatch: stamped %s, payload %s)"
                  m expected actual
            | _ -> m
          in
          match decoded with
          | Error m -> Error (issue Health.Unparseable (mismatch_note m))
          | Ok (kind, name, _ext, payload) ->
              if
                kind <> e.Segment.kind
                || not (String.equal name e.Segment.name)
              then
                Error
                  (issue Health.Unparseable
                     (mismatch_note "segment header disagrees with the manifest"))
              else
                let warns =
                  match verdict with
                  | Durable_io.Mismatch { expected; actual } ->
                      [
                        issue Health.Checksum_mismatch
                          (Printf.sprintf
                             "stamped %s, payload %s — external edit or \
                              silent corruption (fsck quarantines)"
                             expected actual);
                      ]
                  | _ -> []
                in
                let finish part =
                  let p =
                    { cp_part = part; cp_warns = warns;
                      cp_bytes = String.length payload }
                  in
                  if warns = [] then
                    Block_cache.insert block_cache ~group:t.root key p;
                  Ok p
                in
                (match e.Segment.kind with
                | Segment.Source -> (
                    let format = Loader.format_of_path ("f" ^ e.Segment.ext) in
                    match
                      Loader.load_string ?format ~name:e.Segment.name payload
                    with
                    | Error m -> Error (issue Health.Unparseable (mismatch_note m))
                    | Ok o -> finish (`Source o))
                | Segment.Articulation -> (
                    match Articulation_io.of_string payload with
                    | Error m -> Error (issue Health.Unparseable (mismatch_note m))
                    | Ok a -> finish (`Articulation a)))))

(* Raw payload text of a paged part (the lint passes want the bytes the
   diagnostics' spans refer to). *)
let paged_text t (e : Segment.entry) =
  match Segment.read_segment t.root e.Segment.fp with
  | Ok (Ok (_, _, _, payload), _) -> Some payload
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Paged backend: publishing                                          *)
(* ------------------------------------------------------------------ *)

(* A part staged for publication. *)
type staged = {
  st_kind : Segment.kind;
  st_name : string;
  st_ext : string;
  st_payload : string;
  st_index : Segment.index;
  st_links : string list;
}

let stage_source o ~ext ~payload =
  {
    st_kind = Segment.Source;
    st_name = Ontology.name o;
    st_ext = ext;
    st_payload = payload;
    st_index = Segment.index_of_source o;
    st_links = [];
  }

let articulation_links a =
  let endpoints =
    List.concat_map
      (fun (b : Bridge.t) ->
        [ b.Bridge.src.Term.ontology; b.Bridge.dst.Term.ontology ])
      (Articulation.bridges a)
  in
  List.sort_uniq String.compare
    (Articulation.left a :: Articulation.right a :: endpoints)
  |> List.filter (fun n -> not (String.equal n (Articulation.name a)))

let stage_articulation a =
  {
    st_kind = Segment.Articulation;
    st_name = Articulation.name a;
    st_ext = "";
    st_payload = Articulation_io.to_string a;
    st_index = Segment.index_of_articulation a;
    st_links = articulation_links a;
  }

(* One paged publish: write new segments + indexes, update the routing
   shards, swap the manifest (the single commit point), then unlink
   retired segment files.  A crash before the swap leaves the new files
   as orphans; a crash after it leaves the retired ones — fsck removes
   either, and readers only ever follow the manifest. *)
let paged_publish t ~(add : staged list) ~(remove : (Segment.kind * string) list)
    =
  let* entries =
    match manifest t with
    | Ok entries -> Ok entries
    | Error m -> Error ("manifest: " ^ m)
  in
  (* Stage every new segment on disk first. *)
  let* added =
    List.fold_left
      (fun acc st ->
        let* acc = acc in
        let* fp =
          Segment.write_segment t.root ~kind:st.st_kind ~name:st.st_name
            ~ext:st.st_ext st.st_payload
        in
        let* () = Segment.write_index t.root fp st.st_index in
        Ok ((st, fp) :: acc))
      (Ok []) add
    |> Result.map List.rev
  in
  let replaces (e : Segment.entry) =
    List.exists
      (fun (st, _) ->
        st.st_kind = e.Segment.kind && String.equal st.st_name e.Segment.name)
      added
    || List.exists
         (fun (k, n) -> k = e.Segment.kind && String.equal n e.Segment.name)
         remove
  in
  let retired, kept = List.partition replaces entries in
  let new_entries =
    kept
    @ List.map
        (fun (st, fp) ->
          {
            Segment.kind = st.st_kind;
            name = st.st_name;
            ext = st.st_ext;
            fp;
            links = st.st_links;
          })
        added
  in
  (* Incremental shard maintenance; any trouble reading a retired index
     falls back to a full rebuild from the new entry set. *)
  let retired_indexes =
    List.filter_map
      (fun (e : Segment.entry) ->
        (* A re-publish of identical bytes keeps the same fingerprint;
           its labels must not be retired. *)
        if List.exists (fun (_, fp) -> String.equal fp e.Segment.fp) added then
          None
        else
          match Segment.read_index t.root e.Segment.fp with
          | Ok idx -> Some (e.Segment.fp, idx)
          | Error _ -> Some (e.Segment.fp, Segment.{ idx_nodes = []; idx_edges = []; idx_parents = [] }))
      retired
  in
  let add_indexes =
    List.filter_map
      (fun (st, fp) ->
        if List.exists (fun (e : Segment.entry) -> String.equal e.Segment.fp fp) entries
        then None
        else Some (fp, st.st_index))
      added
  in
  let* () =
    match
      Segment.apply_shard_delta t.root ~remove:retired_indexes ~add:add_indexes
    with
    | Ok () -> Ok ()
    | Error _ -> Segment.rebuild_shards t.root new_entries
  in
  (* The commit point. *)
  let* () = Segment.write_manifest t.root new_entries in
  (* Post-commit cleanup: retired fingerprints no longer referenced. *)
  let still_referenced fp =
    List.exists (fun (e : Segment.entry) -> String.equal e.Segment.fp fp)
      new_entries
  in
  List.iter
    (fun (e : Segment.entry) ->
      if not (still_referenced e.Segment.fp) then begin
        ignore (Durable_io.remove ~path:(Segment.seg_path t.root e.Segment.fp));
        ignore (Durable_io.remove ~path:(Segment.idx_path t.root e.Segment.fp))
      end)
    retired;
  Ok ()

let add_source_flat t ~path ~name ~ext =
  let target = sources_dir t / (name ^ ext) in
  (* Drop any previously registered file for this name under another
     extension (same-extension re-adds are atomically overwritten by
     the rename, no removal needed).  A failure here must not be
     swallowed: the stale file would keep shadowing or duplicating
     the source, so it is surfaced as a warning. *)
  let warnings =
    match source_file t name with
    | Some old when not (String.equal old target) -> (
        match Durable_io.remove ~path:old with
        | Ok () -> []
        | Error m ->
            [
              Printf.sprintf "could not remove previously registered %s: %s"
                old m;
            ])
    | _ -> []
  in
  match Durable_io.read ~path with
  | Error m -> Error m
  | Ok content -> (
      match Durable_io.write ~path:target content with
      | Ok () -> Ok (name, warnings)
      | Error m -> Error m)

let add_source t ~path =
  match Loader.load_file path with
  | Error m -> Error (Printf.sprintf "cannot register %s: %s" path m)
  | Ok o -> (
      let name = Ontology.name o in
      let ext = ext_of_path path in
      match t.backend with
      | Flat -> add_source_flat t ~path ~name ~ext
      | Paged -> (
          match Durable_io.read ~path with
          | Error m -> Error m
          | Ok content -> (
              match
                paged_publish t
                  ~add:[ stage_source o ~ext ~payload:content ]
                  ~remove:[]
              with
              | Ok () -> Ok (name, [])
              | Error m -> Error m)))

let remove_source t name =
  match t.backend with
  | Flat -> (
      match source_file t name with
      | Some path -> Durable_io.remove ~path
      | None -> Error (Printf.sprintf "no source named %s" name))
  | Paged -> (
      match paged_entry t Segment.Source name with
      | None -> Error (Printf.sprintf "no source named %s" name)
      | Some _ -> paged_publish t ~add:[] ~remove:[ (Segment.Source, name) ])

let source_names t =
  match t.backend with
  | Flat ->
      payload_files (sources_dir t)
      |> List.map Filename.remove_extension
      |> List.sort_uniq String.compare
  | Paged ->
      manifest_entries t
      |> List.filter_map (fun (e : Segment.entry) ->
             match e.Segment.kind with
             | Segment.Source -> Some e.Segment.name
             | Segment.Articulation -> None)
      |> List.sort_uniq String.compare

let load_source t name =
  match t.backend with
  | Flat -> (
      match source_file t name with
      | None -> Error (Printf.sprintf "no source named %s" name)
      | Some path -> (
          match Loader.load_file path with
          | Ok o -> Ok o
          | Error m -> Error (Printf.sprintf "source %s: %s" name m)))
  | Paged -> (
      match paged_entry t Segment.Source name with
      | None -> Error (Printf.sprintf "no source named %s" name)
      | Some e -> (
          match paged_load t e with
          | Ok { cp_part = `Source o; _ } -> Ok o
          | Ok _ ->
              Error (Printf.sprintf "source %s: segment kind mismatch" name)
          | Error issue ->
              Error (Printf.sprintf "source %s: %s" name issue.Health.detail)))

let rel_file t path =
  let prefix = t.root / "" in
  let lp = String.length prefix in
  if String.length path > lp && String.equal (String.sub path 0 lp) prefix then
    String.sub path lp (String.length path - lp)
  else path

let classify_paged_raw t kind name =
  match paged_entry t kind name with
  | None ->
      Error
        {
          Health.part = part_of_kind kind;
          name;
          file =
            (match kind with
            | Segment.Source -> "sources/" ^ name
            | Segment.Articulation ->
                "articulations/" ^ name ^ ".articulation.xml");
          kind = Health.Unreadable;
          detail = "registered file disappeared";
        }
  | Some e -> (
      match paged_load t e with
      | Error issue -> Error issue
      | Ok p -> Ok (p.cp_part, p.cp_warns))

(* Degraded load of one source: IO errors, parse failures and checksum
   verdicts become Health issues instead of aborting the federation. *)
let classify_source_raw_flat t name =
  match source_file t name with
  | None ->
      Error
        {
          Health.part = Health.Source;
          name;
          file = "sources/" ^ name;
          kind = Health.Unreadable;
          detail = "registered file disappeared";
        }
  | Some path -> (
      let file = rel_file t path in
      match Durable_io.read_verified ~path with
      | Error m ->
          Error
            {
              Health.part = Health.Source;
              name;
              file;
              kind = Health.Unreadable;
              detail = m;
            }
      | Ok (content, verdict) -> (
          let format = Loader.format_of_path path in
          match Loader.load_string ?format ~name content with
          | Error m ->
              let detail =
                match verdict with
                | Durable_io.Mismatch { expected; actual } ->
                    Printf.sprintf
                      "%s (checksum mismatch: stamped %s, payload %s)" m
                      expected actual
                | _ -> m
              in
              Error
                {
                  Health.part = Health.Source;
                  name;
                  file;
                  kind = Health.Unparseable;
                  detail;
                }
          | Ok o -> (
              match verdict with
              | Durable_io.Mismatch { expected; actual } ->
                  Ok
                    ( o,
                      [
                        {
                          Health.part = Health.Source;
                          name;
                          file;
                          kind = Health.Checksum_mismatch;
                          detail =
                            Printf.sprintf
                              "stamped %s, payload %s — external edit or \
                               silent corruption (fsck re-stamps)"
                              expected actual;
                        };
                      ] )
              | _ -> Ok (o, []))))

let classify_source_raw t name =
  match t.backend with
  | Flat -> classify_source_raw_flat t name
  | Paged -> (
      match classify_paged_raw t Segment.Source name with
      | Error issue -> Error issue
      | Ok (`Source o, warns) -> Ok (o, warns)
      | Ok (`Articulation _, _) ->
          Error
            {
              Health.part = Health.Source;
              name;
              file = "sources/" ^ name;
              kind = Health.Unparseable;
              detail = "segment kind mismatch";
            })

(* Feed every load outcome to the part's circuit breaker; an open
   circuit skips the load entirely and surfaces as Breaker_open. *)
let classify_with_breaker t ~key ~skip_issue classify =
  if Breaker.should_skip t.breaker key then Error (skip_issue ())
  else
    match classify () with
    | Ok _ as ok ->
        Breaker.record_success t.breaker key;
        ok
    | Error (issue : Health.issue) ->
        Breaker.record_failure t.breaker key ~detail:issue.Health.detail;
        Error issue

let classify_source t name =
  let key = "source:" ^ name in
  classify_with_breaker t ~key
    ~skip_issue:(fun () ->
      {
        Health.part = Health.Source;
        name;
        file = "sources/" ^ name;
        kind = Health.Breaker_open;
        detail = Breaker.skip_detail t.breaker key;
      })
    (fun () -> classify_source_raw t name)

let breakers t = Breaker.snapshot t.breaker

let load_sources t =
  List.fold_left
    (fun (sources, issues) name ->
      match classify_source t name with
      | Ok (o, warns) -> (sources @ [ o ], issues @ warns)
      | Error issue -> (sources, issues @ [ issue ]))
    ([], []) (source_names t)

let articulation_file t name = articulations_dir t / (name ^ ".articulation.xml")

let store_articulation t articulation =
  match t.backend with
  | Flat ->
      Durable_io.write
        ~path:(articulation_file t (Articulation.name articulation))
        (Articulation_io.to_string articulation)
  | Paged -> paged_publish t ~add:[ stage_articulation articulation ] ~remove:[]

let articulation_names t =
  match t.backend with
  | Flat ->
      payload_files (articulations_dir t)
      |> List.filter_map (fun f ->
             if Filename.check_suffix f ".articulation.xml" then
               Some (Filename.chop_suffix f ".articulation.xml")
             else None)
      |> List.sort String.compare
  | Paged ->
      manifest_entries t
      |> List.filter_map (fun (e : Segment.entry) ->
             match e.Segment.kind with
             | Segment.Articulation -> Some e.Segment.name
             | Segment.Source -> None)
      |> List.sort_uniq String.compare

let load_articulation t name =
  match t.backend with
  | Flat ->
      let path = articulation_file t name in
      if not (Sys.file_exists path) then
        Error (Printf.sprintf "no articulation named %s" name)
      else Articulation_io.load_file path
  | Paged -> (
      match paged_entry t Segment.Articulation name with
      | None -> Error (Printf.sprintf "no articulation named %s" name)
      | Some e -> (
          match paged_load t e with
          | Ok { cp_part = `Articulation a; _ } -> Ok a
          | Ok _ ->
              Error
                (Printf.sprintf "articulation %s: segment kind mismatch" name)
          | Error issue ->
              Error
                (Printf.sprintf "articulation %s: %s" name issue.Health.detail)
          ))

let remove_articulation t name =
  match t.backend with
  | Flat ->
      let path = articulation_file t name in
      if not (Sys.file_exists path) then
        Error (Printf.sprintf "no articulation named %s" name)
      else Durable_io.remove ~path
  | Paged -> (
      match paged_entry t Segment.Articulation name with
      | None -> Error (Printf.sprintf "no articulation named %s" name)
      | Some _ ->
          paged_publish t ~add:[] ~remove:[ (Segment.Articulation, name) ])

let classify_articulation_raw_flat t name =
  let path = articulation_file t name in
  let file = rel_file t path in
  match Durable_io.read_verified ~path with
  | Error m ->
      Error
        {
          Health.part = Health.Articulation;
          name;
          file;
          kind = Health.Unreadable;
          detail = m;
        }
  | Ok (content, verdict) -> (
      match Articulation_io.of_string content with
      | Error m ->
          let detail =
            match verdict with
            | Durable_io.Mismatch { expected; actual } ->
                Printf.sprintf "%s (checksum mismatch: stamped %s, payload %s)"
                  m expected actual
            | _ -> m
          in
          Error
            {
              Health.part = Health.Articulation;
              name;
              file;
              kind = Health.Unparseable;
              detail;
            }
      | Ok a -> (
          match verdict with
          | Durable_io.Mismatch { expected; actual } ->
              Ok
                ( a,
                  [
                    {
                      Health.part = Health.Articulation;
                      name;
                      file;
                      kind = Health.Checksum_mismatch;
                      detail =
                        Printf.sprintf
                          "stamped %s, payload %s — external edit or silent \
                           corruption (fsck re-stamps)"
                          expected actual;
                    };
                  ] )
          | _ -> Ok (a, [])))

let classify_articulation_raw t name =
  match t.backend with
  | Flat -> classify_articulation_raw_flat t name
  | Paged -> (
      match classify_paged_raw t Segment.Articulation name with
      | Error issue -> Error issue
      | Ok (`Articulation a, warns) -> Ok (a, warns)
      | Ok (`Source _, _) ->
          Error
            {
              Health.part = Health.Articulation;
              name;
              file = "articulations/" ^ name ^ ".articulation.xml";
              kind = Health.Unparseable;
              detail = "segment kind mismatch";
            })

let classify_articulation t name =
  let key = "articulation:" ^ name in
  classify_with_breaker t ~key
    ~skip_issue:(fun () ->
      {
        Health.part = Health.Articulation;
        name;
        file = rel_file t (articulation_file t name);
        kind = Health.Breaker_open;
        detail = Breaker.skip_detail t.breaker key;
      })
    (fun () -> classify_articulation_raw t name)

let load_articulations t =
  List.fold_left
    (fun (arts, issues) name ->
      match classify_articulation t name with
      | Ok (a, warns) -> (arts @ [ a ], issues @ warns)
      | Error issue -> (arts, issues @ [ issue ]))
    ([], [])
    (articulation_names t)

(* ------------------------------------------------------------------ *)
(* Bulk publish                                                       *)
(* ------------------------------------------------------------------ *)

(* Streaming bulk publisher: parts are written as they arrive (bounded
   memory — the workload generator feeds million-node federations
   through this), and [commit] performs ONE shard rebuild and ONE
   manifest swap instead of a rewrite per part.  On the flat backend
   every part write is already durable and [commit] is a no-op.
   Staged names are expected unique; a crash before [commit] leaves
   only orphan segments, which fsck removes. *)
type publisher = {
  pub_ws : t;
  mutable pub_entries : Segment.entry list;  (* reversed *)
}

let publisher t = { pub_ws = t; pub_entries = [] }

let publish_staged p st =
  let t = p.pub_ws in
  match t.backend with
  | Flat -> (
      match st.st_kind with
      | Segment.Source ->
          Durable_io.write
            ~path:(sources_dir t / (st.st_name ^ st.st_ext))
            st.st_payload
      | Segment.Articulation ->
          Durable_io.write ~path:(articulation_file t st.st_name) st.st_payload)
  | Paged ->
      let* fp =
        Segment.write_segment t.root ~kind:st.st_kind ~name:st.st_name
          ~ext:st.st_ext st.st_payload
      in
      let* () = Segment.write_index t.root fp st.st_index in
      p.pub_entries <-
        {
          Segment.kind = st.st_kind;
          name = st.st_name;
          ext = st.st_ext;
          fp;
          links = st.st_links;
        }
        :: p.pub_entries;
      Ok ()

let publish_source p o ~ext ~payload =
  publish_staged p (stage_source o ~ext ~payload)

let publish_articulation p a = publish_staged p (stage_articulation a)

let commit p =
  let t = p.pub_ws in
  match t.backend with
  | Flat -> Ok ()
  | Paged ->
      let* existing =
        match manifest t with
        | Ok entries -> Ok entries
        | Error m -> Error ("manifest: " ^ m)
      in
      let staged = List.rev p.pub_entries in
      let superseded (e : Segment.entry) =
        List.exists
          (fun (e' : Segment.entry) ->
            e'.Segment.kind = e.Segment.kind
            && String.equal e'.Segment.name e.Segment.name)
          staged
      in
      let entries = List.filter (fun e -> not (superseded e)) existing @ staged in
      let* () = Segment.rebuild_shards t.root entries in
      Segment.write_manifest t.root entries

let articulate ?conversions t ~left ~right ~name ~rules =
  let* left_o = load_source t left in
  let* right_o = load_source t right in
  match
    Generator.generate ?conversions ~articulation_name:name ~left:left_o
      ~right:right_o rules
  with
  | exception Invalid_argument m -> Error m
  | r ->
      let* () = store_articulation t r.Generator.articulation in
      Ok (r.Generator.articulation, r.Generator.warnings)

(* Protocol debris in a directory: stray tmp files (torn writes) and
   sidecars whose payload is gone. *)
let stray_issues_in t part dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun f ->
           let path = dir / f in
           if Atomic_io.is_tmp f then
             Some
               {
                 Health.part;
                 name = f;
                 file = rel_file t path;
                 kind = Health.Torn;
                 detail = "in-flight tmp file left by an interrupted write";
               }
           else if
             Durable_io.is_sidecar f
             && not (Sys.file_exists (dir / Durable_io.payload_of_sidecar f))
           then
             Some
               {
                 Health.part;
                 name = f;
                 file = rel_file t path;
                 kind = Health.Orphan_sidecar;
                 detail = "checksum sidecar without a payload";
               }
           else None)

(* Paged debris scan: tmp files and orphan sidecars like the flat
   backend, plus orphan segments — .seg/.idx files no manifest entry
   references, debris from a crash on either side of a manifest swap.
   All degrade health until fsck sweeps them, mirroring Torn. *)
let stray_issues_paged t =
  let entries = manifest_entries t in
  let referenced fp =
    List.exists
      (fun (e : Segment.entry) -> String.equal e.Segment.fp fp)
      entries
  in
  let segs = Segment.segments_dir t.root in
  let seg_issues =
    if not (Sys.file_exists segs) then []
    else
      Sys.readdir segs |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun f ->
             let path = segs / f in
             let issue kind detail =
               Some
                 {
                   Health.part = Health.Store;
                   name = f;
                   file = rel_file t path;
                   kind;
                   detail;
                 }
             in
             if Atomic_io.is_tmp f then
               issue Health.Torn
                 "in-flight tmp file left by an interrupted write"
             else if
               Durable_io.is_sidecar f
               && not (Sys.file_exists (segs / Durable_io.payload_of_sidecar f))
             then issue Health.Orphan_sidecar "checksum sidecar without a payload"
             else if
               (Segment.is_seg f || Segment.is_idx f)
               && not (referenced (Filename.remove_extension f))
             then
               issue Health.Orphan_segment
                 "segment no manifest entry references (interrupted publish)"
             else None)
  in
  let manifest_tmp =
    let dir = t.root and base = Filename.basename (Segment.manifest_path t.root) in
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun f ->
           if
             Atomic_io.is_tmp f
             && String.length f >= String.length base
             && String.equal (String.sub f 0 (String.length base)) base
           then
             Some
               {
                 Health.part = Health.Store;
                 name = f;
                 file = rel_file t (dir / f);
                 kind = Health.Torn;
                 detail = "in-flight manifest swap left by a crash";
               }
           else None)
  in
  manifest_tmp @ seg_issues

let stray_issues t =
  match t.backend with
  | Flat ->
      stray_issues_in t Health.Source (sources_dir t)
      @ stray_issues_in t Health.Articulation (articulations_dir t)
  | Paged -> stray_issues_paged t

let health t =
  let sources, s_issues = load_sources t in
  let articulations, a_issues = load_articulations t in
  {
    Health.sources_ok = List.map Ontology.name sources;
    articulations_ok =
      List.sort String.compare (List.map Articulation.name articulations);
    issues = stray_issues t @ s_issues @ a_issues;
  }

(* Content fingerprint of a directory: sorted file names, each with the
   MD5 of its bytes.  Content-based rather than mtime-based, so a file
   rewritten with identical contents still hits and a touch-only change
   never causes a stale answer. *)
let dir_fingerprint dir =
  if not (Sys.file_exists dir) then "<absent>"
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (fun f ->
           let path = dir / f in
           let digest =
             try Digest.to_hex (Digest.file path) with Sys_error _ -> "?"
           in
           f ^ "=" ^ digest)
    |> String.concat ";"

let fingerprint t =
  match t.backend with
  | Flat ->
      dir_fingerprint (sources_dir t) ^ "|"
      ^ dir_fingerprint (articulations_dir t)
  | Paged -> (
      (* The manifest is the single commit point, so one small digest
         covers the whole workspace — no directory walk. *)
      match Segment.manifest_digest t.root with
      | Some d -> "paged:" ^ d
      | None -> "paged:<absent>")

(* The degraded federation: every healthy source and articulation serves;
   everything else is accounted for in the Health record. *)
let compute_space t =
  let sources, s_issues = load_sources t in
  let articulations, a_issues = load_articulations t in
  let health =
    {
      Health.sources_ok = List.map Ontology.name sources;
      articulations_ok =
        List.sort String.compare (List.map Articulation.name articulations);
      issues = stray_issues t @ s_issues @ a_issues;
    }
  in
  match Federation.of_parts ~sources ~articulations with
  | space -> Ok (space, health)
  | exception Invalid_argument m -> Error m

let space t =
  if not (Cache_stats.enabled ()) then compute_space t
  else begin
    (* Fingerprinting reads the disk and needs no lock; the memo check
       and any rebuild run under it, so concurrent domains missing on
       the same rollover compute the space once and all observe the
       same physical value. *)
    let fp = fingerprint t in
    Mutex.lock t.memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.memo_lock)
      (fun () ->
        match t.space_memo with
        | Some (fp', result) when String.equal fp fp' -> result
        | _ ->
            let result = compute_space t in
            t.space_memo <- Some (fp, result);
            result)
  end

(* ------------------------------------------------------------------ *)
(* Routed queries (paged backend)                                     *)
(* ------------------------------------------------------------------ *)

(* The ontology a bare query concept is qualified against.  Matches
   [Federation.primary_articulation] of the FULL space — the routed
   space restricts the federation, and the restriction must not change
   how the query text parses. *)
let default_ontology t =
  match List.rev (articulation_names t) with [] -> None | n :: _ -> Some n

(* The routed space for one articulation group: only the group's
   sources and articulations are decoded and merged.  Health carries the
   group's issues plus the store-level strays, so a reply still warns
   about what it serves — parts of OTHER groups are not scanned (that
   locality is the point of routing). *)
let compute_routed_space t rep =
  let entries = manifest_entries t in
  let rep_of = Segment.groups entries in
  let group =
    List.filter
      (fun (e : Segment.entry) -> String.equal (rep_of e.Segment.name) rep)
      entries
  in
  let sources, s_issues =
    List.fold_left
      (fun (ss, is) (e : Segment.entry) ->
        match e.Segment.kind with
        | Segment.Articulation -> (ss, is)
        | Segment.Source -> (
            match classify_source t e.Segment.name with
            | Ok (o, warns) -> (ss @ [ o ], is @ warns)
            | Error issue -> (ss, is @ [ issue ])))
      ([], []) group
  in
  let articulations, a_issues =
    List.fold_left
      (fun (aa, is) (e : Segment.entry) ->
        match e.Segment.kind with
        | Segment.Source -> (aa, is)
        | Segment.Articulation -> (
            match classify_articulation t e.Segment.name with
            | Ok (a, warns) -> (aa @ [ a ], is @ warns)
            | Error issue -> (aa, is @ [ issue ])))
      ([], []) group
  in
  let health =
    {
      Health.sources_ok = List.map Ontology.name sources;
      articulations_ok =
        List.sort String.compare (List.map Articulation.name articulations);
      issues = stray_issues t @ s_issues @ a_issues;
    }
  in
  match Federation.of_parts ~sources ~articulations with
  | space ->
      (* Publish the persisted label histograms of the group's segments
         as planner hints for the freshly merged graph: Plan_cost gets
         warm-index bucket estimates on a graph paged in cold.  Hints
         only sharpen cost estimates — executor results are unchanged. *)
      let buckets = Hashtbl.create 64 in
      List.iter
        (fun (e : Segment.entry) ->
          match Segment.read_index t.root e.Segment.fp with
          | Error _ -> ()
          | Ok idx ->
              List.iter
                (fun (label, n) ->
                  let prev =
                    Option.value ~default:0 (Hashtbl.find_opt buckets label)
                  in
                  Hashtbl.replace buckets label (prev + n))
                idx.Segment.idx_edges)
        group;
      if Hashtbl.length buckets > 0 then
        Lazy_index.register space.Federation.graph
          { Lazy_index.edge_bucket = (fun _side l -> Hashtbl.find_opt buckets l) };
      Ok (space, health)
  | exception Invalid_argument m -> Error m

let routed_space t rep =
  if not (Cache_stats.enabled ()) then compute_routed_space t rep
  else
    match Segment.manifest_digest t.root with
    | None -> compute_routed_space t rep
    | Some digest ->
        Mutex.lock t.memo_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.memo_lock)
          (fun () ->
            let table =
              match t.route_memo with
              | Some (d, table) when String.equal d digest -> table
              | _ ->
                  let table = Hashtbl.create 8 in
                  t.route_memo <- Some (digest, table);
                  table
            in
            match Hashtbl.find_opt table rep with
            | Some result -> result
            | None ->
                let result = compute_routed_space t rep in
                Hashtbl.add table rep result;
                result)

(* The space a query should run against.  Flat: the full federation.
   Paged: parse the query, route its anchor label through the shards to
   the one articulation group that can answer it, and page in only that
   group.  Any routing miss (parse failure, unknown label, shards midway
   through a crashed publish, a label spanning groups) falls back to the
   full space — routing is an optimisation, never a filter. *)
let query_space t text =
  match t.backend with
  | Flat -> space t
  | Paged -> (
      let fallback () = space t in
      match Query.parse ?default_ontology:(default_ontology t) text with
      | Error _ -> fallback ()
      | Ok q -> (
          let anchor = Term.qualified q.Query.concept in
          match Segment.lookup_label t.root anchor with
          | Error _ | Ok None -> fallback ()
          | Ok (Some line) -> (
              let entries = manifest_entries t in
              (* Only manifest-referenced fingerprints count: a shard
                 updated by a publish that crashed before its manifest
                 swap must not route to orphan segments. *)
              let owners =
                List.filter
                  (fun (e : Segment.entry) ->
                    List.exists (String.equal e.Segment.fp) line.Segment.sl_fps)
                  entries
              in
              if owners = [] then fallback ()
              else
                let rep_of = Segment.groups entries in
                match
                  List.sort_uniq String.compare
                    (List.map
                       (fun (e : Segment.entry) -> rep_of e.Segment.name)
                       owners)
                with
                | [ rep ] -> routed_space t rep
                | _ -> fallback ())))

let stale_bridges t =
  let sources, _ = load_sources t in
  let articulations, _ = load_articulations t in
  let has_term onto_name term =
    match List.find_opt (fun o -> Ontology.name o = onto_name) sources with
    | Some o -> Ontology.has_term o term
    | None -> true (* not a workspace source: cannot judge *)
  in
  Ok
    (List.concat_map
       (fun a ->
         let art_name = Articulation.name a in
         Articulation.bridges a
         |> List.filter (fun (b : Bridge.t) ->
                let endpoint_stale (term : Term.t) =
                  (not (String.equal term.Term.ontology art_name))
                  && not (has_term term.Term.ontology term.Term.name)
                in
                endpoint_stale b.Bridge.src || endpoint_stale b.Bridge.dst)
         |> List.map (fun b -> (art_name, b)))
       articulations)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

(* Storage-layer findings enter the same diagnostic stream as the
   analysis passes, under the "io" pass. *)
let io_diagnostic (i : Health.issue) =
  let code =
    match i.Health.kind with
    | Health.Torn -> "torn-write"
    | Health.Unreadable -> "unreadable"
    | Health.Unparseable -> "unparseable"
    | Health.Checksum_mismatch -> "checksum-mismatch"
    | Health.Orphan_sidecar -> "orphan-sidecar"
    | Health.Orphan_segment -> "orphan-segment"
    | Health.Breaker_open -> "breaker-open"
  in
  Diagnostic.v ~file:i.Health.file ~subject:i.Health.name ~code ~pass:"io"
    i.Health.detail

(* The lint view keeps the raw file texts alongside the parsed parts so
   the analysis passes can recover line/column spans. *)
let read_text path =
  match Durable_io.read ~path with Ok c -> Some c | Error _ -> None

(* ------------------------------------------------------------------ *)
(* edit                                                               *)
(* ------------------------------------------------------------------ *)

(* Apply a transformation stream to one registered source: load, apply,
   re-serialize in the file's own format, write through the durable
   path (flat) or publish a fresh segment (paged).  Alongside the write
   it maintains the incremental machinery: the pre-state label index is
   patched in O(|delta|) when warm, and the (fingerprint-before,
   fingerprint-after, delta) chain is recorded so the next [lint] can
   take the delta-driven path instead of re-reading the world. *)
let edit t ~source ops =
  Mutex.lock t.memo_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.memo_lock)
    (fun () ->
      let fp_before = fingerprint t in
      (* Does the incremental chain reach the bytes currently on disk? *)
      let chain =
        match (t.lint_memo, t.pending_edits) with
        | Some (fp_memo, ls), None when String.equal fp_memo fp_before ->
            Some (fp_memo, ls, [])
        | Some (fp_memo, ls), Some p
          when String.equal p.p_from fp_memo && String.equal p.p_to fp_before
          ->
            Some (fp_memo, ls, p.p_changes)
        | _ -> None
      in
      (* The base ontology: continue from the chained in-memory value
         when the chain holds (unchanged parts must stay physically the
         memoized values), else re-load from disk. *)
      let base =
        match chain with
        | None -> None
        | Some (_, ls, changes) -> (
            match
              List.find_opt (fun c -> String.equal c.ec_name source) changes
            with
            | Some c -> Some (c.ec_ontology, Some c)
            | None ->
                Option.map
                  (fun (s : Lint.source) -> (s.Lint.ontology, None))
                  (List.find_opt
                     (fun (s : Lint.source) ->
                       String.equal (Ontology.name s.Lint.ontology) source)
                     ls.ls_view.Lint.sources))
      in
      let* o, prev_change, chained =
        match base with
        | Some (o, c) -> Ok (o, c, true)
        | None ->
            let* o = load_source t source in
            Ok (o, None, false)
      in
      let* target =
        match t.backend with
        | Flat -> (
            match source_file t source with
            | Some path -> Ok (`Flat path)
            | None -> Error (Printf.sprintf "no source named %s" source))
        | Paged -> (
            match paged_entry t Segment.Source source with
            | Some e -> Ok (`Paged e.Segment.ext)
            | None -> Error (Printf.sprintf "no source named %s" source))
      in
      let ext =
        match target with `Flat path -> ext_of_path path | `Paged ext -> ext
      in
      let* post, delta =
        match Delta.of_ops (Ontology.graph o) ops with
        | r -> Ok r
        | exception Invalid_argument m -> Error m
      in
      let o' = Ontology.with_graph o post in
      let* payload =
        match
          Loader.save_string ?format:(Loader.format_of_path ("f" ^ ext)) o'
        with
        | Ok p -> Ok p
        | Error m -> Error (Printf.sprintf "source %s: %s" source m)
      in
      let* () =
        match target with
        | `Flat path -> Durable_io.write ~path payload
        | `Paged _ ->
            paged_publish t ~add:[ stage_source o' ~ext ~payload ] ~remove:[]
      in
      (* Keep the label index warm across the edit: the first edit of a
         chain builds the pre-state index (one full O(N+E) pass), every
         later one patches forward in O(|delta|) — so the feasibility
         scans and the query planner never pay a rebuild after an
         edit. *)
      if Cache_stats.enabled () then
        ignore
          (Label_index.update (Label_index.of_graph (Ontology.graph o)) delta
             post);
      (match chain with
      | Some (fp_memo, _, changes) when chained ->
          let fp_after = fingerprint t in
          let file =
            match target with
            | `Flat path -> Some (rel_file t path)
            | `Paged ext -> Some ("sources/" ^ source ^ ext)
          in
          let change =
            match prev_change with
            | Some c ->
                {
                  c with
                  ec_delta = Delta.union c.ec_delta delta;
                  ec_ontology = o';
                  ec_payload = payload;
                }
            | None ->
                {
                  ec_name = source;
                  ec_delta = delta;
                  ec_ontology = o';
                  ec_payload = payload;
                  ec_file = file;
                }
          in
          let changes =
            change
            :: List.filter
                 (fun c -> not (String.equal c.ec_name source))
                 changes
          in
          t.pending_edits <-
            Some { p_from = fp_memo; p_to = fp_after; p_changes = changes }
      | _ -> t.pending_edits <- None);
      Ok delta)

(* Lint is the offline full scan: it bypasses the circuit breakers so
   the ground-truth failure is always reported, and instead surfaces any
   breaker that the serving path has opened as its own diagnostic. *)
let compute_lint ~conversions ?enabled t =
  let sources, s_diags =
    List.fold_left
      (fun (ss, ds) name ->
        match classify_source_raw t name with
        | Error issue -> (ss, ds @ [ issue ])
        | Ok (o, warns) ->
            let file, text =
              match t.backend with
              | Flat ->
                  let path = source_file t name in
                  (Option.map (rel_file t) path, Option.bind path read_text)
              | Paged ->
                  let e = paged_entry t Segment.Source name in
                  (Option.map logical_file e, Option.bind e (paged_text t))
            in
            (ss @ [ Lint.source ?file ?text o ], ds @ warns))
      ([], []) (source_names t)
  in
  let articulations, a_diags =
    List.fold_left
      (fun (aa, ds) name ->
        match classify_articulation_raw t name with
        | Error issue -> (aa, ds @ [ issue ])
        | Ok (a, warns) ->
            let file, text =
              match t.backend with
              | Flat ->
                  let path = articulation_file t name in
                  (Some (rel_file t path), read_text path)
              | Paged ->
                  let e = paged_entry t Segment.Articulation name in
                  (Option.map logical_file e, Option.bind e (paged_text t))
            in
            (aa @ [ Lint.articulation ?file ?text a ], ds @ warns))
      ([], [])
      (articulation_names t)
  in
  let view = Lint.view ~conversions ~articulations sources in
  let report = Lint.run ?enabled view in
  let breaker_diags =
    List.filter_map
      (fun (b : Breaker.info) ->
        match b.Breaker.info_state with
        | Breaker.Open | Breaker.Half_open ->
            Some
              (Diagnostic.v ~subject:b.Breaker.name ~code:"breaker-open"
                 ~pass:"io"
                 (Breaker.skip_detail t.breaker b.Breaker.name))
        | Breaker.Closed -> None)
      (Breaker.snapshot t.breaker)
  in
  let io_diags =
    List.map io_diagnostic (stray_issues t @ s_diags @ a_diags)
    @ breaker_diags
  in
  let full =
    {
      report with
      Lint.diagnostics =
        List.stable_sort Diagnostic.order (io_diags @ report.Lint.diagnostics);
    }
  in
  (view, io_diags, full)

(* The delta-driven re-lint: substitute the edited ontologies into the
   memoized view (everything else stays physically the previous value,
   so its revision-keyed memo entries still answer), hand Lint the
   summarized delta for impact analysis, and splice the storage-layer
   diagnostics — the edited files were just rewritten by us, clean and
   stamped, so their previous io findings are dropped and the rest
   (whose files did not change) carried over. *)
let incremental_lint ?enabled (ls : lint_state) (p : pending) =
  let changed = List.map (fun c -> c.ec_name) p.p_changes in
  let delta =
    List.fold_left
      (fun acc c -> Delta.union acc c.ec_delta)
      Delta.empty p.p_changes
  in
  let sources =
    List.map
      (fun (s : Lint.source) ->
        match
          List.find_opt
            (fun c -> String.equal c.ec_name (Ontology.name s.Lint.ontology))
            p.p_changes
        with
        | Some c -> Lint.source ?file:c.ec_file ~text:c.ec_payload c.ec_ontology
        | None -> s)
      ls.ls_view.Lint.sources
  in
  let view = { ls.ls_view with Lint.sources } in
  let report = Lint.lint_incremental ?enabled ~delta ~changed view in
  let changed_files = List.filter_map (fun c -> c.ec_file) p.p_changes in
  let io =
    List.filter
      (fun (d : Diagnostic.t) ->
        match d.Diagnostic.file with
        | Some f -> not (List.mem f changed_files)
        | None -> true)
      ls.ls_io
  in
  let full =
    {
      report with
      Lint.diagnostics =
        List.stable_sort Diagnostic.order (io @ report.Lint.diagnostics);
    }
  in
  (view, io, full)

let lint ?(conversions = Conversion.builtin) ?enabled t =
  (* The memo key is the file fingerprint only, so it is valid only for
     the default registry; a custom registry bypasses it. *)
  if (not (Cache_stats.enabled ())) || conversions != Conversion.builtin then
    let _, _, report = compute_lint ~conversions ?enabled t in
    report
  else begin
    let fp = fingerprint t in
    let cfg = Lint.config_fingerprint enabled in
    Mutex.lock t.memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.memo_lock)
      (fun () ->
        let store (view, io, report) =
          t.lint_memo <-
            Some (fp, { ls_cfg = cfg; ls_view = view; ls_io = io;
                        ls_report = report });
          t.pending_edits <- None;
          report
        in
        match (t.lint_memo, t.pending_edits) with
        | Some (fp', ls), _
          when String.equal fp fp' && String.equal ls.ls_cfg cfg ->
            ls.ls_report
        | Some (fp_memo, ls), Some p
          when String.equal p.p_from fp_memo
               && String.equal p.p_to fp
               && String.equal ls.ls_cfg cfg ->
            store (incremental_lint ?enabled ls p)
        | _ -> store (compute_lint ~conversions ?enabled t))
  end

(* ------------------------------------------------------------------ *)
(* fsck                                                               *)
(* ------------------------------------------------------------------ *)

type repair =
  | Quarantined of { file : string; to_ : string; reason : string }
  | Restamped of { file : string; reason : string }
  | Removed_orphan of { file : string }
  | Removed_orphan_segment of { file : string }
  | Rebuilt_index of { file : string }
  | Rebuilt_manifest of { reason : string }

type fsck_report = { repairs : repair list; health : Health.t }

let pp_repair ppf = function
  | Quarantined { file; to_; reason } ->
      Format.fprintf ppf "quarantined %s -> %s (%s)" file to_ reason
  | Restamped { file; reason } ->
      Format.fprintf ppf "re-stamped %s (%s)" file reason
  | Removed_orphan { file } ->
      Format.fprintf ppf "removed orphan sidecar %s" file
  | Removed_orphan_segment { file } ->
      Format.fprintf ppf "removed orphan segment %s" file
  | Rebuilt_index { file } ->
      Format.fprintf ppf "rebuilt segment index %s" file
  | Rebuilt_manifest { reason } ->
      Format.fprintf ppf "rebuilt manifest (%s)" reason

let pp_fsck_report ppf r =
  Format.fprintf ppf "@[<v>";
  if r.repairs = [] then Format.fprintf ppf "nothing to repair@,"
  else
    List.iter (fun a -> Format.fprintf ppf "%a@," pp_repair a) r.repairs;
  Format.fprintf ppf "%a@]" Health.pp r.health

(* Move a file into <root>/quarantine, never overwriting earlier
   evidence. *)
let quarantine t path =
  mkdir_if_missing (quarantine_dir t);
  let base = Filename.basename path in
  let rec dest i =
    let candidate =
      if i = 0 then quarantine_dir t / base
      else quarantine_dir t / (base ^ "." ^ string_of_int i)
    in
    if Sys.file_exists candidate then dest (i + 1) else candidate
  in
  let d = dest 0 in
  match Sys.rename path d with
  | () -> Ok d
  | exception Sys_error m -> Error m

let quarantine_with_sidecar t path ~reason repairs =
  let repairs =
    match quarantine t path with
    | Ok d ->
        Quarantined { file = rel_file t path; to_ = rel_file t d; reason }
        :: repairs
    | Error _ -> repairs
  in
  let sc = Durable_io.sidecar_path path in
  if Sys.file_exists sc then
    match quarantine t sc with
    | Ok d ->
        Quarantined
          { file = rel_file t sc; to_ = rel_file t d; reason = "sidecar of " ^ Filename.basename path }
        :: repairs
    | Error _ -> repairs
  else repairs

let fsck_dir t part dir parse repairs =
  if not (Sys.file_exists dir) then repairs
  else begin
    let files = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
    (* 1. Torn writes: stray tmp files are quarantined as evidence. *)
    let repairs =
      List.fold_left
        (fun repairs f ->
          let path = dir / f in
          if Atomic_io.is_tmp f then
            match quarantine t path with
            | Ok d ->
                Quarantined
                  {
                    file = rel_file t path;
                    to_ = rel_file t d;
                    reason = "torn write (crash before rename)";
                  }
                :: repairs
            | Error _ -> repairs
          else repairs)
        repairs files
    in
    (* 2. Orphan sidecars. *)
    let repairs =
      List.fold_left
        (fun repairs f ->
          let path = dir / f in
          if
            Durable_io.is_sidecar f
            && not (Sys.file_exists (dir / Durable_io.payload_of_sidecar f))
          then
            match Atomic_io.remove path with
            | () -> Removed_orphan { file = rel_file t path } :: repairs
            | exception Sys_error _ -> repairs
          else repairs)
        repairs files
    in
    ignore part;
    (* 3. Payloads: unparseable files are quarantined; parseable files
       whose stamp is stale or missing are re-stamped. *)
    List.fold_left
      (fun repairs f ->
        let path = dir / f in
        if Atomic_io.is_tmp f || Durable_io.is_sidecar f || not (Sys.file_exists path)
        then repairs
        else
          match Durable_io.read_verified ~path with
          | Error m ->
              quarantine_with_sidecar t path ~reason:("unreadable: " ^ m) repairs
          | Ok (content, verdict) -> (
              match parse ~file:f content with
              | Error m ->
                  quarantine_with_sidecar t path ~reason:("unparseable: " ^ m)
                    repairs
              | Ok () -> (
                  match verdict with
                  | Durable_io.Verified -> repairs
                  | Durable_io.Unstamped -> (
                      match Durable_io.stamp path with
                      | Ok () ->
                          Restamped
                            { file = rel_file t path; reason = "no stamp: adopted" }
                          :: repairs
                      | Error _ -> repairs)
                  | Durable_io.Mismatch _ -> (
                      match Durable_io.stamp path with
                      | Ok () ->
                          Restamped
                            {
                              file = rel_file t path;
                              reason = "stale stamp: accepted external edit";
                            }
                          :: repairs
                      | Error _ -> repairs))))
      repairs files
  end

(* Paged fsck.  One deliberate difference from the flat backend: a
   segment whose bytes no longer hash to its manifest fingerprint is
   QUARANTINED, not re-stamped — the fingerprint is the name, so
   "accepting the edit" would be filing corrupt bytes under a name that
   promises different content.  Conversely a segment whose bytes DO
   match its fingerprint is authentic whatever the CRC sidecar says, so
   a stale or missing sidecar is re-stamped. *)
let fsck_paged t =
  let repairs = ref [] in
  let push r = repairs := r :: !repairs in
  let segs = Segment.segments_dir t.root in
  mkdir_if_missing segs;
  (* 1. Torn writes: stray tmp files (root-level manifest swaps and
     segment publishes) are quarantined as evidence. *)
  let sweep_tmp dir =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.iter (fun f ->
           let path = dir / f in
           if Atomic_io.is_tmp f && Sys.file_exists path then
             match quarantine t path with
             | Ok d ->
                 push
                   (Quarantined
                      {
                        file = rel_file t path;
                        to_ = rel_file t d;
                        reason = "torn write (crash before rename)";
                      })
             | Error _ -> ())
  in
  sweep_tmp t.root;
  sweep_tmp segs;
  (* 2. Orphan sidecars. *)
  Sys.readdir segs |> Array.to_list |> List.sort String.compare
  |> List.iter (fun f ->
         if
           Durable_io.is_sidecar f
           && not (Sys.file_exists (segs / Durable_io.payload_of_sidecar f))
         then
           match Atomic_io.remove (segs / f) with
           | () -> push (Removed_orphan { file = rel_file t (segs / f) })
           | exception Sys_error _ -> ());
  (* 3. The manifest itself: unreadable or missing means reconstructing
     the name map from the decodable segments on disk (first fingerprint
     wins on a duplicate name — crash debris can leave two). *)
  let entries0, manifest_rebuilt =
    match Segment.read_manifest t.root with
    | Ok entries -> (entries, false)
    | Error m ->
        let entries =
          Sys.readdir segs |> Array.to_list |> List.sort String.compare
          |> List.filter_map (fun f ->
                 if not (Segment.is_seg f) then None
                 else
                   let fp = Filename.remove_extension f in
                   match Segment.read_segment t.root fp with
                   | Ok (Ok (kind, name, ext, payload), _) ->
                       let links =
                         match kind with
                         | Segment.Source -> []
                         | Segment.Articulation -> (
                             match Articulation_io.of_string payload with
                             | Ok a -> articulation_links a
                             | Error _ -> [])
                       in
                       Some { Segment.kind; name; ext; fp; links }
                   | _ -> None)
          |> List.fold_left
               (fun acc (e : Segment.entry) ->
                 if
                   List.exists
                     (fun (e' : Segment.entry) ->
                       e'.Segment.kind = e.Segment.kind
                       && String.equal e'.Segment.name e.Segment.name)
                     acc
                 then acc
                 else e :: acc)
               []
          |> List.rev
        in
        push (Rebuilt_manifest { reason = "manifest unreadable: " ^ m });
        (entries, true)
  in
  (* 4. Every referenced segment: authentic (bytes hash to the
     fingerprint), decodable, parseable, and indexed — or quarantined
     and dropped from the manifest. *)
  let drop_entry (e : Segment.entry) reason =
    let seg = Segment.seg_path t.root e.Segment.fp in
    List.iter push (List.rev (quarantine_with_sidecar t seg ~reason []));
    let idx = Segment.idx_path t.root e.Segment.fp in
    if Sys.file_exists idx then
      List.iter push
        (List.rev
           (quarantine_with_sidecar t idx
              ~reason:("index of " ^ Filename.basename seg)
              []))
  in
  let keep =
    List.filter
      (fun (e : Segment.entry) ->
        let seg = Segment.seg_path t.root e.Segment.fp in
        let verdict =
          match Durable_io.verify_file ~path:seg () with
          | Error m -> Error ("unreadable: " ^ m)
          | Ok v -> (
              match Digest.to_hex (Digest.file seg) with
              | exception Sys_error m -> Error ("unreadable: " ^ m)
              | actual when not (String.equal actual e.Segment.fp) ->
                  Error
                    (Printf.sprintf
                       "content digest %s does not match fingerprint" actual)
              | _ -> Ok v)
        in
        match verdict with
        | Error reason ->
            drop_entry e reason;
            false
        | Ok v -> (
            (match v with
            | Durable_io.Verified -> ()
            | Durable_io.Unstamped -> (
                match Durable_io.stamp seg with
                | Ok () ->
                    push
                      (Restamped
                         { file = rel_file t seg; reason = "no stamp: adopted" })
                | Error _ -> ())
            | Durable_io.Mismatch _ -> (
                match Durable_io.stamp seg with
                | Ok () ->
                    push
                      (Restamped
                         {
                           file = rel_file t seg;
                           reason = "stale stamp: fingerprint authenticates payload";
                         })
                | Error _ -> ()));
            match Segment.read_segment t.root e.Segment.fp with
            | Error m ->
                drop_entry e ("unreadable: " ^ m);
                false
            | Ok (Error m, _) ->
                drop_entry e ("unparseable: " ^ m);
                false
            | Ok (Ok (kind, name, _ext, payload), _) ->
                if
                  kind <> e.Segment.kind
                  || not (String.equal name e.Segment.name)
                then begin
                  drop_entry e "segment header disagrees with the manifest";
                  false
                end
                else
                  let parsed =
                    match kind with
                    | Segment.Source -> (
                        let format =
                          Loader.format_of_path ("f" ^ e.Segment.ext)
                        in
                        match Loader.load_string ?format ~name payload with
                        | Ok o -> Ok (Segment.index_of_source o)
                        | Error m -> Error m)
                    | Segment.Articulation -> (
                        match Articulation_io.of_string payload with
                        | Ok a -> Ok (Segment.index_of_articulation a)
                        | Error m -> Error m)
                  in
                  (match parsed with
                  | Error m ->
                      drop_entry e ("unparseable: " ^ m);
                      false
                  | Ok fresh_idx -> (
                      (match Segment.read_index t.root e.Segment.fp with
                      | Ok _ -> ()
                      | Error _ -> (
                          match
                            Segment.write_index t.root e.Segment.fp fresh_idx
                          with
                          | Ok () ->
                              push
                                (Rebuilt_index
                                   {
                                     file =
                                       rel_file t
                                         (Segment.idx_path t.root e.Segment.fp);
                                   })
                          | Error _ -> ()));
                      true))))
      entries0
  in
  (* 5. Orphan segments: .seg/.idx files no surviving entry references —
     debris from a crash on either side of a manifest swap. *)
  let referenced fp =
    List.exists (fun (e : Segment.entry) -> String.equal e.Segment.fp fp) keep
  in
  Sys.readdir segs |> Array.to_list |> List.sort String.compare
  |> List.iter (fun f ->
         if
           (Segment.is_seg f || Segment.is_idx f)
           && (not (referenced (Filename.remove_extension f)))
           && Sys.file_exists (segs / f)
         then
           match Durable_io.remove ~path:(segs / f) with
           | Ok () ->
               push (Removed_orphan_segment { file = rel_file t (segs / f) })
           | Error _ -> ());
  (* 6. Re-publish the manifest when its entry set changed, and rebuild
     the routing shards from the survivors whenever anything was
     repaired (stale shard references would otherwise linger until the
     next publish). *)
  let dropped = List.length entries0 - List.length keep in
  if manifest_rebuilt || dropped > 0 then begin
    match Segment.write_manifest t.root keep with
    | Ok () ->
        if (not manifest_rebuilt) && dropped > 0 then
          push
            (Rebuilt_manifest
               {
                 reason =
                   Printf.sprintf "dropped %d quarantined entr%s" dropped
                     (if dropped = 1 then "y" else "ies");
               })
    | Error _ -> ()
  end;
  if !repairs <> [] then ignore (Segment.rebuild_shards t.root keep);
  List.rev !repairs

let fsck t =
  let repairs =
    match t.backend with
    | Paged -> fsck_paged t
    | Flat ->
        let parse_source ~file content =
          let format = Loader.format_of_path file in
          match
            Loader.load_string ?format ~name:(Filename.remove_extension file)
              content
          with
          | Ok _ -> Ok ()
          | Error m -> Error m
        in
        let parse_articulation ~file:_ content =
          match Articulation_io.of_string content with
          | Ok _ -> Ok ()
          | Error m -> Error m
        in
        []
        |> fsck_dir t Health.Source (sources_dir t) parse_source
        |> fsck_dir t Health.Articulation (articulations_dir t)
             parse_articulation
        |> List.rev
  in
  (* Anything repaired invalidates every derived result: the space memo
     is fingerprint-keyed (so already safe), but the global result caches
     may hold entries computed from pre-repair revisions of ontologies
     that no longer exist on disk. *)
  if repairs <> [] then begin
    Cache_stats.clear_all ();
    Mutex.lock t.memo_lock;
    t.space_memo <- None;
    t.lint_memo <- None;
    t.pending_edits <- None;
    t.route_memo <- None;
    Mutex.unlock t.memo_lock;
    Mutex.lock t.manifest_lock;
    t.manifest_memo <- None;
    Mutex.unlock t.manifest_lock;
    (* Decoded segments of quarantined fingerprints must not keep
       serving from the block cache. *)
    Block_cache.remove_group block_cache t.root;
    (* Repaired files deserve a fresh chance: open circuits would skip
       the very loads the repair just fixed. *)
    Breaker.reset t.breaker
  end;
  { repairs; health = health t }

(* ------------------------------------------------------------------ *)
(* status                                                             *)
(* ------------------------------------------------------------------ *)

let status t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "workspace %s\n" t.root);
  Buffer.add_string buf "sources:\n";
  List.iter
    (fun name ->
      match load_source t name with
      | Ok o ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %4d terms, %4d relationships\n" name
               (Ontology.nb_terms o)
               (Ontology.nb_relationships o))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (source_names t);
  Buffer.add_string buf "articulations:\n";
  List.iter
    (fun name ->
      match load_articulation t name with
      | Ok a ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %s <-> %s, %d bridges\n" name
               (Articulation.left a) (Articulation.right a)
               (Articulation.nb_bridges a))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (articulation_names t);
  (match stale_bridges t with
  | Ok [] -> ()
  | Ok stale ->
      Buffer.add_string buf
        (Printf.sprintf "stale bridges (%d) — source terms vanished:\n"
           (List.length stale));
      List.iter
        (fun (art, b) ->
          Buffer.add_string buf (Format.asprintf "  [%s] %a\n" art Bridge.pp b))
        stale
  | Error m -> Buffer.add_string buf (Printf.sprintf "stale check failed: %s\n" m));
  Buffer.add_string buf (Format.asprintf "%a\n" Health.pp (health t));
  Buffer.contents buf
