type t = {
  root : string;
  mutable space_memo : (string * (Federation.t, string) result) option;
      (* Last computed query space paired with the disk fingerprint it was
         built from: while the files under sources/ and articulations/ are
         byte-identical, [space] answers from the memo instead of
         re-parsing and re-merging everything.  Honours the global
         Cache_stats.enabled switch like every other cache. *)
}

let marker = "onion.workspace"
let marker_content = "onion workspace, format 1\n"

let ( let* ) = Result.bind

let ( / ) = Filename.concat

let root t = t.root

let sources_dir t = t.root / "sources"
let articulations_dir t = t.root / "articulations"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let is_workspace dir = Sys.file_exists (dir / marker)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let init dir =
  if is_workspace dir then
    Error (Printf.sprintf "%s is already a workspace" dir)
  else begin
    try
      mkdir_if_missing dir;
      mkdir_if_missing (dir / "sources");
      mkdir_if_missing (dir / "articulations");
      write_file (dir / marker) marker_content;
      Ok { root = dir; space_memo = None }
    with Sys_error m -> Error m
  end

let open_ dir =
  if is_workspace dir then Ok { root = dir; space_memo = None }
  else Error (Printf.sprintf "%s is not an onion workspace (missing %s)" dir marker)

(* Source files keep their original extension so the loader's format
   dispatch still applies; the registered name is the ontology's own. *)
let source_file t name =
  let candidates =
    [ name ^ ".xml"; name ^ ".idl"; name ^ ".adj"; name ^ ".graph"; name ^ ".txt" ]
  in
  List.find_map
    (fun f ->
      let path = sources_dir t / f in
      if Sys.file_exists path then Some path else None)
    candidates

let add_source t ~path =
  match Loader.load_file path with
  | Error m -> Error (Printf.sprintf "cannot register %s: %s" path m)
  | Ok o ->
      let name = Ontology.name o in
      let ext =
        match String.lowercase_ascii (Filename.extension path) with
        | "" -> ".xml"
        | e -> e
      in
      (* Drop any previously registered file for this name (possibly under
         another extension). *)
      (match source_file t name with
      | Some old -> (try Sys.remove old with Sys_error _ -> ())
      | None -> ());
      (try
         write_file (sources_dir t / (name ^ ext)) (read_file path);
         Ok name
       with Sys_error m -> Error m)

let remove_source t name =
  match source_file t name with
  | Some path ->
      (try
         Sys.remove path;
         Ok ()
       with Sys_error m -> Error m)
  | None -> Error (Printf.sprintf "no source named %s" name)

let source_names t =
  if not (Sys.file_exists (sources_dir t)) then []
  else
    Sys.readdir (sources_dir t)
    |> Array.to_list
    |> List.map Filename.remove_extension
    |> List.sort_uniq String.compare

let load_source t name =
  match source_file t name with
  | None -> Error (Printf.sprintf "no source named %s" name)
  | Some path -> (
      match Loader.load_file path with
      | Ok o -> Ok o
      | Error m -> Error (Printf.sprintf "source %s: %s" name m))

let load_sources t =
  List.fold_left
    (fun acc name ->
      let* sources = acc in
      let* o = load_source t name in
      Ok (sources @ [ o ]))
    (Ok []) (source_names t)

let articulation_file t name = articulations_dir t / (name ^ ".articulation.xml")

let store_articulation t articulation =
  Articulation_io.save_file articulation
    (articulation_file t (Articulation.name articulation))

let articulation_names t =
  if not (Sys.file_exists (articulations_dir t)) then []
  else
    Sys.readdir (articulations_dir t)
    |> Array.to_list
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".articulation.xml" then
             Some (Filename.chop_suffix f ".articulation.xml")
           else None)
    |> List.sort String.compare

let load_articulation t name =
  let path = articulation_file t name in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no articulation named %s" name)
  else Articulation_io.load_file path

let remove_articulation t name =
  let path = articulation_file t name in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no articulation named %s" name)
  else
    try
      Sys.remove path;
      Ok ()
    with Sys_error m -> Error m

let articulate ?conversions t ~left ~right ~name ~rules =
  let* left_o = load_source t left in
  let* right_o = load_source t right in
  match
    Generator.generate ?conversions ~articulation_name:name ~left:left_o
      ~right:right_o rules
  with
  | exception Invalid_argument m -> Error m
  | r ->
      store_articulation t r.Generator.articulation;
      Ok (r.Generator.articulation, r.Generator.warnings)

let load_articulations t =
  List.fold_left
    (fun acc name ->
      let* arts = acc in
      let* a = load_articulation t name in
      Ok (arts @ [ a ]))
    (Ok [])
    (articulation_names t)

(* Content fingerprint of a directory: sorted file names, each with the
   MD5 of its bytes.  Content-based rather than mtime-based, so a file
   rewritten with identical contents still hits and a touch-only change
   never causes a stale answer. *)
let dir_fingerprint dir =
  if not (Sys.file_exists dir) then "<absent>"
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (fun f ->
           let path = dir / f in
           let digest =
             try Digest.to_hex (Digest.file path) with Sys_error _ -> "?"
           in
           f ^ "=" ^ digest)
    |> String.concat ";"

let fingerprint t =
  dir_fingerprint (sources_dir t) ^ "|" ^ dir_fingerprint (articulations_dir t)

let compute_space t =
  let* sources = load_sources t in
  let* articulations = load_articulations t in
  match Federation.of_parts ~sources ~articulations with
  | space -> Ok space
  | exception Invalid_argument m -> Error m

let space t =
  if not (Cache_stats.enabled ()) then compute_space t
  else begin
    let fp = fingerprint t in
    match t.space_memo with
    | Some (fp', result) when String.equal fp fp' -> result
    | _ ->
        let result = compute_space t in
        t.space_memo <- Some (fp, result);
        result
  end

let stale_bridges t =
  let* sources = load_sources t in
  let* articulations = load_articulations t in
  let has_term onto_name term =
    match List.find_opt (fun o -> Ontology.name o = onto_name) sources with
    | Some o -> Ontology.has_term o term
    | None -> true (* not a workspace source: cannot judge *)
  in
  Ok
    (List.concat_map
       (fun a ->
         let art_name = Articulation.name a in
         Articulation.bridges a
         |> List.filter (fun (b : Bridge.t) ->
                let endpoint_stale (term : Term.t) =
                  (not (String.equal term.Term.ontology art_name))
                  && not (has_term term.Term.ontology term.Term.name)
                in
                endpoint_stale b.Bridge.src || endpoint_stale b.Bridge.dst)
         |> List.map (fun b -> (art_name, b)))
       articulations)

let status t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "workspace %s\n" t.root);
  Buffer.add_string buf "sources:\n";
  List.iter
    (fun name ->
      match load_source t name with
      | Ok o ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %4d terms, %4d relationships\n" name
               (Ontology.nb_terms o)
               (Ontology.nb_relationships o))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (source_names t);
  Buffer.add_string buf "articulations:\n";
  List.iter
    (fun name ->
      match load_articulation t name with
      | Ok a ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %s <-> %s, %d bridges\n" name
               (Articulation.left a) (Articulation.right a)
               (Articulation.nb_bridges a))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (articulation_names t);
  (match stale_bridges t with
  | Ok [] -> ()
  | Ok stale ->
      Buffer.add_string buf
        (Printf.sprintf "stale bridges (%d) — source terms vanished:\n"
           (List.length stale));
      List.iter
        (fun (art, b) ->
          Buffer.add_string buf (Format.asprintf "  [%s] %a\n" art Bridge.pp b))
        stale
  | Error m -> Buffer.add_string buf (Printf.sprintf "stale check failed: %s\n" m));
  Buffer.contents buf
