type space_result = (Federation.t * Health.t, string) result

type t = {
  root : string;
  memo_lock : Mutex.t;
      (* Guards both memos: the daemon's admission workers are domains,
         so concurrent requests against one workspace race on the memo
         slots.  Rebuilds run under the lock — serialising them means
         every domain observes the SAME physical space value for a given
         fingerprint, which is what the per-domain env memos
         revision-check against. *)
  mutable space_memo : (string * space_result) option;
      (* Last computed query space paired with the disk fingerprint it was
         built from: while the files under sources/ and articulations/ are
         byte-identical, [space] answers from the memo instead of
         re-parsing and re-merging everything.  Honours the global
         Cache_stats.enabled switch like every other cache. *)
  mutable lint_memo : (string * Lint.report) option;
      (* Same scheme for the whole lint report: byte-identical workspace
         files mean byte-identical findings. *)
  breaker : Breaker.t;
      (* Per-source circuit breakers: a repeatedly-corrupt file is
         skipped (Health.Breaker_open) instead of re-paying read+parse
         on every scan until its cooldown elapses. *)
}

let marker = "onion.workspace"
let marker_content = "onion workspace, format 1\n"

let ( let* ) = Result.bind

let ( / ) = Filename.concat

let root t = t.root

let sources_dir t = t.root / "sources"
let articulations_dir t = t.root / "articulations"
let quarantine_dir t = t.root / "quarantine"

let is_workspace dir = Sys.file_exists (dir / marker)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let init dir =
  if is_workspace dir then
    Error (Printf.sprintf "%s is already a workspace" dir)
  else begin
    try
      mkdir_if_missing dir;
      mkdir_if_missing (dir / "sources");
      mkdir_if_missing (dir / "articulations");
      Atomic_io.write (dir / marker) marker_content;
      Ok
        {
          root = dir;
          memo_lock = Mutex.create ();
          space_memo = None;
          lint_memo = None;
          breaker = Breaker.create ();
        }
    with Sys_error m -> Error m
  end

let open_ dir =
  if is_workspace dir then
    Ok
      {
        root = dir;
        memo_lock = Mutex.create ();
        space_memo = None;
        lint_memo = None;
        breaker = Breaker.create ();
      }
  else Error (Printf.sprintf "%s is not an onion workspace (missing %s)" dir marker)

(* Payload files only: in-flight tmp files and checksum sidecars are
   protocol artefacts, not registered content. *)
let payload_files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir
    |> Array.to_list
    |> List.filter (fun f ->
           not (Atomic_io.is_tmp f) && not (Durable_io.is_sidecar f))

(* Source files keep their original extension so the loader's format
   dispatch still applies; the registered name is the ontology's own. *)
let source_file t name =
  let candidates =
    [ name ^ ".xml"; name ^ ".idl"; name ^ ".adj"; name ^ ".graph"; name ^ ".txt" ]
  in
  List.find_map
    (fun f ->
      let path = sources_dir t / f in
      if Sys.file_exists path then Some path else None)
    candidates

let add_source t ~path =
  match Loader.load_file path with
  | Error m -> Error (Printf.sprintf "cannot register %s: %s" path m)
  | Ok o -> (
      let name = Ontology.name o in
      let ext =
        match String.lowercase_ascii (Filename.extension path) with
        | "" -> ".xml"
        | e -> e
      in
      let target = sources_dir t / (name ^ ext) in
      (* Drop any previously registered file for this name under another
         extension (same-extension re-adds are atomically overwritten by
         the rename, no removal needed).  A failure here must not be
         swallowed: the stale file would keep shadowing or duplicating
         the source, so it is surfaced as a warning. *)
      let warnings =
        match source_file t name with
        | Some old when not (String.equal old target) -> (
            match Durable_io.remove ~path:old with
            | Ok () -> []
            | Error m ->
                [
                  Printf.sprintf
                    "could not remove previously registered %s: %s" old m;
                ])
        | _ -> []
      in
      match Durable_io.read ~path with
      | Error m -> Error m
      | Ok content -> (
          match Durable_io.write ~path:target content with
          | Ok () -> Ok (name, warnings)
          | Error m -> Error m))

let remove_source t name =
  match source_file t name with
  | Some path -> Durable_io.remove ~path
  | None -> Error (Printf.sprintf "no source named %s" name)

let source_names t =
  payload_files (sources_dir t)
  |> List.map Filename.remove_extension
  |> List.sort_uniq String.compare

let load_source t name =
  match source_file t name with
  | None -> Error (Printf.sprintf "no source named %s" name)
  | Some path -> (
      match Loader.load_file path with
      | Ok o -> Ok o
      | Error m -> Error (Printf.sprintf "source %s: %s" name m))

let rel_file t path =
  let prefix = t.root / "" in
  let lp = String.length prefix in
  if String.length path > lp && String.equal (String.sub path 0 lp) prefix then
    String.sub path lp (String.length path - lp)
  else path

(* Degraded load of one source: IO errors, parse failures and checksum
   verdicts become Health issues instead of aborting the federation. *)
let classify_source_raw t name =
  match source_file t name with
  | None ->
      Error
        {
          Health.part = Health.Source;
          name;
          file = "sources/" ^ name;
          kind = Health.Unreadable;
          detail = "registered file disappeared";
        }
  | Some path -> (
      let file = rel_file t path in
      match Durable_io.read_verified ~path with
      | Error m ->
          Error
            {
              Health.part = Health.Source;
              name;
              file;
              kind = Health.Unreadable;
              detail = m;
            }
      | Ok (content, verdict) -> (
          let format = Loader.format_of_path path in
          match Loader.load_string ?format ~name content with
          | Error m ->
              let detail =
                match verdict with
                | Durable_io.Mismatch { expected; actual } ->
                    Printf.sprintf
                      "%s (checksum mismatch: stamped %s, payload %s)" m
                      expected actual
                | _ -> m
              in
              Error
                {
                  Health.part = Health.Source;
                  name;
                  file;
                  kind = Health.Unparseable;
                  detail;
                }
          | Ok o -> (
              match verdict with
              | Durable_io.Mismatch { expected; actual } ->
                  Ok
                    ( o,
                      [
                        {
                          Health.part = Health.Source;
                          name;
                          file;
                          kind = Health.Checksum_mismatch;
                          detail =
                            Printf.sprintf
                              "stamped %s, payload %s — external edit or \
                               silent corruption (fsck re-stamps)"
                              expected actual;
                        };
                      ] )
              | _ -> Ok (o, []))))

(* Feed every load outcome to the part's circuit breaker; an open
   circuit skips the load entirely and surfaces as Breaker_open. *)
let classify_with_breaker t ~key ~skip_issue classify =
  if Breaker.should_skip t.breaker key then Error (skip_issue ())
  else
    match classify () with
    | Ok _ as ok ->
        Breaker.record_success t.breaker key;
        ok
    | Error (issue : Health.issue) ->
        Breaker.record_failure t.breaker key ~detail:issue.Health.detail;
        Error issue

let classify_source t name =
  let key = "source:" ^ name in
  classify_with_breaker t ~key
    ~skip_issue:(fun () ->
      {
        Health.part = Health.Source;
        name;
        file = "sources/" ^ name;
        kind = Health.Breaker_open;
        detail = Breaker.skip_detail t.breaker key;
      })
    (fun () -> classify_source_raw t name)

let breakers t = Breaker.snapshot t.breaker

let load_sources t =
  List.fold_left
    (fun (sources, issues) name ->
      match classify_source t name with
      | Ok (o, warns) -> (sources @ [ o ], issues @ warns)
      | Error issue -> (sources, issues @ [ issue ]))
    ([], []) (source_names t)

let articulation_file t name = articulations_dir t / (name ^ ".articulation.xml")

let store_articulation t articulation =
  Durable_io.write
    ~path:(articulation_file t (Articulation.name articulation))
    (Articulation_io.to_string articulation)

let articulation_names t =
  payload_files (articulations_dir t)
  |> List.filter_map (fun f ->
         if Filename.check_suffix f ".articulation.xml" then
           Some (Filename.chop_suffix f ".articulation.xml")
         else None)
  |> List.sort String.compare

let load_articulation t name =
  let path = articulation_file t name in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no articulation named %s" name)
  else Articulation_io.load_file path

let remove_articulation t name =
  let path = articulation_file t name in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no articulation named %s" name)
  else Durable_io.remove ~path

let classify_articulation_raw t name =
  let path = articulation_file t name in
  let file = rel_file t path in
  match Durable_io.read_verified ~path with
  | Error m ->
      Error
        {
          Health.part = Health.Articulation;
          name;
          file;
          kind = Health.Unreadable;
          detail = m;
        }
  | Ok (content, verdict) -> (
      match Articulation_io.of_string content with
      | Error m ->
          let detail =
            match verdict with
            | Durable_io.Mismatch { expected; actual } ->
                Printf.sprintf "%s (checksum mismatch: stamped %s, payload %s)"
                  m expected actual
            | _ -> m
          in
          Error
            {
              Health.part = Health.Articulation;
              name;
              file;
              kind = Health.Unparseable;
              detail;
            }
      | Ok a -> (
          match verdict with
          | Durable_io.Mismatch { expected; actual } ->
              Ok
                ( a,
                  [
                    {
                      Health.part = Health.Articulation;
                      name;
                      file;
                      kind = Health.Checksum_mismatch;
                      detail =
                        Printf.sprintf
                          "stamped %s, payload %s — external edit or silent \
                           corruption (fsck re-stamps)"
                          expected actual;
                    };
                  ] )
          | _ -> Ok (a, [])))

let classify_articulation t name =
  let key = "articulation:" ^ name in
  classify_with_breaker t ~key
    ~skip_issue:(fun () ->
      {
        Health.part = Health.Articulation;
        name;
        file = rel_file t (articulation_file t name);
        kind = Health.Breaker_open;
        detail = Breaker.skip_detail t.breaker key;
      })
    (fun () -> classify_articulation_raw t name)

let load_articulations t =
  List.fold_left
    (fun (arts, issues) name ->
      match classify_articulation t name with
      | Ok (a, warns) -> (arts @ [ a ], issues @ warns)
      | Error issue -> (arts, issues @ [ issue ]))
    ([], [])
    (articulation_names t)

let articulate ?conversions t ~left ~right ~name ~rules =
  let* left_o = load_source t left in
  let* right_o = load_source t right in
  match
    Generator.generate ?conversions ~articulation_name:name ~left:left_o
      ~right:right_o rules
  with
  | exception Invalid_argument m -> Error m
  | r ->
      let* () = store_articulation t r.Generator.articulation in
      Ok (r.Generator.articulation, r.Generator.warnings)

(* Protocol debris in a directory: stray tmp files (torn writes) and
   sidecars whose payload is gone. *)
let stray_issues_in t part dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.filter_map (fun f ->
           let path = dir / f in
           if Atomic_io.is_tmp f then
             Some
               {
                 Health.part;
                 name = f;
                 file = rel_file t path;
                 kind = Health.Torn;
                 detail = "in-flight tmp file left by an interrupted write";
               }
           else if
             Durable_io.is_sidecar f
             && not (Sys.file_exists (dir / Durable_io.payload_of_sidecar f))
           then
             Some
               {
                 Health.part;
                 name = f;
                 file = rel_file t path;
                 kind = Health.Orphan_sidecar;
                 detail = "checksum sidecar without a payload";
               }
           else None)

let stray_issues t =
  stray_issues_in t Health.Source (sources_dir t)
  @ stray_issues_in t Health.Articulation (articulations_dir t)

let health t =
  let sources, s_issues = load_sources t in
  let articulations, a_issues = load_articulations t in
  {
    Health.sources_ok = List.map Ontology.name sources;
    articulations_ok =
      List.sort String.compare (List.map Articulation.name articulations);
    issues = stray_issues t @ s_issues @ a_issues;
  }

(* Content fingerprint of a directory: sorted file names, each with the
   MD5 of its bytes.  Content-based rather than mtime-based, so a file
   rewritten with identical contents still hits and a touch-only change
   never causes a stale answer. *)
let dir_fingerprint dir =
  if not (Sys.file_exists dir) then "<absent>"
  else
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (fun f ->
           let path = dir / f in
           let digest =
             try Digest.to_hex (Digest.file path) with Sys_error _ -> "?"
           in
           f ^ "=" ^ digest)
    |> String.concat ";"

let fingerprint t =
  dir_fingerprint (sources_dir t) ^ "|" ^ dir_fingerprint (articulations_dir t)

(* The degraded federation: every healthy source and articulation serves;
   everything else is accounted for in the Health record. *)
let compute_space t =
  let sources, s_issues = load_sources t in
  let articulations, a_issues = load_articulations t in
  let health =
    {
      Health.sources_ok = List.map Ontology.name sources;
      articulations_ok =
        List.sort String.compare (List.map Articulation.name articulations);
      issues = stray_issues t @ s_issues @ a_issues;
    }
  in
  match Federation.of_parts ~sources ~articulations with
  | space -> Ok (space, health)
  | exception Invalid_argument m -> Error m

let space t =
  if not (Cache_stats.enabled ()) then compute_space t
  else begin
    (* Fingerprinting reads the disk and needs no lock; the memo check
       and any rebuild run under it, so concurrent domains missing on
       the same rollover compute the space once and all observe the
       same physical value. *)
    let fp = fingerprint t in
    Mutex.lock t.memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.memo_lock)
      (fun () ->
        match t.space_memo with
        | Some (fp', result) when String.equal fp fp' -> result
        | _ ->
            let result = compute_space t in
            t.space_memo <- Some (fp, result);
            result)
  end

let stale_bridges t =
  let sources, _ = load_sources t in
  let articulations, _ = load_articulations t in
  let has_term onto_name term =
    match List.find_opt (fun o -> Ontology.name o = onto_name) sources with
    | Some o -> Ontology.has_term o term
    | None -> true (* not a workspace source: cannot judge *)
  in
  Ok
    (List.concat_map
       (fun a ->
         let art_name = Articulation.name a in
         Articulation.bridges a
         |> List.filter (fun (b : Bridge.t) ->
                let endpoint_stale (term : Term.t) =
                  (not (String.equal term.Term.ontology art_name))
                  && not (has_term term.Term.ontology term.Term.name)
                in
                endpoint_stale b.Bridge.src || endpoint_stale b.Bridge.dst)
         |> List.map (fun b -> (art_name, b)))
       articulations)

(* ------------------------------------------------------------------ *)
(* lint                                                               *)
(* ------------------------------------------------------------------ *)

(* Storage-layer findings enter the same diagnostic stream as the
   analysis passes, under the "io" pass. *)
let io_diagnostic (i : Health.issue) =
  let code =
    match i.Health.kind with
    | Health.Torn -> "torn-write"
    | Health.Unreadable -> "unreadable"
    | Health.Unparseable -> "unparseable"
    | Health.Checksum_mismatch -> "checksum-mismatch"
    | Health.Orphan_sidecar -> "orphan-sidecar"
    | Health.Breaker_open -> "breaker-open"
  in
  Diagnostic.v ~file:i.Health.file ~subject:i.Health.name ~code ~pass:"io"
    i.Health.detail

(* The lint view keeps the raw file texts alongside the parsed parts so
   the analysis passes can recover line/column spans. *)
let read_text path =
  match Durable_io.read ~path with Ok c -> Some c | Error _ -> None

(* Lint is the offline full scan: it bypasses the circuit breakers so
   the ground-truth failure is always reported, and instead surfaces any
   breaker that the serving path has opened as its own diagnostic. *)
let compute_lint ~conversions t =
  let sources, s_diags =
    List.fold_left
      (fun (ss, ds) name ->
        match classify_source_raw t name with
        | Error issue -> (ss, ds @ [ issue ])
        | Ok (o, warns) ->
            let path = source_file t name in
            let file = Option.map (rel_file t) path in
            let text = Option.bind path read_text in
            (ss @ [ Lint.source ?file ?text o ], ds @ warns))
      ([], []) (source_names t)
  in
  let articulations, a_diags =
    List.fold_left
      (fun (aa, ds) name ->
        match classify_articulation_raw t name with
        | Error issue -> (aa, ds @ [ issue ])
        | Ok (a, warns) ->
            let path = articulation_file t name in
            (aa @ [ Lint.articulation ~file:(rel_file t path) ?text:(read_text path) a ],
             ds @ warns))
      ([], [])
      (articulation_names t)
  in
  let view = Lint.view ~conversions ~articulations sources in
  let report = Lint.run view in
  let breaker_diags =
    List.filter_map
      (fun (b : Breaker.info) ->
        match b.Breaker.info_state with
        | Breaker.Open | Breaker.Half_open ->
            Some
              (Diagnostic.v ~subject:b.Breaker.name ~code:"breaker-open"
                 ~pass:"io"
                 (Breaker.skip_detail t.breaker b.Breaker.name))
        | Breaker.Closed -> None)
      (Breaker.snapshot t.breaker)
  in
  let io_diags =
    List.map io_diagnostic (stray_issues t @ s_diags @ a_diags)
    @ breaker_diags
  in
  {
    report with
    Lint.diagnostics =
      List.stable_sort Diagnostic.order (io_diags @ report.Lint.diagnostics);
  }

let lint ?(conversions = Conversion.builtin) t =
  (* The memo key is the file fingerprint only, so it is valid only for
     the default registry; a custom registry bypasses it. *)
  if (not (Cache_stats.enabled ())) || conversions != Conversion.builtin then
    compute_lint ~conversions t
  else begin
    let fp = fingerprint t in
    Mutex.lock t.memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.memo_lock)
      (fun () ->
        match t.lint_memo with
        | Some (fp', report) when String.equal fp fp' -> report
        | _ ->
            let report = compute_lint ~conversions t in
            t.lint_memo <- Some (fp, report);
            report)
  end

(* ------------------------------------------------------------------ *)
(* fsck                                                               *)
(* ------------------------------------------------------------------ *)

type repair =
  | Quarantined of { file : string; to_ : string; reason : string }
  | Restamped of { file : string; reason : string }
  | Removed_orphan of { file : string }

type fsck_report = { repairs : repair list; health : Health.t }

let pp_repair ppf = function
  | Quarantined { file; to_; reason } ->
      Format.fprintf ppf "quarantined %s -> %s (%s)" file to_ reason
  | Restamped { file; reason } ->
      Format.fprintf ppf "re-stamped %s (%s)" file reason
  | Removed_orphan { file } ->
      Format.fprintf ppf "removed orphan sidecar %s" file

let pp_fsck_report ppf r =
  Format.fprintf ppf "@[<v>";
  if r.repairs = [] then Format.fprintf ppf "nothing to repair@,"
  else
    List.iter (fun a -> Format.fprintf ppf "%a@," pp_repair a) r.repairs;
  Format.fprintf ppf "%a@]" Health.pp r.health

(* Move a file into <root>/quarantine, never overwriting earlier
   evidence. *)
let quarantine t path =
  mkdir_if_missing (quarantine_dir t);
  let base = Filename.basename path in
  let rec dest i =
    let candidate =
      if i = 0 then quarantine_dir t / base
      else quarantine_dir t / (base ^ "." ^ string_of_int i)
    in
    if Sys.file_exists candidate then dest (i + 1) else candidate
  in
  let d = dest 0 in
  match Sys.rename path d with
  | () -> Ok d
  | exception Sys_error m -> Error m

let quarantine_with_sidecar t path ~reason repairs =
  let repairs =
    match quarantine t path with
    | Ok d ->
        Quarantined { file = rel_file t path; to_ = rel_file t d; reason }
        :: repairs
    | Error _ -> repairs
  in
  let sc = Durable_io.sidecar_path path in
  if Sys.file_exists sc then
    match quarantine t sc with
    | Ok d ->
        Quarantined
          { file = rel_file t sc; to_ = rel_file t d; reason = "sidecar of " ^ Filename.basename path }
        :: repairs
    | Error _ -> repairs
  else repairs

let fsck_dir t part dir parse repairs =
  if not (Sys.file_exists dir) then repairs
  else begin
    let files = Sys.readdir dir |> Array.to_list |> List.sort String.compare in
    (* 1. Torn writes: stray tmp files are quarantined as evidence. *)
    let repairs =
      List.fold_left
        (fun repairs f ->
          let path = dir / f in
          if Atomic_io.is_tmp f then
            match quarantine t path with
            | Ok d ->
                Quarantined
                  {
                    file = rel_file t path;
                    to_ = rel_file t d;
                    reason = "torn write (crash before rename)";
                  }
                :: repairs
            | Error _ -> repairs
          else repairs)
        repairs files
    in
    (* 2. Orphan sidecars. *)
    let repairs =
      List.fold_left
        (fun repairs f ->
          let path = dir / f in
          if
            Durable_io.is_sidecar f
            && not (Sys.file_exists (dir / Durable_io.payload_of_sidecar f))
          then
            match Atomic_io.remove path with
            | () -> Removed_orphan { file = rel_file t path } :: repairs
            | exception Sys_error _ -> repairs
          else repairs)
        repairs files
    in
    ignore part;
    (* 3. Payloads: unparseable files are quarantined; parseable files
       whose stamp is stale or missing are re-stamped. *)
    List.fold_left
      (fun repairs f ->
        let path = dir / f in
        if Atomic_io.is_tmp f || Durable_io.is_sidecar f || not (Sys.file_exists path)
        then repairs
        else
          match Durable_io.read_verified ~path with
          | Error m ->
              quarantine_with_sidecar t path ~reason:("unreadable: " ^ m) repairs
          | Ok (content, verdict) -> (
              match parse ~file:f content with
              | Error m ->
                  quarantine_with_sidecar t path ~reason:("unparseable: " ^ m)
                    repairs
              | Ok () -> (
                  match verdict with
                  | Durable_io.Verified -> repairs
                  | Durable_io.Unstamped -> (
                      match Durable_io.stamp path with
                      | Ok () ->
                          Restamped
                            { file = rel_file t path; reason = "no stamp: adopted" }
                          :: repairs
                      | Error _ -> repairs)
                  | Durable_io.Mismatch _ -> (
                      match Durable_io.stamp path with
                      | Ok () ->
                          Restamped
                            {
                              file = rel_file t path;
                              reason = "stale stamp: accepted external edit";
                            }
                          :: repairs
                      | Error _ -> repairs))))
      repairs files
  end

let fsck t =
  let parse_source ~file content =
    let format = Loader.format_of_path file in
    match Loader.load_string ?format ~name:(Filename.remove_extension file) content with
    | Ok _ -> Ok ()
    | Error m -> Error m
  in
  let parse_articulation ~file:_ content =
    match Articulation_io.of_string content with Ok _ -> Ok () | Error m -> Error m
  in
  let repairs =
    []
    |> fsck_dir t Health.Source (sources_dir t) parse_source
    |> fsck_dir t Health.Articulation (articulations_dir t) parse_articulation
    |> List.rev
  in
  (* Anything repaired invalidates every derived result: the space memo
     is fingerprint-keyed (so already safe), but the global result caches
     may hold entries computed from pre-repair revisions of ontologies
     that no longer exist on disk. *)
  if repairs <> [] then begin
    Cache_stats.clear_all ();
    Mutex.lock t.memo_lock;
    t.space_memo <- None;
    t.lint_memo <- None;
    Mutex.unlock t.memo_lock;
    (* Repaired files deserve a fresh chance: open circuits would skip
       the very loads the repair just fixed. *)
    Breaker.reset t.breaker
  end;
  { repairs; health = health t }

(* ------------------------------------------------------------------ *)
(* status                                                             *)
(* ------------------------------------------------------------------ *)

let status t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "workspace %s\n" t.root);
  Buffer.add_string buf "sources:\n";
  List.iter
    (fun name ->
      match load_source t name with
      | Ok o ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %4d terms, %4d relationships\n" name
               (Ontology.nb_terms o)
               (Ontology.nb_relationships o))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (source_names t);
  Buffer.add_string buf "articulations:\n";
  List.iter
    (fun name ->
      match load_articulation t name with
      | Ok a ->
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %s <-> %s, %d bridges\n" name
               (Articulation.left a) (Articulation.right a)
               (Articulation.nb_bridges a))
      | Error m -> Buffer.add_string buf (Printf.sprintf "  %-20s ERROR: %s\n" name m))
    (articulation_names t);
  (match stale_bridges t with
  | Ok [] -> ()
  | Ok stale ->
      Buffer.add_string buf
        (Printf.sprintf "stale bridges (%d) — source terms vanished:\n"
           (List.length stale));
      List.iter
        (fun (art, b) ->
          Buffer.add_string buf (Format.asprintf "  [%s] %a\n" art Bridge.pp b))
        stale
  | Error m -> Buffer.add_string buf (Printf.sprintf "stale check failed: %s\n" m));
  Buffer.add_string buf (Format.asprintf "%a\n" Health.pp (health t));
  Buffer.contents buf
