(** Federation health: which parts of a workspace serve, and which fail.

    Networks of ontologies assume the query space survives partial
    failure of individual sources: one corrupt file must degrade the
    federation, not take it down.  A [Health.t] is the structured account
    of one workspace scan — every healthy source and articulation by
    name, plus one {!issue} per file that could not be fully trusted.

    Issues split into {e failures} (the file is excluded from the query
    space) and {e warnings} (the file serves, but something is off —
    e.g. a checksum stamp that no longer matches a parseable payload,
    the signature of an external edit). *)

type part = Source | Articulation | Store

type kind =
  | Torn  (** A stray in-flight tmp file: a write died before publishing. *)
  | Unreadable  (** IO error reading the payload. *)
  | Unparseable  (** Payload read but does not parse. *)
  | Checksum_mismatch
      (** Payload parses but its CRC stamp disagrees: external edit or
          silent corruption that still parses.  Warning — the file
          serves. *)
  | Orphan_sidecar  (** A CRC sidecar with no payload. *)
  | Orphan_segment
      (** A segment file no manifest entry references: debris from a
          crash between segment write and manifest swap.  fsck removes
          it. *)
  | Breaker_open
      (** The source's circuit breaker is open after repeated load
          failures: the load was skipped, not re-attempted. *)

type issue = {
  part : part;
  name : string;  (** Registered name, or the file name for strays. *)
  file : string;  (** Path relative to the workspace root. *)
  kind : kind;
  detail : string;
}

type t = {
  sources_ok : string list;  (** Sorted names serving queries. *)
  articulations_ok : string list;  (** Sorted. *)
  issues : issue list;
}

val empty : t

val is_failure : issue -> bool
(** [true] unless the issue is a warning ({!Checksum_mismatch}). *)

val ok : t -> bool
(** No issues at all. *)

val degraded : t -> bool
(** At least one {e failure}: something is excluded from the space. *)

val failures : t -> issue list
val warnings : t -> issue list

val string_of_kind : kind -> string

val pp_issue : Format.formatter -> issue -> unit

val pp : Format.formatter -> t -> unit
(** Multi-line human summary, as shown by [onion fsck] and [status]. *)
