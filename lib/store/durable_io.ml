exception Crashed = Atomic_io.Crashed

(* ------------------------------------------------------------------ *)
(* Sidecars                                                           *)
(* ------------------------------------------------------------------ *)

let sidecar_suffix = ".crc32"
let sidecar_path path = path ^ sidecar_suffix
let is_sidecar path = Filename.check_suffix path sidecar_suffix

let payload_of_sidecar path = Filename.chop_suffix path sidecar_suffix

let stamp_line content =
  Printf.sprintf "crc32 %s size %d\n"
    (Crc32.to_hex (Crc32.digest content))
    (String.length content)

(* "crc32 <hex> size <n>" -> (hex, n) *)
let parse_stamp line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "crc32"; hex; "size"; n ] -> (
      match (Crc32.of_hex hex, int_of_string_opt n) with
      | Some _, Some size -> Some (hex, size)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

type fault = Crash_before_rename | Torn_write | Enospc | Corrupt_read

let action_of_fault ~step fault =
  match (fault, (step : Atomic_io.step)) with
  | Crash_before_rename, _ -> Atomic_io.Crash "injected crash"
  | Torn_write, Atomic_io.Write -> Atomic_io.Torn 0.5
  | Torn_write, _ -> Atomic_io.Crash "injected crash (torn)"
  | Enospc, _ -> Atomic_io.Fail "No space left on device (injected)"
  | Corrupt_read, Atomic_io.Read -> Atomic_io.Corrupt
  | Corrupt_read, _ -> Atomic_io.Proceed

let inject plan =
  Atomic_io.reset_ops ();
  Atomic_io.set_hook
    (Some
       (fun ~op ~step ~path:_ ->
         match List.assoc_opt op plan with
         | None -> Atomic_io.Proceed
         | Some fault -> action_of_fault ~step fault))

let inject_random ~seed ~faults ~ops =
  let rng = Prng.create seed in
  let kinds = [ Crash_before_rename; Torn_write; Enospc; Corrupt_read ] in
  let rec draw acc n =
    if n = 0 || List.length acc >= ops then acc
    else
      let i = Prng.int rng (max 1 ops) in
      if List.mem_assoc i acc then draw acc n
      else draw ((i, Prng.pick rng kinds) :: acc) (n - 1)
  in
  let plan = List.sort compare (draw [] (max 0 faults)) in
  inject plan;
  plan

let inject_transient ~seed ~rate =
  let rng = Prng.create seed in
  Atomic_io.reset_ops ();
  Atomic_io.set_hook
    (Some
       (fun ~op:_ ~step:_ ~path:_ ->
         if Atomic_io.in_protected () && Prng.bool rng rate then
           Atomic_io.Fail "No space left on device (injected transient)"
         else Atomic_io.Proceed))

let install_env_faults () =
  match Sys.getenv_opt "ONION_FAULT_SEED" with
  | None -> ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | None -> ()
      | Some seed ->
          let rate =
            match Sys.getenv_opt "ONION_FAULT_RATE" with
            | Some r -> (
                match float_of_string_opt (String.trim r) with
                | Some f when f >= 0.0 && f <= 1.0 -> f
                | _ -> 0.02)
            | None -> 0.02
          in
          inject_transient ~seed ~rate)

let clear_faults () = Atomic_io.set_hook None

let ops = Atomic_io.ops
let reset_ops = Atomic_io.reset_ops

(* ------------------------------------------------------------------ *)
(* Durable operations                                                 *)
(* ------------------------------------------------------------------ *)

(* Bounded retry for transient Sys_errors.  Crashed is never caught: a
   simulated process death must behave like one. *)
let with_retries ~retries ~backoff_ms f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception Sys_error m ->
        if attempt >= retries then Error m
        else begin
          if backoff_ms > 0.0 then
            Unix.sleepf (backoff_ms *. (2.0 ** float_of_int attempt) /. 1000.0);
          go (attempt + 1)
        end
  in
  go 0

let write ?(retries = 3) ?(backoff_ms = 1.0) ~path content =
  with_retries ~retries ~backoff_ms (fun () ->
      Atomic_io.protect (fun () ->
          (* Payload first, sidecar second: a crash in between leaves a
             committed-but-unstamped payload, which readers trust and
             fsck adopts.  The reverse order could pair a fresh sidecar
             with a stale payload and cry corruption. *)
          Atomic_io.write path content;
          Atomic_io.write (sidecar_path path) (stamp_line content)))

let read ~path =
  match Atomic_io.read path with
  | content -> Ok content
  | exception Sys_error m -> Error m

type verdict =
  | Verified
  | Unstamped
  | Mismatch of { expected : string; actual : string }

let read_verified ~path =
  match Atomic_io.read path with
  | exception Sys_error m -> Error m
  | content -> (
      let sc = sidecar_path path in
      if not (Sys.file_exists sc) then Ok (content, Unstamped)
      else
        match Atomic_io.read sc with
        | exception Sys_error _ -> Ok (content, Unstamped)
        | line -> (
            match parse_stamp line with
            | None -> Ok (content, Unstamped)
            | Some (expected, size) ->
                let actual = Crc32.to_hex (Crc32.digest content) in
                if String.equal expected actual && size = String.length content
                then Ok (content, Verified)
                else Ok (content, Mismatch { expected; actual })))

(* Streaming verification: the payload is folded through Crc32 in
   chunks, so fsck over multi-hundred-MB segments never materialises
   them.  Same verdict lattice as [read_verified]. *)
let verify_file ?(chunk_bytes = 65536) ~path () =
  let sc = sidecar_path path in
  let stamp =
    if not (Sys.file_exists sc) then None
    else
      match Atomic_io.read sc with
      | exception Sys_error _ -> None
      | line -> parse_stamp line
  in
  match stamp with
  | None -> (
      (* Still touch the payload so a missing file is an error, not
         Unstamped. *)
      match Sys.file_exists path with
      | true -> Ok Unstamped
      | false -> Error (path ^ ": No such file or directory"))
  | Some (expected, size) -> (
      match
        Atomic_io.fold_file ~chunk_bytes path ~init:(Crc32.init, 0)
          ~f:(fun (st, n) buf len -> (Crc32.update_bytes st buf len, n + len))
      with
      | exception Sys_error m -> Error m
      | st, n ->
          let actual = Crc32.to_hex (Crc32.finish st) in
          if String.equal expected actual && size = n then Ok Verified
          else Ok (Mismatch { expected; actual }))

let stamp ?(retries = 3) ?(backoff_ms = 1.0) path =
  match Atomic_io.read path with
  | exception Sys_error m -> Error m
  | content ->
      with_retries ~retries ~backoff_ms (fun () ->
          Atomic_io.protect (fun () ->
              Atomic_io.write (sidecar_path path) (stamp_line content)))

let remove ~path =
  match Atomic_io.remove path with
  | exception Sys_error m -> Error m
  | () ->
      let sc = sidecar_path path in
      if Sys.file_exists sc then
        match Atomic_io.remove sc with
        | exception Sys_error m ->
            Error (Printf.sprintf "removed %s but not its sidecar: %s" path m)
        | () -> Ok ()
      else Ok ()
