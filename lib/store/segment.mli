(** Content-fingerprinted immutable segments for the paged workspace
    backend, plus the manifest, per-segment label indexes and label-hash
    routing shards built over them.

    Layout under a paged workspace root:

    {v
    <root>/manifest                   name -> fingerprint map (the commit point)
    <root>/segments/<fp>.seg          immutable segment: header + payload bytes
    <root>/segments/<fp>.idx          per-segment label index
    <root>/segments/labels.<k>.shard  routing shard k (k < shards)
    v}

    Everything is written through {!Durable_io} (atomic publish + CRC
    sidecars).  Segments are immutable and content-addressed — a mutation
    publishes new fingerprints and swaps the manifest, which is the single
    atomic commit point; anything newer than the manifest is an orphan
    that fsck removes. *)

type kind = Source | Articulation

type entry = {
  kind : kind;
  name : string;
  ext : string;  (** Original loader extension ([".adj"], ...); [""] if none. *)
  fp : string;  (** Hex MD5 of the segment file's bytes. *)
  links : string list;
      (** For articulations: every ontology name its bridges touch.
          Group assignment is recomputed from these on load. *)
}

type index = {
  idx_nodes : string list;  (** Qualified node labels, sorted. *)
  idx_edges : (string * int) list;  (** Edge-label histogram, sorted. *)
  idx_parents : (string * string) list;
      (** Direct SubclassOf (child, parent) pairs, qualified — the
          persisted subclass-closure seed. *)
}

(** {1 Paths} *)

val paged_marker : string
(** ["onion.paged"] — present in a paged workspace root. *)

val paged_marker_content : string

val segments_dir : string -> string
val manifest_path : string -> string
val seg_path : string -> string -> string
val idx_path : string -> string -> string
val is_seg : string -> bool
val is_idx : string -> bool
val is_shard : string -> bool

val shards : int
(** Routing shard count (64). *)

val shard_of_label : string -> int
(** Deterministic label -> shard routing (CRC-based, stable across OCaml
    versions). *)

val shard_path : string -> int -> string

(** {1 Segments} *)

val encode : kind:kind -> name:string -> ext:string -> string -> string
val decode : string -> (kind * string * string * string, string) result
(** [(kind, name, ext, payload)]. *)

val fingerprint : string -> string
(** Hex MD5 of encoded segment bytes. *)

val write_segment :
  string -> kind:kind -> name:string -> ext:string -> string ->
  (string, string) result
(** Publish a segment under its fingerprint; returns the fingerprint.
    Idempotent: an already-present fingerprint is not rewritten. *)

type verdict = Durable_io.verdict =
  | Verified
  | Unstamped
  | Mismatch of { expected : string; actual : string }

val read_segment :
  string -> string ->
  ((kind * string * string * string, string) result * verdict, string) result
(** Outer [Error]: unreadable file.  Inner [Error]: undecodable segment.
    The verdict lets callers surface checksum mismatches like the flat
    backend. *)

(** {1 Per-segment indexes} *)

val index_of_source : Ontology.t -> index
val index_of_articulation : Articulation.t -> index
(** Articulation indexes include bridge-endpoint labels, so a query
    anchored on a bridged source term routes to the whole group. *)

val encode_index : index -> string
val decode_index : string -> (index, string) result
val write_index : string -> string -> index -> (unit, string) result
val read_index : string -> string -> (index, string) result

(** {1 Manifest} *)

val encode_manifest : entry list -> string
val decode_manifest : string -> (entry list, string) result
val read_manifest : string -> (entry list, string) result
val write_manifest : string -> entry list -> (unit, string) result

val manifest_digest : string -> string option
(** Hex MD5 of the manifest file bytes — the paged workspace's content
    fingerprint.  [None] when the manifest is missing. *)

val groups : entry list -> string -> string
(** [groups entries] returns the group assignment: ontology name ->
    canonical representative (smallest name in its weakly connected
    component of the link graph). *)

(** {1 Routing shards} *)

type shard_line = { sl_label : string; sl_count : int; sl_fps : string list }

val read_shard : string -> int -> (shard_line list, string) result
(** Missing shard file reads as empty. *)

val write_shard : string -> int -> shard_line list -> (unit, string) result

val apply_shard_delta :
  string ->
  remove:(string * index) list ->
  add:(string * index) list ->
  (unit, string) result
(** Incremental shard maintenance for a publish delta; rewrites only the
    shards whose labels are touched. *)

val rebuild_shards : string -> entry list -> (unit, string) result
(** Full rebuild from the per-segment indexes (bulk publish and fsck). *)

val lookup_label : string -> string -> (shard_line option, string) result
(** Route one qualified label through its shard; [Ok None] when the
    label is unknown to the store. *)
