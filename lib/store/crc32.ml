(* Table-driven CRC-32, reflected, polynomial 0xEDB88320. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

(* The running state is the pre-inverted register, so [update] composes:
   feeding a string in arbitrary chunk sizes lands on the same value as
   one whole-string pass. *)
type state = int32

let init : state = 0xFFFFFFFFl

let update_bytes (crc : state) buf len : state =
  let table = Lazy.force table in
  let crc = ref crc in
  for i = 0 to len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !crc (Int32.of_int (Char.code (Bytes.unsafe_get buf i))))
           0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  !crc

let update (crc : state) s : state =
  update_bytes crc (Bytes.unsafe_of_string s) (String.length s)

let finish (crc : state) = Int32.logxor crc 0xFFFFFFFFl

let digest s = finish (update init s)

let to_hex crc = Printf.sprintf "%08lx" crc

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int32.of_string_opt ("0x" ^ s) with
    | Some v -> Some v
    | None -> None
