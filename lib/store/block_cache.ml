(* A byte-budgeted LRU over decoded segments.

   The graph-layer Lru bounds entry COUNT, which is the right bound for
   small memo tables; decoded segments vary from a few hundred bytes to
   tens of megabytes, so this cache bounds RESIDENT BYTES instead: an
   insert evicts least-recently-used entries until the budget holds.

   Domain safety mirrors Lru: every table access runs under the mutex,
   computes run outside it (two domains missing on one segment may both
   decode it; the duplicate insert is idempotent).

   Counters live in two places, deliberately:
   - the Cache_stats REGISTRY entry ("store.block"), cleared by
     clear_all like every result cache (a cold start empties the cache);
   - the Cache_stats PLAN counters ("store.block_hit" / "store.block_miss"
     / "store.block_evict" / "store.segment_load"), which survive
     clear_all — clearing caches models a cold start, not an amnesiac
     store, so the daemon's stats op keeps lifetime totals. *)

type 'v entry = {
  value : 'v;
  size : int;
  group : string;  (* owning workspace root, for per-tenant stats *)
  mutable last_used : int;
}

type 'v t = {
  name : string;
  budget : int;  (* bytes *)
  size_of : 'v -> int;
  tbl : (string, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let default_budget_bytes = 256 * 1024 * 1024

let budget_from_env () =
  match Sys.getenv_opt "ONION_BLOCK_CACHE_BYTES" with
  | None -> default_budget_bytes
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> default_budget_bytes)

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let snapshot c =
  locked c @@ fun () ->
  {
    Cache_stats.hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    entries = Hashtbl.length c.tbl;
    capacity = c.budget;
  }

let clear c =
  locked c @@ fun () ->
  Hashtbl.reset c.tbl;
  c.tick <- 0;
  c.bytes <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let create ?budget_bytes ~name ~size_of () =
  let budget =
    match budget_bytes with Some b when b > 0 -> b | _ -> budget_from_env ()
  in
  let c =
    {
      name;
      budget;
      size_of;
      tbl = Hashtbl.create 256;
      lock = Mutex.create ();
      tick = 0;
      bytes = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Cache_stats.register ~name
    ~snapshot:(fun () -> snapshot c)
    ~clear:(fun () -> clear c);
  c

let name c = c.name
let budget c = c.budget
let bytes_resident c = locked c @@ fun () -> c.bytes
let length c = locked c @@ fun () -> Hashtbl.length c.tbl

let touch c entry =
  c.tick <- c.tick + 1;
  entry.last_used <- c.tick

(* Caller holds the lock.  Evict LRU entries until [need] more bytes fit
   in the budget.  An over-budget single entry still gets admitted once
   the table is empty: refusing it would thrash the very segment the
   query needs. *)
let make_room_locked c need =
  while c.bytes + need > c.budget && Hashtbl.length c.tbl > 0 do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (k, e))
        c.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, e) ->
        Hashtbl.remove c.tbl k;
        c.bytes <- c.bytes - e.size;
        c.evictions <- c.evictions + 1;
        Cache_stats.record_plan "store.block_evict"
  done

let insert c ~group key value =
  locked c @@ fun () ->
  if not (Hashtbl.mem c.tbl key) then begin
    let size = c.size_of value in
    make_room_locked c size;
    let entry = { value; size; group; last_used = 0 } in
    touch c entry;
    Hashtbl.replace c.tbl key entry;
    c.bytes <- c.bytes + size
  end

let find_opt c key =
  if not (Cache_stats.enabled ()) then None
  else
    locked c @@ fun () ->
    match Hashtbl.find_opt c.tbl key with
    | Some entry ->
        touch c entry;
        c.hits <- c.hits + 1;
        Cache_stats.record_plan "store.block_hit";
        Some entry.value
    | None ->
        c.misses <- c.misses + 1;
        Cache_stats.record_plan "store.block_miss";
        None

let find_or_compute c ~group key f =
  match find_opt c key with
  | Some v -> v
  | None ->
      let value = f () in
      if Cache_stats.enabled () then insert c ~group key value;
      value

let mem c key = locked c @@ fun () -> Hashtbl.mem c.tbl key

let remove_group c group =
  locked c @@ fun () ->
  let victims =
    Hashtbl.fold
      (fun k e acc -> if String.equal e.group group then k :: acc else acc)
      c.tbl []
  in
  List.iter
    (fun k ->
      match Hashtbl.find_opt c.tbl k with
      | None -> ()
      | Some e ->
          Hashtbl.remove c.tbl k;
          c.bytes <- c.bytes - e.size)
    victims

type group_stats = { entries : int; bytes : int }

let stats_for_group c group =
  locked c @@ fun () ->
  Hashtbl.fold
    (fun _ e acc ->
      if String.equal e.group group then
        { entries = acc.entries + 1; bytes = acc.bytes + e.size }
      else acc)
    c.tbl { entries = 0; bytes = 0 }
