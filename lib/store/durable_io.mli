(** Durable, checksummed, fault-injectable storage for the workspace.

    "The articulation is the only thing that is physically stored"
    (section 2) — which makes the workspace's files the single point of
    durability failure for the whole federation.  This module is the
    policy layer over {!Atomic_io}'s atomic-publish mechanism:

    - {b atomic writes}: tmp file + fsync + rename, so a crash never
      leaves a torn committed file;
    - {b CRC-32 stamps}: every payload gets a [<file>.crc32] sidecar
      ([crc32 <hex> size <bytes>]) written after the payload commits, so
      silent corruption is detected on read.  A payload without a sidecar
      is merely {e unstamped} (externally added or crashed between the
      two writes) — still trusted, and adopted by fsck;
    - {b bounded retry with backoff} for transient environment failures
      (ENOSPC-style [Sys_error]s), exponential from [backoff_ms];
    - {b fault injection}: deterministic per-op fault plans and
      Prng-seeded random/transient schedules, addressed by
      {!Atomic_io.ops} index, to drive crash-matrix and soak tests.

    Simulated crashes ({!Crashed}) are deliberately {e not} retried or
    converted to [Error]: a crash kills the process, and the harness
    catches it where production would restart. *)

exception Crashed of string
(** Alias of {!Atomic_io.Crashed}. *)

(** {1 Durable operations} *)

val write :
  ?retries:int -> ?backoff_ms:float -> path:string -> string -> (unit, string) result
(** Atomically publish [content] at [path] and stamp its sidecar.
    Transient [Sys_error]s are retried up to [retries] (default 3) times
    with exponential backoff starting at [backoff_ms] (default 1.0;
    pass [0.] in tests).  [Error] carries the last failure. *)

val read : path:string -> (string, string) result
(** Whole-file read, [Sys_error] as [Error]. *)

type verdict =
  | Verified  (** Sidecar present and the checksum matches. *)
  | Unstamped  (** No sidecar: externally created or pre-durability. *)
  | Mismatch of { expected : string; actual : string }
      (** Sidecar disagrees with the payload: silent corruption, a torn
          sidecar update, or a legitimate external edit.  Callers decide
          (the workspace treats parseable mismatches as external edits
          and re-stamps them in fsck). *)

val read_verified : path:string -> (string * verdict, string) result

val verify_file : ?chunk_bytes:int -> path:string -> unit -> (verdict, string) result
(** Like {!read_verified} but never buffers the payload: the checksum is
    folded over the file in [chunk_bytes]-sized chunks
    ({!Atomic_io.fold_file}), so verifying a multi-hundred-MB segment
    costs O(chunk) memory.  [Error] if the payload is missing or
    unreadable. *)

val stamp : ?retries:int -> ?backoff_ms:float -> string -> (unit, string) result
(** (Re)write the sidecar for the payload currently at the path. *)

val remove : path:string -> (unit, string) result
(** Unlink the payload and its sidecar (if any). *)

(** {1 Sidecars} *)

val sidecar_suffix : string
(** [".crc32"] *)

val sidecar_path : string -> string
val is_sidecar : string -> bool

val payload_of_sidecar : string -> string
(** Inverse of {!sidecar_path}. *)

(** {1 Fault injection} *)

type fault =
  | Crash_before_rename
      (** Die at the step: for writes the tmp file is fully written but
          never published. *)
  | Torn_write  (** Persist only half the payload bytes, then die. *)
  | Enospc  (** Transient [Sys_error] — recoverable via {!write}'s retry. *)
  | Corrupt_read  (** The read at that op returns a bit-flipped payload. *)

val inject : (int * fault) list -> unit
(** Arm a deterministic plan: fault [f] fires when the global IO-op
    counter reaches index [i] (the counter is reset).  Ops not listed
    proceed normally.  Replaces any armed schedule. *)

val inject_random : seed:int -> faults:int -> ops:int -> (int * fault) list
(** A reproducible random plan: [faults] distinct op indices in
    [\[0, ops)] with random fault kinds, drawn from {!Prng} at [seed].
    Returns the plan (also armed) so harnesses can log it. *)

val inject_transient : seed:int -> rate:float -> unit
(** Arm probabilistic ENOSPC noise: each IO op inside a retry-supervised
    region ({!Atomic_io.protect}) fails with probability [rate], drawn
    deterministically from [seed].  Ops outside supervised regions are
    never failed.  This is the CI soak mode: the suite must pass with it
    armed, proving the retry layer absorbs transient faults. *)

val install_env_faults : unit -> unit
(** Arm {!inject_transient} from [ONION_FAULT_SEED] (int) and
    [ONION_FAULT_RATE] (float, default 0.02) when the seed variable is
    set; no-op otherwise.  Called by the test binaries and the CLI. *)

val clear_faults : unit -> unit
(** Disarm everything (the op counter keeps running). *)

val ops : unit -> int
(** Re-export of {!Atomic_io.ops}. *)

val reset_ops : unit -> unit
