(** A byte-budgeted, domain-safe LRU over decoded segments.

    Unlike {!Lru} (which bounds entry count), this cache bounds resident
    {e bytes}: inserts evict least-recently-used entries until the budget
    holds.  The budget defaults to 256 MiB, overridable at creation or
    via [ONION_BLOCK_CACHE_BYTES].

    Registered in {!Cache_stats} under its name (cleared by [clear_all]
    like every result cache); additionally bumps the plan counters
    ["store.block_hit"], ["store.block_miss"], ["store.block_evict"]
    which survive [clear_all], so the daemon keeps lifetime totals. *)

type 'v t

val create :
  ?budget_bytes:int -> name:string -> size_of:('v -> int) -> unit -> 'v t
(** @raise Invalid_argument on a duplicate registry name. *)

val name : 'v t -> string

val budget : 'v t -> int
(** Budget in bytes. *)

val bytes_resident : 'v t -> int
val length : 'v t -> int

val insert : 'v t -> group:string -> string -> 'v -> unit
(** [group] tags the entry's owner (a workspace root) for per-tenant
    stats and targeted invalidation. *)

val find_opt : 'v t -> string -> 'v option

val find_or_compute : 'v t -> group:string -> string -> (unit -> 'v) -> 'v
(** The compute runs outside the lock (see {!Lru}); with caching
    disabled ({!Cache_stats.enabled}) it computes directly. *)

val mem : 'v t -> string -> bool

val remove_group : 'v t -> string -> unit
(** Drop every entry tagged with the group (fsck / invalidation). *)

type group_stats = { entries : int; bytes : int }

val stats_for_group : 'v t -> string -> group_stats
