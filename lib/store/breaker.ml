(* Per-source circuit breakers for the degraded federation.

   A source that fails to load (torn, unreadable, unparseable) costs a
   full read + parse attempt on every workspace scan; a source that
   keeps failing pays that cost forever while contributing nothing.
   The breaker converts "keeps failing" into a state machine:

     Closed    — loads are attempted; consecutive failures counted.
     Open      — [threshold] consecutive failures reached: loads are
                 skipped outright (the caller records a [Breaker_open]
                 health issue) until the cooldown elapses.
     Half_open — cooldown elapsed: the next load is allowed through as
                 a probe.  Success closes the breaker; failure re-opens
                 it with a doubled cooldown (capped at 8x).

   The registry is keyed by an arbitrary string — the workspace uses
   ["source:NAME"] / ["articulation:NAME"] — and is mutex-guarded: the
   daemon's admission workers consult it concurrently. *)

type config = { threshold : int; cooldown_ms : int }

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> default)
  | None -> default

let default_config () =
  {
    threshold = env_int "ONION_BREAKER_THRESHOLD" 3;
    cooldown_ms = env_int "ONION_BREAKER_COOLDOWN_MS" 5000;
  }

type state = Closed | Open | Half_open

type entry = {
  mutable state : state;
  mutable failures : int;  (* consecutive *)
  mutable opened_at : float;
  mutable reopens : int;  (* re-opens from Half_open: cooldown doubles *)
  mutable last_detail : string;
}

type info = {
  name : string;
  info_state : state;
  info_failures : int;
  info_cooldown_ms : int;
  info_detail : string;
}

type t = { config : config; mutex : Mutex.t; entries : (string, entry) Hashtbl.t }

let create ?config () =
  let config = match config with Some c -> c | None -> default_config () in
  { config; mutex = Mutex.create (); entries = Hashtbl.create 8 }

let now () = Unix.gettimeofday ()

let entry_locked t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
      let e =
        {
          state = Closed;
          failures = 0;
          opened_at = 0.;
          reopens = 0;
          last_detail = "";
        }
      in
      Hashtbl.replace t.entries name e;
      e

let cooldown_ms t e = t.config.cooldown_ms * (1 lsl min 3 e.reopens)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let should_skip t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> false
      | Some e -> (
          match e.state with
          | Closed | Half_open -> false
          | Open ->
              let elapsed_ms =
                int_of_float ((now () -. e.opened_at) *. 1000.)
              in
              if elapsed_ms >= cooldown_ms t e then begin
                (* Cooldown served: let the next load probe. *)
                e.state <- Half_open;
                false
              end
              else true))

let record_failure t name ~detail =
  locked t (fun () ->
      let e = entry_locked t name in
      e.last_detail <- detail;
      match e.state with
      | Open -> ()
      | Half_open ->
          (* The probe failed: re-open, backing the cooldown off. *)
          e.state <- Open;
          e.opened_at <- now ();
          e.reopens <- e.reopens + 1
      | Closed ->
          e.failures <- e.failures + 1;
          if e.failures >= t.config.threshold then begin
            e.state <- Open;
            e.opened_at <- now ()
          end)

let record_success t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> ()
      | Some e ->
          e.state <- Closed;
          e.failures <- 0;
          e.reopens <- 0;
          e.last_detail <- "")

let state t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> Closed
      | Some e -> e.state)

(* The open-circuit health detail.  Deliberately free of live-countdown
   numbers: the status body must stay a pure function of (workspace
   contents x breaker state), not of the wall clock. *)
let skip_detail t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | None -> "circuit open"
      | Some e ->
          let base =
            Printf.sprintf "circuit open after %d failures (cooldown %dms)"
              (max e.failures t.config.threshold)
              (cooldown_ms t e)
          in
          if e.last_detail = "" then base
          else base ^ ": " ^ e.last_detail)

let string_of_state = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name e acc ->
          {
            name;
            info_state = e.state;
            info_failures = e.failures;
            info_cooldown_ms = cooldown_ms t e;
            info_detail = e.last_detail;
          }
          :: acc)
        t.entries [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset t =
  locked t (fun () -> Hashtbl.reset t.entries)
