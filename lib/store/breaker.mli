(** Per-source circuit breakers for the degraded federation.

    A repeatedly-failing source stops costing a load attempt per
    workspace scan: after [threshold] consecutive failures its circuit
    opens and loads are skipped (surfacing as a {!Health.Breaker_open}
    issue) until the cooldown elapses, at which point one probe load is
    let through — success closes the circuit, failure re-opens it with
    a doubled cooldown (capped at 8x).

    The registry is mutex-guarded; the daemon's admission workers
    consult it concurrently. *)

type config = { threshold : int; cooldown_ms : int }

val default_config : unit -> config
(** [ONION_BREAKER_THRESHOLD] (default 3) consecutive failures open the
    circuit for [ONION_BREAKER_COOLDOWN_MS] (default 5000). *)

type state = Closed | Open | Half_open

type info = {
  name : string;
  info_state : state;
  info_failures : int;  (** Consecutive failures while closed. *)
  info_cooldown_ms : int;  (** Current (possibly backed-off) cooldown. *)
  info_detail : string;  (** Last failure's detail, [""] if none. *)
}

type t

val create : ?config:config -> unit -> t
(** An empty registry ([config] defaults to {!default_config}, i.e. the
    environment). *)

val should_skip : t -> string -> bool
(** [true] iff the circuit is open and still cooling down.  An elapsed
    cooldown flips the circuit to {!Half_open} and returns [false] —
    the caller's load attempt is the probe. *)

val record_failure : t -> string -> detail:string -> unit
(** A load attempt failed.  Counts toward the threshold while closed;
    re-opens (with backoff) from {!Half_open}. *)

val record_success : t -> string -> unit
(** A load attempt succeeded: the circuit closes and all counters
    reset. *)

val state : t -> string -> state
(** {!Closed} for names never seen. *)

val skip_detail : t -> string -> string
(** Human detail for the {!Health.Breaker_open} issue.  Contains no
    live countdown, so repeated [status] bodies stay byte-identical
    while nothing changes. *)

val string_of_state : state -> string

val snapshot : t -> info list
(** Every entry, sorted by name. *)

val reset : t -> unit
(** Forget all state — e.g. after [fsck] repaired the workspace. *)
