(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over strings.

    Used by {!Durable_io} to stamp every payload the workspace writes, so
    silent media corruption is detected on read instead of surfacing as a
    confusing parse error (or worse, parsing successfully).  Not a
    cryptographic digest — it guards against bit rot and truncation, not
    adversaries. *)

val digest : string -> int32
(** CRC-32 of the whole string.  [digest "123456789" = 0xCBF43926l]. *)

(** {1 Streaming}

    A decomposed fold so large files can be checksummed chunk by chunk
    without buffering them ({!Durable_io.verify_file}).  Chunking is
    associative: any split of the input yields the same digest as the
    whole-string {!digest}. *)

type state

val init : state

val update : state -> string -> state
(** Fold a whole string into the state. *)

val update_bytes : state -> bytes -> int -> state
(** [update_bytes st buf len] folds the first [len] bytes of [buf]. *)

val finish : state -> int32

val to_hex : int32 -> string
(** Lower-case, zero-padded, 8 chars. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] on malformed input. *)
