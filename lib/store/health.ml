type part = Source | Articulation | Store

type kind =
  | Torn
  | Unreadable
  | Unparseable
  | Checksum_mismatch
  | Orphan_sidecar
  | Orphan_segment
  | Breaker_open

type issue = {
  part : part;
  name : string;
  file : string;
  kind : kind;
  detail : string;
}

type t = {
  sources_ok : string list;
  articulations_ok : string list;
  issues : issue list;
}

let empty = { sources_ok = []; articulations_ok = []; issues = [] }

let is_failure i = match i.kind with Checksum_mismatch -> false | _ -> true

let ok t = t.issues = []
let degraded t = List.exists is_failure t.issues
let failures t = List.filter is_failure t.issues
let warnings t = List.filter (fun i -> not (is_failure i)) t.issues

let string_of_part = function
  | Source -> "source"
  | Articulation -> "articulation"
  | Store -> "store"

let string_of_kind = function
  | Torn -> "torn-write"
  | Unreadable -> "unreadable"
  | Unparseable -> "unparseable"
  | Checksum_mismatch -> "checksum-mismatch"
  | Orphan_sidecar -> "orphan-sidecar"
  | Orphan_segment -> "orphan-segment"
  | Breaker_open -> "breaker-open"

let pp_issue ppf i =
  Format.fprintf ppf "%s %s [%s] %s: %s"
    (if is_failure i then "FAIL" else "WARN")
    (string_of_part i.part) (string_of_kind i.kind) i.name i.detail

let pp ppf t =
  if ok t then
    Format.fprintf ppf "health: OK (%d sources, %d articulations)"
      (List.length t.sources_ok)
      (List.length t.articulations_ok)
  else begin
    Format.fprintf ppf "health: %s (%d sources, %d articulations serving)"
      (if degraded t then "DEGRADED" else "OK with warnings")
      (List.length t.sources_ok)
      (List.length t.articulations_ok);
    List.iter (fun i -> Format.fprintf ppf "@,  %a" pp_issue i) t.issues
  end
