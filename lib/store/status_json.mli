(** Machine-readable workspace status.

    One serializer, two consumers: [onion workspace status --json] and
    the server's [status] / [health] protocol replies — so scripts stop
    screen-scraping the human rendering and both surfaces can never
    drift apart.

    The toolchain carries no JSON library; the shape is flat enough that
    the documents are assembled by hand (same approach as the
    [BENCH_*.json] emitters). *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val health : Health.t -> string
(** One health scan:
    {v
    { "ok": bool, "degraded": bool,
      "sources_ok": [..], "articulations_ok": [..],
      "issues": [ { "part", "name", "file", "kind", "severity", "detail" } ] }
    v} *)

val workspace : Workspace.t -> string
(** The full status document: workspace root, per-source term /
    relationship counts (or a load error), per-articulation endpoints
    and bridge counts, stale bridges, a lint summary (error / warning
    counts and exit code under the default {!Diagnostic.config}), and
    the {!health} object. *)
