let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

let arr items = "[" ^ String.concat ", " items ^ "]"

let obj fields =
  "{ "
  ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
  ^ " }"

let string_of_part = function
  | Health.Source -> "source"
  | Health.Articulation -> "articulation"
  | Health.Store -> "store"

let issue (i : Health.issue) =
  obj
    [
      ("part", str (string_of_part i.Health.part));
      ("name", str i.Health.name);
      ("file", str i.Health.file);
      ("kind", str (Health.string_of_kind i.Health.kind));
      ( "severity",
        str (if Health.is_failure i then "failure" else "warning") );
      ("detail", str i.Health.detail);
    ]

let health_obj (h : Health.t) =
  obj
    [
      ("ok", string_of_bool (Health.ok h));
      ("degraded", string_of_bool (Health.degraded h));
      ("sources_ok", arr (List.map str h.Health.sources_ok));
      ("articulations_ok", arr (List.map str h.Health.articulations_ok));
      ("issues", arr (List.map issue h.Health.issues));
    ]

let health h = health_obj h ^ "\n"

let workspace ws =
  let sources =
    List.map
      (fun name ->
        match Workspace.load_source ws name with
        | Ok o ->
            obj
              [
                ("name", str name);
                ("terms", string_of_int (Ontology.nb_terms o));
                ("relationships", string_of_int (Ontology.nb_relationships o));
              ]
        | Error m -> obj [ ("name", str name); ("error", str m) ])
      (Workspace.source_names ws)
  in
  let articulations =
    List.map
      (fun name ->
        match Workspace.load_articulation ws name with
        | Ok a ->
            obj
              [
                ("name", str name);
                ("left", str (Articulation.left a));
                ("right", str (Articulation.right a));
                ("bridges", string_of_int (Articulation.nb_bridges a));
              ]
        | Error m -> obj [ ("name", str name); ("error", str m) ])
      (Workspace.articulation_names ws)
  in
  let stale =
    match Workspace.stale_bridges ws with
    | Error m -> [ obj [ ("error", str m) ] ]
    | Ok stale ->
        List.map
          (fun (art, b) ->
            obj
              [
                ("articulation", str art);
                ("bridge", str (Format.asprintf "%a" Bridge.pp b));
              ])
          stale
  in
  let lint_summary =
    let report = Workspace.lint ws in
    let ds =
      Diagnostic.apply_config Diagnostic.default_config
        report.Lint.diagnostics
    in
    obj
      [
        ("errors", string_of_int (List.length (Diagnostic.errors ds)));
        ("warnings", string_of_int (List.length (Diagnostic.warnings ds)));
        ("exit_code", string_of_int (Diagnostic.exit_code ds));
      ]
  in
  (* No process-level counters here: status is a pure function of the
     workspace (the daemon's concurrent soak asserts replies bit-for-bit
     equal), so the adaptive planners' strategy distribution is reported
     by the daemon's stats op instead, next to the cache counters.
     Breaker entries only exist once a load has failed, and their fields
     carry no live countdowns, so an unchanging workspace keeps an
     unchanging status body. *)
  (* Pure workspace facts only (like everything else in this body):
     the block-cache counters are process state and live in the daemon's
     stats op. *)
  let store_obj =
    if not (Workspace.is_paged ws) then obj [ ("backend", str "flat") ]
    else
      let root = Workspace.root ws in
      let entries =
        match Segment.read_manifest root with Ok e -> e | Error _ -> []
      in
      let count k =
        List.length
          (List.filter (fun (e : Segment.entry) -> e.Segment.kind = k) entries)
      in
      let shard_files =
        let dir = Segment.segments_dir root in
        if Sys.file_exists dir then
          Array.fold_left
            (fun n f -> if Segment.is_shard f then n + 1 else n)
            0 (Sys.readdir dir)
        else 0
      in
      obj
        [
          ("backend", str "paged");
          ("segments", string_of_int (List.length entries));
          ("source_segments", string_of_int (count Segment.Source));
          ("articulation_segments", string_of_int (count Segment.Articulation));
          ("shards", string_of_int shard_files);
        ]
  in
  let breaker (b : Breaker.info) =
    obj
      [
        ("name", str b.Breaker.name);
        ("state", str (Breaker.string_of_state b.Breaker.info_state));
        ("failures", string_of_int b.Breaker.info_failures);
        ("cooldown_ms", string_of_int b.Breaker.info_cooldown_ms);
        ("detail", str b.Breaker.info_detail);
      ]
  in
  obj
    [
      ("workspace", str (Workspace.root ws));
      ("store", store_obj);
      ("sources", arr sources);
      ("articulations", arr articulations);
      ("stale_bridges", arr stale);
      ("lint", lint_summary);
      ("breakers", arr (List.map breaker (Workspace.breakers ws)));
      ("health", health_obj (Workspace.health ws));
    ]
  ^ "\n"
