type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  message : string;
  pass : string;
  file : string option;
  span : Loc.span option;
  subject : string option;
  related : string list;
}

(* ------------------------------------------------------------------ *)
(* Check catalog                                                      *)
(* ------------------------------------------------------------------ *)

type check = {
  check_code : string;
  check_pass : string;
  default_severity : severity;
  default_enabled : bool;
  summary : string;
}

let c ?(enabled = true) pass code severity summary =
  {
    check_code = code;
    check_pass = pass;
    default_severity = severity;
    default_enabled = enabled;
    summary;
  }

let catalog =
  [
    (* Per-ontology structural consistency (Consistency.check). *)
    c "consistency" "subclass-cycle" Error
      "a class is a proper subclass of itself";
    c "consistency" "si-cycle" Warning
      "semantic-implication cycle: terms are mutually implied";
    c "consistency" "attribute-cycle" Warning "AttributeOf cycle";
    c "consistency" "instance-of-instance" Error
      "a term is an instance and simultaneously has instances";
    c "consistency" "class-and-instance" Warning
      "a term participates in the taxonomy and is also an instance";
    c "consistency" "inverse-unknown" Error
      "a relationship property names an undeclared relationship";
    c ~enabled:false "consistency" "undeclared-relationship" Warning
      "an edge label has no relationship declaration (strict)";
    (* Per-articulation rule conflicts (Conflict.check). *)
    c "conflict" "disjoint-implication" Error
      "an implication path connects terms declared disjoint";
    c "conflict" "disjoint-overlap" Error
      "a term implies both sides of a disjointness declaration";
    c "conflict" "self-implication" Error "a rule implies a term by itself";
    c "conflict" "functional-clash" Error
      "two functional rules convert the same pair with different functions";
    c "conflict" "duplicate-rule" Warning "two rules have the same body";
    c "conflict" "unknown-term" Warning
      "a rule names a term absent from its source ontology";
    (* Whole-workspace rule analysis. *)
    c "rules" "dead-rule" Warning
      "a pattern operand's label/degree signature cannot match any source";
    c "rules" "one-sided-variable" Warning
      "a pattern variable not on the representative node never affects \
       generation";
    c "rules" "shadowed-rule" Warning
      "the rule is derivable from the remaining rules and taxonomy";
    (* Articulation network. *)
    c "bridges" "dangling-bridge" Error
      "a bridge endpoint names a term absent from its source ontology";
    (* Horn-rule sets. *)
    c "horn" "unstratified-horn" Warning
      "relation-property Horn rules form a derivation cycle across \
       distinct relations";
    (* Conversion registry. *)
    c "conversions" "unknown-converter" Error
      "a functional rule names an unregistered conversion function";
    c "conversions" "missing-inverse" Warning
      "a conversion used by a bridge declares no inverse";
    c "conversions" "roundtrip-drift" Warning
      "a conversion's declared inverse drifts on probe values";
    (* Storage-layer findings mapped from Health. *)
    c "io" "torn-write" Error "an in-flight tmp file from an interrupted write";
    c "io" "unreadable" Error "a registered file cannot be read";
    c "io" "unparseable" Error "a registered file does not parse";
    c "io" "checksum-mismatch" Warning
      "a payload parses but its checksum stamp disagrees";
    c "io" "orphan-sidecar" Error "a checksum sidecar without a payload";
    c "io" "breaker-open" Error
      "a part's circuit breaker is open after repeated load failures";
  ]

let find_check code =
  List.find_opt (fun ck -> String.equal ck.check_code code) catalog

let v ?severity ?file ?span ?subject ?(related = []) ~code ~pass message =
  let severity =
    match severity with
    | Some s -> s
    | None -> (
        match find_check code with
        | Some ck -> ck.default_severity
        | None -> Warning)
  in
  { code; severity; message; pass; file; span; subject; related }

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  enable : string list;
  disable : string list;
  as_error : string list;
  as_warning : string list;
}

let default_config = { enable = []; disable = []; as_error = []; as_warning = [] }

let mem code codes = List.exists (String.equal code) codes

let code_enabled cfg code =
  if mem code cfg.disable then false
  else if mem code cfg.enable then true
  else match find_check code with Some ck -> ck.default_enabled | None -> true

let apply_config cfg ds =
  List.filter_map
    (fun d ->
      if not (code_enabled cfg d.code) then None
      else if mem d.code cfg.as_error then Some { d with severity = Error }
      else if mem d.code cfg.as_warning then Some { d with severity = Warning }
      else Some d)
    ds

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let severity_rank = function Error -> 0 | Warning -> 1

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b -> cmp a b

let order a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  Int.compare (severity_rank a.severity) (severity_rank b.severity) <?> fun () ->
  compare_opt String.compare a.file b.file <?> fun () ->
  compare_opt
    (fun (s1 : Loc.span) s2 -> Loc.compare_pos s1.Loc.start s2.Loc.start)
    a.span b.span
  <?> fun () ->
  String.compare a.code b.code <?> fun () ->
  compare_opt String.compare a.subject b.subject <?> fun () ->
  String.compare a.message b.message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let warnings ds = List.filter (fun d -> d.severity = Warning) ds

let exit_code ds =
  if errors ds <> [] then 2 else if warnings ds <> [] then 1 else 0

let fingerprint d =
  String.concat "|"
    [
      d.code;
      Option.value d.file ~default:"";
      (match d.subject with Some s -> s | None -> d.message);
    ]

let pp ppf d =
  (match (d.file, d.span) with
  | Some f, Some s -> Format.fprintf ppf "%s:%a: " f Loc.pp_pos s.Loc.start
  | Some f, None -> Format.fprintf ppf "%s: " f
  | None, _ -> ());
  Format.fprintf ppf "%s[%s] %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.code d.message;
  (match d.subject with
  | Some s -> Format.fprintf ppf " (%s)" s
  | None -> ());
  if d.related <> [] then
    Format.fprintf ppf " (rules: %s)" (String.concat ", " d.related)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | ch when Char.code ch < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
        | ch -> Buffer.add_char buf ch)
      s;
    Buffer.contents buf

  let str s = "\"" ^ escape s ^ "\""

  let arr items = "[" ^ String.concat ", " items ^ "]"

  let obj fields =
    "{ "
    ^ String.concat ", " (List.map (fun (k, v) -> str k ^ ": " ^ v) fields)
    ^ " }"
end

let to_json d =
  let open Json in
  let locations =
    match d.file with
    | None -> []
    | Some f ->
        let region =
          match d.span with
          | None -> []
          | Some s ->
              [
                ( "region",
                  obj
                    [
                      ("startLine", string_of_int s.Loc.start.Loc.line);
                      ("startColumn", string_of_int s.Loc.start.Loc.col);
                      ("endLine", string_of_int s.Loc.stop.Loc.line);
                      ("endColumn", string_of_int s.Loc.stop.Loc.col);
                    ] );
              ]
        in
        [
          obj
            [
              ( "physicalLocation",
                obj
                  (("artifactLocation", obj [ ("uri", str f) ]) :: region) );
            ];
        ]
  in
  let properties =
    [ ("pass", str d.pass) ]
    @ (match d.subject with Some s -> [ ("subject", str s) ] | None -> [])
    @
    if d.related = [] then []
    else [ ("related", arr (List.map str d.related)) ]
  in
  obj
    [
      ("ruleId", str d.code);
      ( "level",
        str (match d.severity with Error -> "error" | Warning -> "warning") );
      ("message", obj [ ("text", str d.message) ]);
      ("locations", arr locations);
      ("fingerprint", str (fingerprint d));
      ("properties", obj properties);
    ]
