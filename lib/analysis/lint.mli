(** Whole-workspace static analysis (the [onion lint] engine).

    The point checkers ({!Consistency} on one ontology, {!Conflict} on
    one rule set) see one part at a time; this driver sees the network —
    every source, every stored articulation, the conversion registry —
    and runs the passes only that view makes possible: dead rules whose
    pattern signature cannot match any loaded source, bridges whose
    endpoints vanished, rules derivable from the remaining network,
    Horn-rule derivation cycles, conversion round-trips.  The point
    checkers are adapted into the same {!Diagnostic.t} stream, with
    source provenance recovered from the original file texts.

    Per-part passes fan out on {!Domain_pool} and memoize per
    {!Revision} stamp in {!Lru} caches (honouring
    [Cache_stats.enabled]), so re-linting an unchanged part is a table
    lookup — the workspace layer adds a fingerprint-keyed memo over the
    whole report on top. *)

type source = {
  ontology : Ontology.t;
  file : string option;  (** Workspace-relative, for provenance. *)
  text : string option;  (** Raw file text, for span recovery. *)
}

type articulation = {
  articulation : Articulation.t;
  art_file : string option;
  art_text : string option;
}

type view = {
  sources : source list;
  articulations : articulation list;
  conversions : Conversion.t option;
      (** Registry for the conversion pass; [None] skips it. *)
}

val source : ?file:string -> ?text:string -> Ontology.t -> source

val articulation : ?file:string -> ?text:string -> Articulation.t -> articulation

val view :
  ?conversions:Conversion.t ->
  ?articulations:articulation list ->
  source list ->
  view

type timing = { pass : string; ns : int }

type report = {
  diagnostics : Diagnostic.t list;  (** In {!Diagnostic.order}. *)
  timings : timing list;  (** One entry per pass, in run order. *)
}

val run : ?enabled:string list -> view -> report
(** The raw report: every pass — apply {!Diagnostic.apply_config} and a
    {!Lint_baseline} to the result.  Consistency runs in strict mode;
    the [undeclared-relationship] findings it yields are dropped by the
    default config downstream.

    [enabled] restricts the computation to the listed diagnostic codes
    (default: every code, including default-disabled ones).  Disabled
    codes are skipped at {e compute} time where a pass allows it (the
    dead-rule feasibility scan, the whole bridges pass), not merely
    post-filtered, and the enabled-code fingerprint is part of every
    pass memo key — a warm cache primed under one configuration never
    answers a run under another. *)

val lint_incremental :
  ?enabled:string list ->
  delta:Delta.t ->
  changed:string list ->
  view ->
  report
(** Delta-driven re-lint.  [view] must be the previous view with the
    edited sources' ontologies replaced in place (unchanged parts must
    be {e physically} the previous values, so their revision-keyed memo
    entries still apply); [changed] names the edited source ontologies
    and [delta] summarizes the edits ({!Delta.union} of the per-source
    deltas when several changed).

    The impact analysis maps the changed region to the (pass x scope)
    cells that can possibly produce different diagnostics: affected
    cells get a fresh scope stamp (forced recompute), provably
    unaffected cells retain their stamp with refreshed source revisions
    and answer from the existing memo entries.  The result is
    bit-for-bit identical to [run ?enabled view] (the qcheck harness
    asserts it over random edit scripts); only the work differs.
    Records the [delta.ops] / [delta.passes_rerun] /
    [delta.passes_skipped] plan counters in {!Cache_stats}. *)

val pass_names : string list
(** The passes {!run} executes, in order. *)

val config_fingerprint : string list option -> string
(** Canonical fingerprint of an [enabled] restriction (["*"] for the
    unrestricted default) — the component callers fold into their own
    memo keys when caching whole reports. *)

val report_json :
  ?suppressed:int -> diagnostics:Diagnostic.t list -> timings:timing list -> unit -> string
(** The stable SARIF-shaped document: [version], one run with the tool's
    rule catalog and one result object per diagnostic, a [summary]
    (error/warning/suppressed counts and the {!Diagnostic.exit_code}),
    and per-pass [timings]. *)
