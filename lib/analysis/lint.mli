(** Whole-workspace static analysis (the [onion lint] engine).

    The point checkers ({!Consistency} on one ontology, {!Conflict} on
    one rule set) see one part at a time; this driver sees the network —
    every source, every stored articulation, the conversion registry —
    and runs the passes only that view makes possible: dead rules whose
    pattern signature cannot match any loaded source, bridges whose
    endpoints vanished, rules derivable from the remaining network,
    Horn-rule derivation cycles, conversion round-trips.  The point
    checkers are adapted into the same {!Diagnostic.t} stream, with
    source provenance recovered from the original file texts.

    Per-part passes fan out on {!Domain_pool} and memoize per
    {!Revision} stamp in {!Lru} caches (honouring
    [Cache_stats.enabled]), so re-linting an unchanged part is a table
    lookup — the workspace layer adds a fingerprint-keyed memo over the
    whole report on top. *)

type source = {
  ontology : Ontology.t;
  file : string option;  (** Workspace-relative, for provenance. *)
  text : string option;  (** Raw file text, for span recovery. *)
}

type articulation = {
  articulation : Articulation.t;
  art_file : string option;
  art_text : string option;
}

type view = {
  sources : source list;
  articulations : articulation list;
  conversions : Conversion.t option;
      (** Registry for the conversion pass; [None] skips it. *)
}

val source : ?file:string -> ?text:string -> Ontology.t -> source

val articulation : ?file:string -> ?text:string -> Articulation.t -> articulation

val view :
  ?conversions:Conversion.t ->
  ?articulations:articulation list ->
  source list ->
  view

type timing = { pass : string; ns : int }

type report = {
  diagnostics : Diagnostic.t list;  (** In {!Diagnostic.order}. *)
  timings : timing list;  (** One entry per pass, in run order. *)
}

val run : view -> report
(** The raw report: every pass, every code (including default-disabled
    ones) — apply {!Diagnostic.apply_config} and a {!Lint_baseline} to
    the result.  Consistency runs in strict mode; the
    [undeclared-relationship] findings it yields are dropped by the
    default config downstream. *)

val pass_names : string list
(** The passes {!run} executes, in order. *)

val report_json :
  ?suppressed:int -> diagnostics:Diagnostic.t list -> timings:timing list -> unit -> string
(** The stable SARIF-shaped document: [version], one run with the tool's
    rule catalog and one result object per diagnostic, a [summary]
    (error/warning/suppressed counts and the {!Diagnostic.exit_code}),
    and per-pass [timings]. *)
