type t = string list (* sorted, distinct fingerprints *)

let empty = []

let of_diagnostics ds =
  List.sort_uniq String.compare (List.map Diagnostic.fingerprint ds)

let size = List.length

let mem t d =
  let fp = Diagnostic.fingerprint d in
  List.exists (String.equal fp) t

let filter t ds =
  let kept, suppressed =
    List.partition (fun d -> not (mem t d)) ds
  in
  (kept, List.length suppressed)

let header = "# onion lint baseline, format 1: one code|file|subject per line"

let to_string t = String.concat "\n" ((header :: t) @ [ "" ])

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | content ->
      Ok
        (String.split_on_char '\n' content
        |> List.filter_map (fun line ->
               let line = String.trim line in
               if line = "" || line.[0] = '#' then None else Some line)
        |> List.sort_uniq String.compare)

let save path t =
  match Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string t)) with
  | () -> Ok ()
  | exception Sys_error m -> Error m
