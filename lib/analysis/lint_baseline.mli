(** Baseline files: accepted findings that [onion lint] stops reporting.

    A baseline is a plain text file with one {!Diagnostic.fingerprint}
    per line ([code|file|subject], [#] comments allowed).  Fingerprints
    are line-independent, so a baseline survives edits that merely move
    the accepted finding around its file.  Typical flow: run
    [onion lint --write-baseline lint.baseline] once to accept the
    current findings, commit the file, and from then on only {e new}
    findings fail CI. *)

type t

val empty : t

val of_diagnostics : Diagnostic.t list -> t

val size : t -> int

val mem : t -> Diagnostic.t -> bool

val filter : t -> Diagnostic.t list -> Diagnostic.t list * int
(** The diagnostics not covered by the baseline, and how many were
    suppressed. *)

val load : string -> (t, string) result
(** [Error] on unreadable files; unknown lines are kept verbatim (they
    still match nothing), so baselines are forward-compatible. *)

val save : string -> t -> (unit, string) result
(** Sorted, with a header comment; overwrites. *)

val to_string : t -> string
