type source = {
  ontology : Ontology.t;
  file : string option;
  text : string option;
}

type articulation = {
  articulation : Articulation.t;
  art_file : string option;
  art_text : string option;
}

type view = {
  sources : source list;
  articulations : articulation list;
  conversions : Conversion.t option;
}

let source ?file ?text ontology = { ontology; file; text }

let articulation ?file ?text articulation =
  { articulation; art_file = file; art_text = text }

let view ?conversions ?(articulations = []) sources =
  { sources; articulations; conversions }

type timing = { pass : string; ns : int }

type report = { diagnostics : Diagnostic.t list; timings : timing list }

let pass_names =
  [ "consistency"; "conflict"; "rules"; "bridges"; "horn"; "conversions" ]

(* ------------------------------------------------------------------ *)
(* Span recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Subjects arrive as identifiers, qualified terms or comma-joined cycle
   lists; the span points at the first identifier that occurs in the
   text. *)
let first_word s =
  let is_word_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let n = String.length s in
  let start = ref 0 in
  while !start < n && not (is_word_char s.[!start]) do incr start done;
  let stop = ref !start in
  while !stop < n && is_word_char s.[!stop] do incr stop done;
  if !stop > !start then Some (String.sub s !start (!stop - !start)) else None

let locate text needle =
  match text with None -> None | Some t -> Loc.find_word t needle

let locate_subject text subject =
  match first_word subject with None -> None | Some w -> locate text w

(* A term as it appears in an articulation XML file: prefer the
   qualified rendering, fall back to the bare name. *)
let locate_term text (t : Term.t) =
  match locate text (Term.qualified t) with
  | Some s -> Some s
  | None -> locate text t.Term.name

(* Rules print as "[name] lhs => rhs", so the name is the anchor. *)
let locate_rule text (r : Rule.t) = locate text r.Rule.name

(* ------------------------------------------------------------------ *)
(* Enabled-code configuration fingerprints                            *)
(* ------------------------------------------------------------------ *)

(* Every pass memo folds the enabled-code set into its key: a warm
   cache primed under one --disable configuration must never answer a
   run under another (the computed sets genuinely differ, because
   disabled codes are skipped at compute time, not post-filtered). *)
let cfg_fingerprint = function
  | None -> "*"
  | Some codes -> String.concat "," (List.sort_uniq String.compare codes)

let config_fingerprint = cfg_fingerprint

let code_wanted enabled code =
  match enabled with None -> true | Some codes -> List.mem code codes

let keep_enabled enabled diags =
  match enabled with
  | None -> diags
  | Some codes ->
      List.filter (fun (d : Diagnostic.t) -> List.mem d.Diagnostic.code codes) diags

(* ------------------------------------------------------------------ *)
(* Revision-stamped pass memos                                        *)
(* ------------------------------------------------------------------ *)

(* Keyed on Revision stamps (equal stamps imply the very same parsed
   value, hence the same source text) plus the enabled-code fingerprint
   and the file attribution, so a re-lint of unchanged parts answers
   from the table.  All caches honour Cache_stats.enabled and are
   domain-safe for the pool fan-out.

   The articulation-scoped passes (conflict / rules / bridges) also read
   every source, but key on a {e scope stamp} instead of the raw source
   revision list: the stamp is bumped when the sources changed in a way
   the pass can observe (or in an unknown way), and retained when the
   impact analysis certifies the change invisible — which is how those
   memo entries survive local edits elsewhere in the workspace. *)
let consistency_memo : (int * string * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.consistency" ~capacity:256 ()

let conflict_memo : (int * int * string * string option, Diagnostic.t list) Lru.t
    =
  Lru.create ~name:"lint.conflict" ~capacity:256 ()

let rules_memo : (int * int * string * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.rules" ~capacity:256 ()

let bridges_memo : (int * int * string * string option, Diagnostic.t list) Lru.t
    =
  Lru.create ~name:"lint.bridges" ~capacity:256 ()

let horn_memo : (int * string * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.horn" ~capacity:256 ()

let source_revisions v =
  List.map (fun s -> Ontology.revision s.ontology) v.sources

(* ------------------------------------------------------------------ *)
(* Scope stamps                                                       *)
(* ------------------------------------------------------------------ *)

(* One monotone stamp per (pass, articulation) scope, with the source
   revision list it was last validated against.  Three transitions:

   - [`Unknown] (the cold driver): same revisions -> same stamp (memo
     hits); different revisions -> fresh stamp (recompute).
   - [`Unaffected] (incremental, impact analysis proved the delta
     invisible to this scope): the stamp is retained and the stored
     revisions are refreshed, so both this incremental run and any later
     cold run over the same view answer from the existing memo entry.
   - [`Affected]: fresh stamp, forced recompute.

   Stamps are process-monotone and never reused, so a key can never
   alias a stale entry.  Scopes are keyed by (pass, articulation
   revision, articulation name): two workspaces sharing one articulation
   value still track their own source lists per articulation revision. *)
type scope_status = Affected | Unaffected | Unknown

let scope_mutex = Mutex.create ()
let scope_counter = ref 0

let scope_tbl : (string * int * string, int * int list) Hashtbl.t =
  Hashtbl.create 64

let scope_stamp ~pass ~art_rev ~scope ~revs status =
  Mutex.lock scope_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock scope_mutex)
    (fun () ->
      let key = (pass, art_rev, scope) in
      let fresh () =
        incr scope_counter;
        Hashtbl.replace scope_tbl key (!scope_counter, revs);
        !scope_counter
      in
      match (Hashtbl.find_opt scope_tbl key, status) with
      | Some (stamp, stored), Unknown when stored = revs -> stamp
      | Some (stamp, _), Unaffected ->
          Hashtbl.replace scope_tbl key (stamp, revs);
          stamp
      | (Some _ | None), _ -> fresh ())

(* ------------------------------------------------------------------ *)
(* consistency: the per-ontology point checker, with provenance       *)
(* ------------------------------------------------------------------ *)

(* Sources and articulation ontologies are checked alike. *)
let ontology_parts v =
  List.map (fun s -> (s.ontology, s.file, s.text)) v.sources
  @ List.map
      (fun a -> (Articulation.ontology a.articulation, a.art_file, a.art_text))
      v.articulations

(* Per-part cost estimates for the pool's fan-out gate: each lint pass
   walks its part's graph a small constant number of times (closures,
   SCCs, per-edge point checks), so work scales with terms + edges.
   Small workspaces — where domain spawns cost more than the passes —
   stay sequential. *)
let lint_cost_per_elem = 20.0

let ontology_elems o = Ontology.nb_terms o + Ontology.nb_relationships o

let parts_cost parts =
  match parts with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left (fun acc (o, _, _) -> acc + ontology_elems o) 0 parts
      in
      lint_cost_per_elem *. float_of_int total
      /. float_of_int (List.length parts)

(* The articulation-centric passes re-examine every source per item. *)
let articulation_item_cost v =
  lint_cost_per_elem
  *. float_of_int
       (List.fold_left (fun acc s -> acc + ontology_elems s.ontology) 1 v.sources)

let consistency_pass ~enabled ~cfg v =
  Domain_pool.concat_map ~cost:(parts_cost (ontology_parts v))
    (fun (o, file, text) ->
      Lru.find_or_compute consistency_memo (Ontology.revision o, cfg, file)
        (fun () ->
          Consistency.check ~strict:true o
          |> List.map (fun (i : Consistency.issue) ->
                 Diagnostic.v
                   ~severity:
                     (match i.Consistency.severity with
                     | Consistency.Error -> Diagnostic.Error
                     | Consistency.Warning -> Diagnostic.Warning)
                   ?file
                   ?span:(locate_subject text i.Consistency.subject)
                   ~subject:i.Consistency.subject ~code:i.Consistency.code
                   ~pass:"consistency" i.Consistency.message)
          |> keep_enabled enabled))
    (ontology_parts v)

(* ------------------------------------------------------------------ *)
(* conflict: the per-rule-set point checker, with provenance          *)
(* ------------------------------------------------------------------ *)

let conflict_pass ~enabled ~cfg ~affect v =
  let ontologies = List.map (fun s -> s.ontology) v.sources in
  let revs = source_revisions v in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      let art = a.articulation in
      let stamp =
        scope_stamp ~pass:"conflict" ~art_rev:(Articulation.revision art)
          ~scope:(Articulation.name art) ~revs
          (affect ~pass:"conflict" ~scope:(Articulation.name art))
      in
      Lru.find_or_compute conflict_memo
        (Articulation.revision art, stamp, cfg, a.art_file)
        (fun () ->
          (* The conversion-registry checks are the conversions pass's
             job (multi-probe, inverse coverage), so the point checker
             runs without a registry here. *)
          Conflict.check ~ontologies (Articulation.rules art)
          |> List.map (fun (cf : Conflict.conflict) ->
                 let span =
                   match cf.Conflict.rules_involved with
                   | rule :: _ when locate a.art_text rule <> None ->
                       locate a.art_text rule
                   | _ -> locate_subject a.art_text cf.Conflict.subject
                 in
                 Diagnostic.v
                   ~severity:
                     (match cf.Conflict.severity with
                     | Conflict.Fatal -> Diagnostic.Error
                     | Conflict.Suspicious -> Diagnostic.Warning)
                   ?file:a.art_file ?span ~subject:cf.Conflict.subject
                   ~related:cf.Conflict.rules_involved ~code:cf.Conflict.code
                   ~pass:"conflict" cf.Conflict.detail)
          |> keep_enabled enabled))
    v.articulations

(* ------------------------------------------------------------------ *)
(* rules: dead patterns, inert variables, shadowed rules              *)
(* ------------------------------------------------------------------ *)

let rec patterns_of_operand = function
  | Rule.Term _ -> []
  | Rule.Conj ops | Rule.Disj ops -> List.concat_map patterns_of_operand ops
  | Rule.Patt p -> [ p ]

let rule_patterns (r : Rule.t) =
  match r.Rule.body with
  | Rule.Implication (lhs, rhs) ->
      patterns_of_operand lhs @ patterns_of_operand rhs
  | Rule.Functional _ | Rule.Disjoint _ -> []

(* Label/degree feasibility of a pattern against one source's index:
   every labeled pattern node must exist, every labeled pattern edge's
   label must occur, and each labeled node must offer the in/out degree
   its incident pattern edges demand.  Sound for the generator's exact
   matching policy (node identity and label coincide in consistent
   ontologies). *)
let pattern_feasible_in idx p =
  let nodes = Pattern.nodes p and edges = Pattern.edges p in
  let node_ok (n : Pattern.node) =
    match n.Pattern.label with
    | None -> true
    | Some l -> Label_index.mem_label idx l
  in
  let edge_ok (e : Pattern.edge) =
    match e.Pattern.elabel with
    | None -> true
    | Some l -> Label_index.edges_with idx l <> []
  in
  let degree_ok (n : Pattern.node) =
    match n.Pattern.label with
    | None -> true
    | Some l ->
        let outs =
          List.filter
            (fun (e : Pattern.edge) -> String.equal e.Pattern.src n.Pattern.id)
            edges
        and ins =
          List.filter
            (fun (e : Pattern.edge) -> String.equal e.Pattern.dst n.Pattern.id)
            edges
        in
        let demand dir_edges degree_fn =
          List.for_all
            (fun (e : Pattern.edge) ->
              match e.Pattern.elabel with
              | None -> true
              | Some el ->
                  let wanted =
                    List.length
                      (List.filter
                         (fun (e2 : Pattern.edge) ->
                           e2.Pattern.elabel = Some el)
                         dir_edges)
                  in
                  degree_fn idx l el >= wanted)
            dir_edges
        in
        Label_index.out_degree idx l >= List.length outs
        && Label_index.in_degree idx l >= List.length ins
        && demand outs Label_index.out_label_degree
        && demand ins Label_index.in_label_degree
  in
  List.for_all node_ok nodes
  && List.for_all edge_ok edges
  && List.for_all degree_ok nodes

let dead_rule_diags v a =
  let sources = v.sources in
  List.concat_map
    (fun (r : Rule.t) ->
      List.filter_map
        (fun p ->
          let candidates =
            match Pattern.ontology_hint p with
            | Some hint ->
                List.filter
                  (fun s -> String.equal (Ontology.name s.ontology) hint)
                  sources
            | None -> sources
          in
          (* A hint naming no loaded source (e.g. the articulation
             ontology itself) is outside this workspace's jurisdiction. *)
          if candidates = [] then None
          else if
            List.exists
              (fun s ->
                pattern_feasible_in
                  (Label_index.of_graph (Ontology.graph s.ontology))
                  p)
              candidates
          then None
          else
            Some
              (Diagnostic.v ?file:a.art_file
                 ?span:(locate_rule a.art_text r)
                 ~subject:r.Rule.name ~related:[ r.Rule.name ]
                 ~code:"dead-rule" ~pass:"rules"
                 (Printf.sprintf
                    "pattern %s cannot match any loaded source: its \
                     label/degree signature has no counterpart"
                    (Pattern_parser.to_string p))))
        (rule_patterns r))
    (Articulation.rules a.articulation)

(* The generator bridges only the representative (first) node of a
   pattern operand, so a variable bound anywhere else can never reach
   the articulation: flag it as inert. *)
let one_sided_variable_diags a =
  List.concat_map
    (fun (r : Rule.t) ->
      List.concat_map
        (fun p ->
          match Pattern.nodes p with
          | [] -> []
          | representative :: rest ->
              List.filter_map
                (fun (n : Pattern.node) ->
                  match n.Pattern.binder with
                  | Some var ->
                      Some
                        (Diagnostic.v ?file:a.art_file
                           ?span:(locate a.art_text var)
                           ~subject:var ~related:[ r.Rule.name ]
                           ~code:"one-sided-variable" ~pass:"rules"
                           (Printf.sprintf
                              "variable %s binds pattern node %s, not the \
                               representative %s; its binding cannot reach \
                               the generated articulation"
                              var n.Pattern.id representative.Pattern.id))
                  | None -> None)
                rest)
        (rule_patterns r))
    (Articulation.rules a.articulation)

(* Structural embedding of p1 into p2: every label constraint of p1
   appears in p2 (nodes by label; edges by (src-label, label, dst-label)
   for fully labeled edges).  Then every match of p2 contains a match of
   p1, so with equal right-hand sides the p2 rule is subsumed. *)
let pattern_embeds p1 p2 =
  let labels p =
    List.filter_map (fun (n : Pattern.node) -> n.Pattern.label) (Pattern.nodes p)
  in
  let label_of p id =
    Option.bind (Pattern.node_by_id p id) (fun n -> n.Pattern.label)
  in
  let triples p =
    List.filter_map
      (fun (e : Pattern.edge) ->
        match (label_of p e.Pattern.src, label_of p e.Pattern.dst) with
        | Some a, Some b -> Some (a, e.Pattern.elabel, b)
        | _ -> None)
      (Pattern.edges p)
  in
  let hint_ok =
    match (Pattern.ontology_hint p1, Pattern.ontology_hint p2) with
    | None, _ -> true
    | Some h1, Some h2 -> String.equal h1 h2
    | Some _, None -> false
  in
  hint_ok
  && Pattern.size p1 <= Pattern.size p2
  && List.for_all (fun l -> List.mem l (labels p2)) (labels p1)
  && List.for_all (fun t -> List.mem t (triples p2)) (triples p1)

let shadowed_rule_diags v a =
  let rules = Articulation.rules a.articulation in
  (* Implication graph over qualified terms: taxonomy + every atomic
     Term => Term rule. *)
  let base =
    List.fold_left
      (fun g s ->
        Digraph.fold_edges
          (fun (e : Digraph.edge) g ->
            if
              String.equal e.Digraph.label Rel.subclass_of
              || String.equal e.Digraph.label Rel.semantic_implication
            then Digraph.add_edge g e.Digraph.src "implies" e.Digraph.dst
            else g)
          (Ontology.qualify s.ontology) g)
      Digraph.empty v.sources
  in
  let term_rules =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Implication (Rule.Term lhs, Rule.Term rhs)
          when not (Term.equal lhs rhs) ->
            Some (r, Term.qualified lhs, Term.qualified rhs)
        | _ -> None)
      rules
  in
  let full =
    List.fold_left
      (fun g (_, qa, qb) -> Digraph.add_edge g qa "implies" qb)
      base term_rules
  in
  let reach_shadowed =
    List.filter_map
      (fun ((r : Rule.t), qa, qb) ->
        (* Drop the rule's own direct edge (shared duplicates are the
           duplicate-rule code's business) and ask whether the network
           still derives it. *)
        let without = Digraph.remove_edge full qa "implies" qb in
        if Traversal.path_exists without qa qb then
          Some
            (Diagnostic.v ?file:a.art_file
               ?span:(locate_rule a.art_text r)
               ~subject:r.Rule.name ~related:[ r.Rule.name ]
               ~code:"shadowed-rule" ~pass:"rules"
               (Printf.sprintf
                  "%s => %s is already derivable from the taxonomy and the \
                   remaining rules"
                  qa qb))
        else None)
      term_rules
  in
  let patt_rules =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Implication (Rule.Patt p, rhs) -> Some (r, p, rhs)
        | _ -> None)
      rules
  in
  let embed_shadowed =
    List.concat_map
      (fun ((r2 : Rule.t), p2, rhs2) ->
        List.filter_map
          (fun ((r1 : Rule.t), p1, rhs1) ->
            if
              (not (String.equal r1.Rule.name r2.Rule.name))
              && rhs1 = rhs2
              && pattern_embeds p1 p2
              && ((not (pattern_embeds p2 p1))
                 || String.compare r1.Rule.name r2.Rule.name < 0)
            then
              Some
                (Diagnostic.v ?file:a.art_file
                   ?span:(locate_rule a.art_text r2)
                   ~subject:r2.Rule.name
                   ~related:[ r1.Rule.name; r2.Rule.name ]
                   ~code:"shadowed-rule" ~pass:"rules"
                   (Printf.sprintf
                      "rule %s's pattern embeds in this rule's pattern with \
                       the same right-hand side"
                      r1.Rule.name))
            else None)
          patt_rules)
      patt_rules
  in
  reach_shadowed @ embed_shadowed

let rules_pass ~enabled ~cfg ~affect v =
  let revs = source_revisions v in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      let art_rev = Articulation.revision a.articulation in
      let scope = Articulation.name a.articulation in
      let stamp =
        scope_stamp ~pass:"rules" ~art_rev ~scope ~revs
          (affect ~pass:"rules" ~scope)
      in
      Lru.find_or_compute rules_memo (art_rev, stamp, cfg, a.art_file)
        (fun () ->
          (* Disabled codes are skipped at compute time — the dead-rule
             feasibility scan in particular walks every source index, so
             a --disable dead-rule run must not pay for it. *)
          (if code_wanted enabled "dead-rule" then dead_rule_diags v a else [])
          @ (if code_wanted enabled "one-sided-variable" then
               one_sided_variable_diags a
             else [])
          @
          if code_wanted enabled "shadowed-rule" then shadowed_rule_diags v a
          else []))
    v.articulations

(* ------------------------------------------------------------------ *)
(* bridges: dangling endpoints                                        *)
(* ------------------------------------------------------------------ *)

let bridges_pass ~enabled ~cfg ~affect v =
  let revs = source_revisions v in
  let find_source name =
    List.find_opt
      (fun s -> String.equal (Ontology.name s.ontology) name)
      v.sources
  in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      let art = a.articulation in
      let stamp =
        scope_stamp ~pass:"bridges" ~art_rev:(Articulation.revision art)
          ~scope:(Articulation.name art) ~revs
          (affect ~pass:"bridges" ~scope:(Articulation.name art))
      in
      Lru.find_or_compute bridges_memo
        (Articulation.revision art, stamp, cfg, a.art_file)
        (fun () ->
          if not (code_wanted enabled "dangling-bridge") then []
          else
          let art_name = Articulation.name art in
          List.concat_map
            (fun (b : Bridge.t) ->
              List.filter_map
                (fun (t : Term.t) ->
                  if String.equal t.Term.ontology art_name then None
                  else
                    match find_source t.Term.ontology with
                    | None -> None (* not a workspace source: cannot judge *)
                    | Some s ->
                        if Ontology.has_term s.ontology t.Term.name then None
                        else
                          Some
                            (Diagnostic.v ?file:a.art_file
                               ?span:(locate_term a.art_text t)
                               ~subject:(Term.qualified t)
                               ~code:"dangling-bridge" ~pass:"bridges"
                               (Printf.sprintf
                                  "bridge endpoint %s names a term %s no \
                                   longer has"
                                  (Term.qualified t) t.Term.ontology)))
                [ b.Bridge.src; b.Bridge.dst ])
            (Articulation.bridges art)))
    v.articulations

(* ------------------------------------------------------------------ *)
(* horn: stratification of the relation-property rule sets            *)
(* ------------------------------------------------------------------ *)

(* Compile each part's relation registry to its Horn rules and look for
   derivation cycles across distinct relations (mutual Implies chains):
   evaluation still terminates — Datalog has no negation — but the
   fixpoint equates the relations, which is virtually always a
   declaration slip.  Declared inverse pairs are exempt: flowing both
   ways is their meaning. *)
let horn_diags o file text =
  let registry = Ontology.relations o in
  let horns = Infer.of_registry registry in
  let deps =
    List.concat_map
      (fun (h : Infer.horn) ->
        List.filter_map
          (fun (b : Infer.atom) ->
            if String.equal b.Infer.rel h.Infer.head.Infer.rel then None
            else Some (b.Infer.rel, h.Infer.head.Infer.rel))
          h.Infer.body)
      horns
  in
  let inverse_pair a b =
    Rel.has_property registry a (Rel.Inverse_of b)
    || Rel.has_property registry b (Rel.Inverse_of a)
  in
  let g =
    List.fold_left
      (fun g (a, b) ->
        if inverse_pair a b then g else Digraph.add_edge g a "dep" b)
      Digraph.empty deps
  in
  Traversal.strongly_connected_components ~follow:(Traversal.only [ "dep" ]) g
  |> List.filter (fun scc -> List.length scc > 1)
  |> List.map (fun scc ->
         let subject = String.concat ", " scc in
         Diagnostic.v ?file
           ?span:(locate_subject text subject)
           ~subject ~code:"unstratified-horn" ~pass:"horn"
           (Printf.sprintf
              "relation properties derive a cycle over %s: the Horn fixpoint \
               equates these relations"
              subject))

let horn_pass ~enabled ~cfg v =
  Domain_pool.concat_map ~cost:(parts_cost (ontology_parts v))
    (fun (o, file, text) ->
      Lru.find_or_compute horn_memo (Ontology.revision o, cfg, file) (fun () ->
          if code_wanted enabled "unstratified-horn" then horn_diags o file text
          else []))
    (ontology_parts v)

(* ------------------------------------------------------------------ *)
(* conversions: registry coverage and round-trips                     *)
(* ------------------------------------------------------------------ *)

let probe_values = [ 1.0; 100.0; 12345.678 ]

let conversions_pass ~enabled v =
  keep_enabled enabled
  @@
  match v.conversions with
  | None -> []
  | Some registry ->
      List.concat_map
        (fun a ->
          Articulation.rules a.articulation
          |> List.filter_map (fun (r : Rule.t) ->
                 match r.Rule.body with
                 | Rule.Functional { fn; src; dst } -> Some (r, fn, src, dst)
                 | Rule.Implication _ | Rule.Disjoint _ -> None)
          |> List.filter_map (fun ((r : Rule.t), fn, src, dst) ->
                 let pair =
                   Term.qualified src ^ " => " ^ Term.qualified dst
                 in
                 let span =
                   match locate a.art_text fn with
                   | Some s -> Some s
                   | None -> locate_rule a.art_text r
                 in
                 if not (Conversion.mem registry fn) then
                   Some
                     (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                        ~related:[ r.Rule.name ] ~code:"unknown-converter"
                        ~pass:"conversions"
                        (Printf.sprintf
                           "function %s (bridging %s) is not registered" fn
                           pair))
                 else
                   match Conversion.inverse_name registry fn with
                   | None ->
                       Some
                         (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                            ~related:[ r.Rule.name ] ~code:"missing-inverse"
                            ~pass:"conversions"
                            (Printf.sprintf
                               "%s declares no inverse: values bridged over \
                                %s cannot travel back"
                               fn pair))
                   | Some _ ->
                       let drift =
                         List.fold_left
                           (fun acc probe ->
                             match
                               Conversion.roundtrip_error registry fn
                                 (Conversion.Num probe)
                             with
                             | Some err -> Float.max acc err
                             | None -> acc)
                           0.0 probe_values
                       in
                       if drift > 1e-6 then
                         Some
                           (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                              ~related:[ r.Rule.name ] ~code:"roundtrip-drift"
                              ~pass:"conversions"
                              (Printf.sprintf
                                 "declared inverse drifts by %.2e across \
                                  probe values"
                                 drift))
                       else None))
        v.articulations

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let drive ~enabled ~affect v =
  let cfg = cfg_fingerprint enabled in
  let timings = ref [] in
  let timed pass f =
    let t0 = Unix.gettimeofday () in
    let result = f v in
    let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    timings := { pass; ns } :: !timings;
    result
  in
  (* Explicit lets: list elements evaluate right-to-left, which would
     invert the pass order (and the timings). *)
  let consistency = timed "consistency" (consistency_pass ~enabled ~cfg) in
  let conflict = timed "conflict" (conflict_pass ~enabled ~cfg ~affect) in
  let rules = timed "rules" (rules_pass ~enabled ~cfg ~affect) in
  let bridges = timed "bridges" (bridges_pass ~enabled ~cfg ~affect) in
  let horn = timed "horn" (horn_pass ~enabled ~cfg) in
  let conversions = timed "conversions" (conversions_pass ~enabled) in
  let diagnostics =
    List.concat [ consistency; conflict; rules; bridges; horn; conversions ]
  in
  {
    diagnostics = List.stable_sort Diagnostic.order diagnostics;
    timings = List.rev !timings;
  }

let unknown ~pass:_ ~scope:_ = Unknown

let run ?enabled v = drive ~enabled ~affect:unknown v

(* ------------------------------------------------------------------ *)
(* Impact analysis                                                    *)
(* ------------------------------------------------------------------ *)

(* Which (pass x articulation) cells can observe a source delta.  Every
   trigger is a superset of the pass's true read footprint, so a scope
   judged Unaffected provably yields byte-identical diagnostics (the
   qcheck equivalence harness exercises this against cold runs):

   - conflict: the checker reads the qualified subclass-of /
     semantic-implication edges of every source (implication paths may
     route through terms no rule names), plus the existence of each rule
     term inside its attributed source.
   - rules: dead-rule feasibility reads label existence, per-label edge
     buckets and the degrees of pattern-labeled nodes — degrees only
     change at touched nodes, buckets only for touched labels; shadowed
     rules additionally read the taxonomy edges; one-sided-variable
     reads no source at all.
   - bridges: dangling-bridge only observes node existence in the
     endpoint's attributed source.

   Consistency and horn need no triggers: their memos key on the part's
   own revision, so the edited part recomputes and every other part
   answers from its table entry. *)
let tax_label l =
  String.equal l Rel.subclass_of || String.equal l Rel.semantic_implication

let impact_of ~delta ~changed v =
  let tax_changed = List.exists (tax_label) (Delta.edge_labels delta) in
  let in_changed name = List.mem name changed in
  let touched_term (t : Term.t) =
    in_changed t.Term.ontology && Delta.touches_node delta t.Term.name
  in
  let conflict_affected a =
    tax_changed
    || List.exists
         (fun (r : Rule.t) -> List.exists touched_term (Rule.terms r))
         (Articulation.rules a.articulation)
  in
  let rules_affected a =
    tax_changed
    || List.exists
         (fun (r : Rule.t) ->
           List.exists
             (fun p ->
               List.exists
                 (fun (n : Pattern.node) ->
                   match n.Pattern.label with
                   | Some l -> Delta.touches_node delta l
                   | None -> false)
                 (Pattern.nodes p)
               || List.exists
                    (fun (e : Pattern.edge) ->
                      match e.Pattern.elabel with
                      | Some l -> Delta.touches_label delta l
                      | None -> false)
                    (Pattern.edges p))
             (rule_patterns r))
         (Articulation.rules a.articulation)
  in
  let bridges_affected a =
    List.exists
      (fun (b : Bridge.t) ->
        List.exists
          (fun (t : Term.t) ->
            in_changed t.Term.ontology && Delta.changes_node_set delta t.Term.name)
          [ b.Bridge.src; b.Bridge.dst ])
      (Articulation.bridges a.articulation)
  in
  List.map
    (fun a ->
      let scope = Articulation.name a.articulation in
      ( scope,
        [
          ("conflict", conflict_affected a);
          ("rules", rules_affected a);
          ("bridges", bridges_affected a);
        ] ))
    v.articulations

let lint_incremental ?enabled ~delta ~changed v =
  let impact = impact_of ~delta ~changed v in
  let affect ~pass ~scope =
    match List.assoc_opt scope impact with
    | None -> Unknown
    | Some cells -> (
        match List.assoc_opt pass cells with
        | Some true -> Affected
        | Some false -> Unaffected
        | None -> Unknown)
  in
  (* Plan accounting: one cell per (pass x articulation) for the
     articulation passes, one per (pass x part) for consistency / horn
     (the edited parts recompute, everything else answers from its
     revision memo), and one per articulation for conversions — which
     reads no source and is recomputed, never spliced, because it is
     cheap and unmemoized. *)
  let art_cells = List.concat_map (fun (_, cells) -> List.map snd cells) impact in
  let rerun_cells = List.length (List.filter Fun.id art_cells) in
  let skipped_cells = List.length art_cells - rerun_cells in
  let parts = ontology_parts v in
  let part_rerun, part_skipped =
    List.fold_left
      (fun (r, s) (o, _, _) ->
        if List.mem (Ontology.name o) changed then (r + 2, s) else (r, s + 2))
      (0, 0) parts
  in
  let conv_cells =
    match v.conversions with None -> 0 | Some _ -> List.length v.articulations
  in
  Cache_stats.record_plans "delta.ops" (Delta.ops delta);
  Cache_stats.record_plans "delta.passes_rerun"
    (rerun_cells + part_rerun + conv_cells);
  Cache_stats.record_plans "delta.passes_skipped" (skipped_cells + part_skipped);
  drive ~enabled ~affect v

(* ------------------------------------------------------------------ *)
(* Report document                                                    *)
(* ------------------------------------------------------------------ *)

let report_json ?(suppressed = 0) ~diagnostics ~timings () =
  let open Diagnostic.Json in
  let rules =
    List.map
      (fun (ck : Diagnostic.check) ->
        obj
          [
            ("id", str ck.Diagnostic.check_code);
            ( "shortDescription",
              obj [ ("text", str ck.Diagnostic.summary) ] );
            ( "defaultConfiguration",
              obj
                [
                  ( "level",
                    str
                      (match ck.Diagnostic.default_severity with
                      | Diagnostic.Error -> "error"
                      | Diagnostic.Warning -> "warning") );
                  ("enabled", string_of_bool ck.Diagnostic.default_enabled);
                ] );
            ("pass", str ck.Diagnostic.check_pass);
          ])
      Diagnostic.catalog
  in
  let run_obj =
    obj
      [
        ( "tool",
          obj
            [
              ( "driver",
                obj
                  [
                    ("name", str "onion lint");
                    ("rules", arr rules);
                  ] );
            ] );
        ("results", arr (List.map Diagnostic.to_json diagnostics));
      ]
  in
  obj
    [
      ("version", str "2.1.0");
      ("runs", arr [ run_obj ]);
      ( "summary",
        obj
          [
            ("errors", string_of_int (List.length (Diagnostic.errors diagnostics)));
            ( "warnings",
              string_of_int (List.length (Diagnostic.warnings diagnostics)) );
            ("suppressed", string_of_int suppressed);
            ("exit_code", string_of_int (Diagnostic.exit_code diagnostics));
          ] );
      ( "timings",
        arr
          (List.map
             (fun t ->
               obj [ ("pass", str t.pass); ("ns", string_of_int t.ns) ])
             timings) );
    ]
  ^ "\n"
