type source = {
  ontology : Ontology.t;
  file : string option;
  text : string option;
}

type articulation = {
  articulation : Articulation.t;
  art_file : string option;
  art_text : string option;
}

type view = {
  sources : source list;
  articulations : articulation list;
  conversions : Conversion.t option;
}

let source ?file ?text ontology = { ontology; file; text }

let articulation ?file ?text articulation =
  { articulation; art_file = file; art_text = text }

let view ?conversions ?(articulations = []) sources =
  { sources; articulations; conversions }

type timing = { pass : string; ns : int }

type report = { diagnostics : Diagnostic.t list; timings : timing list }

let pass_names =
  [ "consistency"; "conflict"; "rules"; "bridges"; "horn"; "conversions" ]

(* ------------------------------------------------------------------ *)
(* Span recovery                                                      *)
(* ------------------------------------------------------------------ *)

(* Subjects arrive as identifiers, qualified terms or comma-joined cycle
   lists; the span points at the first identifier that occurs in the
   text. *)
let first_word s =
  let is_word_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  let n = String.length s in
  let start = ref 0 in
  while !start < n && not (is_word_char s.[!start]) do incr start done;
  let stop = ref !start in
  while !stop < n && is_word_char s.[!stop] do incr stop done;
  if !stop > !start then Some (String.sub s !start (!stop - !start)) else None

let locate text needle =
  match text with None -> None | Some t -> Loc.find_word t needle

let locate_subject text subject =
  match first_word subject with None -> None | Some w -> locate text w

(* A term as it appears in an articulation XML file: prefer the
   qualified rendering, fall back to the bare name. *)
let locate_term text (t : Term.t) =
  match locate text (Term.qualified t) with
  | Some s -> Some s
  | None -> locate text t.Term.name

(* Rules print as "[name] lhs => rhs", so the name is the anchor. *)
let locate_rule text (r : Rule.t) = locate text r.Rule.name

(* ------------------------------------------------------------------ *)
(* Revision-stamped pass memos                                        *)
(* ------------------------------------------------------------------ *)

(* Keyed on Revision stamps (equal stamps imply the very same parsed
   value, hence the same source text) plus the file attribution, so a
   re-lint of unchanged parts answers from the table.  All caches honour
   Cache_stats.enabled and are domain-safe for the pool fan-out. *)
let consistency_memo : (int * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.consistency" ~capacity:256 ()

let conflict_memo : (int * int list * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.conflict" ~capacity:256 ()

let rules_memo : (int * int list * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.rules" ~capacity:256 ()

let bridges_memo : (int * int list * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.bridges" ~capacity:256 ()

let horn_memo : (int * string option, Diagnostic.t list) Lru.t =
  Lru.create ~name:"lint.horn" ~capacity:256 ()

let source_revisions v =
  List.map (fun s -> Ontology.revision s.ontology) v.sources

(* ------------------------------------------------------------------ *)
(* consistency: the per-ontology point checker, with provenance       *)
(* ------------------------------------------------------------------ *)

(* Sources and articulation ontologies are checked alike. *)
let ontology_parts v =
  List.map (fun s -> (s.ontology, s.file, s.text)) v.sources
  @ List.map
      (fun a -> (Articulation.ontology a.articulation, a.art_file, a.art_text))
      v.articulations

(* Per-part cost estimates for the pool's fan-out gate: each lint pass
   walks its part's graph a small constant number of times (closures,
   SCCs, per-edge point checks), so work scales with terms + edges.
   Small workspaces — where domain spawns cost more than the passes —
   stay sequential. *)
let lint_cost_per_elem = 20.0

let ontology_elems o = Ontology.nb_terms o + Ontology.nb_relationships o

let parts_cost parts =
  match parts with
  | [] -> 0.0
  | _ ->
      let total =
        List.fold_left (fun acc (o, _, _) -> acc + ontology_elems o) 0 parts
      in
      lint_cost_per_elem *. float_of_int total
      /. float_of_int (List.length parts)

(* The articulation-centric passes re-examine every source per item. *)
let articulation_item_cost v =
  lint_cost_per_elem
  *. float_of_int
       (List.fold_left (fun acc s -> acc + ontology_elems s.ontology) 1 v.sources)

let consistency_pass v =
  Domain_pool.concat_map ~cost:(parts_cost (ontology_parts v))
    (fun (o, file, text) ->
      Lru.find_or_compute consistency_memo (Ontology.revision o, file) (fun () ->
          Consistency.check ~strict:true o
          |> List.map (fun (i : Consistency.issue) ->
                 Diagnostic.v
                   ~severity:
                     (match i.Consistency.severity with
                     | Consistency.Error -> Diagnostic.Error
                     | Consistency.Warning -> Diagnostic.Warning)
                   ?file
                   ?span:(locate_subject text i.Consistency.subject)
                   ~subject:i.Consistency.subject ~code:i.Consistency.code
                   ~pass:"consistency" i.Consistency.message)))
    (ontology_parts v)

(* ------------------------------------------------------------------ *)
(* conflict: the per-rule-set point checker, with provenance          *)
(* ------------------------------------------------------------------ *)

let conflict_pass v =
  let ontologies = List.map (fun s -> s.ontology) v.sources in
  let revs = source_revisions v in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      let art = a.articulation in
      Lru.find_or_compute conflict_memo
        (Articulation.revision art, revs, a.art_file)
        (fun () ->
          (* The conversion-registry checks are the conversions pass's
             job (multi-probe, inverse coverage), so the point checker
             runs without a registry here. *)
          Conflict.check ~ontologies (Articulation.rules art)
          |> List.map (fun (cf : Conflict.conflict) ->
                 let span =
                   match cf.Conflict.rules_involved with
                   | rule :: _ when locate a.art_text rule <> None ->
                       locate a.art_text rule
                   | _ -> locate_subject a.art_text cf.Conflict.subject
                 in
                 Diagnostic.v
                   ~severity:
                     (match cf.Conflict.severity with
                     | Conflict.Fatal -> Diagnostic.Error
                     | Conflict.Suspicious -> Diagnostic.Warning)
                   ?file:a.art_file ?span ~subject:cf.Conflict.subject
                   ~related:cf.Conflict.rules_involved ~code:cf.Conflict.code
                   ~pass:"conflict" cf.Conflict.detail)))
    v.articulations

(* ------------------------------------------------------------------ *)
(* rules: dead patterns, inert variables, shadowed rules              *)
(* ------------------------------------------------------------------ *)

let rec patterns_of_operand = function
  | Rule.Term _ -> []
  | Rule.Conj ops | Rule.Disj ops -> List.concat_map patterns_of_operand ops
  | Rule.Patt p -> [ p ]

let rule_patterns (r : Rule.t) =
  match r.Rule.body with
  | Rule.Implication (lhs, rhs) ->
      patterns_of_operand lhs @ patterns_of_operand rhs
  | Rule.Functional _ | Rule.Disjoint _ -> []

(* Label/degree feasibility of a pattern against one source's index:
   every labeled pattern node must exist, every labeled pattern edge's
   label must occur, and each labeled node must offer the in/out degree
   its incident pattern edges demand.  Sound for the generator's exact
   matching policy (node identity and label coincide in consistent
   ontologies). *)
let pattern_feasible_in idx p =
  let nodes = Pattern.nodes p and edges = Pattern.edges p in
  let node_ok (n : Pattern.node) =
    match n.Pattern.label with
    | None -> true
    | Some l -> Label_index.mem_label idx l
  in
  let edge_ok (e : Pattern.edge) =
    match e.Pattern.elabel with
    | None -> true
    | Some l -> Label_index.edges_with idx l <> []
  in
  let degree_ok (n : Pattern.node) =
    match n.Pattern.label with
    | None -> true
    | Some l ->
        let outs =
          List.filter
            (fun (e : Pattern.edge) -> String.equal e.Pattern.src n.Pattern.id)
            edges
        and ins =
          List.filter
            (fun (e : Pattern.edge) -> String.equal e.Pattern.dst n.Pattern.id)
            edges
        in
        let demand dir_edges degree_fn =
          List.for_all
            (fun (e : Pattern.edge) ->
              match e.Pattern.elabel with
              | None -> true
              | Some el ->
                  let wanted =
                    List.length
                      (List.filter
                         (fun (e2 : Pattern.edge) ->
                           e2.Pattern.elabel = Some el)
                         dir_edges)
                  in
                  degree_fn idx l el >= wanted)
            dir_edges
        in
        Label_index.out_degree idx l >= List.length outs
        && Label_index.in_degree idx l >= List.length ins
        && demand outs Label_index.out_label_degree
        && demand ins Label_index.in_label_degree
  in
  List.for_all node_ok nodes
  && List.for_all edge_ok edges
  && List.for_all degree_ok nodes

let dead_rule_diags v a =
  let sources = v.sources in
  List.concat_map
    (fun (r : Rule.t) ->
      List.filter_map
        (fun p ->
          let candidates =
            match Pattern.ontology_hint p with
            | Some hint ->
                List.filter
                  (fun s -> String.equal (Ontology.name s.ontology) hint)
                  sources
            | None -> sources
          in
          (* A hint naming no loaded source (e.g. the articulation
             ontology itself) is outside this workspace's jurisdiction. *)
          if candidates = [] then None
          else if
            List.exists
              (fun s ->
                pattern_feasible_in
                  (Label_index.of_graph (Ontology.graph s.ontology))
                  p)
              candidates
          then None
          else
            Some
              (Diagnostic.v ?file:a.art_file
                 ?span:(locate_rule a.art_text r)
                 ~subject:r.Rule.name ~related:[ r.Rule.name ]
                 ~code:"dead-rule" ~pass:"rules"
                 (Printf.sprintf
                    "pattern %s cannot match any loaded source: its \
                     label/degree signature has no counterpart"
                    (Pattern_parser.to_string p))))
        (rule_patterns r))
    (Articulation.rules a.articulation)

(* The generator bridges only the representative (first) node of a
   pattern operand, so a variable bound anywhere else can never reach
   the articulation: flag it as inert. *)
let one_sided_variable_diags a =
  List.concat_map
    (fun (r : Rule.t) ->
      List.concat_map
        (fun p ->
          match Pattern.nodes p with
          | [] -> []
          | representative :: rest ->
              List.filter_map
                (fun (n : Pattern.node) ->
                  match n.Pattern.binder with
                  | Some var ->
                      Some
                        (Diagnostic.v ?file:a.art_file
                           ?span:(locate a.art_text var)
                           ~subject:var ~related:[ r.Rule.name ]
                           ~code:"one-sided-variable" ~pass:"rules"
                           (Printf.sprintf
                              "variable %s binds pattern node %s, not the \
                               representative %s; its binding cannot reach \
                               the generated articulation"
                              var n.Pattern.id representative.Pattern.id))
                  | None -> None)
                rest)
        (rule_patterns r))
    (Articulation.rules a.articulation)

(* Structural embedding of p1 into p2: every label constraint of p1
   appears in p2 (nodes by label; edges by (src-label, label, dst-label)
   for fully labeled edges).  Then every match of p2 contains a match of
   p1, so with equal right-hand sides the p2 rule is subsumed. *)
let pattern_embeds p1 p2 =
  let labels p =
    List.filter_map (fun (n : Pattern.node) -> n.Pattern.label) (Pattern.nodes p)
  in
  let label_of p id =
    Option.bind (Pattern.node_by_id p id) (fun n -> n.Pattern.label)
  in
  let triples p =
    List.filter_map
      (fun (e : Pattern.edge) ->
        match (label_of p e.Pattern.src, label_of p e.Pattern.dst) with
        | Some a, Some b -> Some (a, e.Pattern.elabel, b)
        | _ -> None)
      (Pattern.edges p)
  in
  let hint_ok =
    match (Pattern.ontology_hint p1, Pattern.ontology_hint p2) with
    | None, _ -> true
    | Some h1, Some h2 -> String.equal h1 h2
    | Some _, None -> false
  in
  hint_ok
  && Pattern.size p1 <= Pattern.size p2
  && List.for_all (fun l -> List.mem l (labels p2)) (labels p1)
  && List.for_all (fun t -> List.mem t (triples p2)) (triples p1)

let shadowed_rule_diags v a =
  let rules = Articulation.rules a.articulation in
  (* Implication graph over qualified terms: taxonomy + every atomic
     Term => Term rule. *)
  let base =
    List.fold_left
      (fun g s ->
        Digraph.fold_edges
          (fun (e : Digraph.edge) g ->
            if
              String.equal e.Digraph.label Rel.subclass_of
              || String.equal e.Digraph.label Rel.semantic_implication
            then Digraph.add_edge g e.Digraph.src "implies" e.Digraph.dst
            else g)
          (Ontology.qualify s.ontology) g)
      Digraph.empty v.sources
  in
  let term_rules =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Implication (Rule.Term lhs, Rule.Term rhs)
          when not (Term.equal lhs rhs) ->
            Some (r, Term.qualified lhs, Term.qualified rhs)
        | _ -> None)
      rules
  in
  let full =
    List.fold_left
      (fun g (_, qa, qb) -> Digraph.add_edge g qa "implies" qb)
      base term_rules
  in
  let reach_shadowed =
    List.filter_map
      (fun ((r : Rule.t), qa, qb) ->
        (* Drop the rule's own direct edge (shared duplicates are the
           duplicate-rule code's business) and ask whether the network
           still derives it. *)
        let without = Digraph.remove_edge full qa "implies" qb in
        if Traversal.path_exists without qa qb then
          Some
            (Diagnostic.v ?file:a.art_file
               ?span:(locate_rule a.art_text r)
               ~subject:r.Rule.name ~related:[ r.Rule.name ]
               ~code:"shadowed-rule" ~pass:"rules"
               (Printf.sprintf
                  "%s => %s is already derivable from the taxonomy and the \
                   remaining rules"
                  qa qb))
        else None)
      term_rules
  in
  let patt_rules =
    List.filter_map
      (fun (r : Rule.t) ->
        match r.Rule.body with
        | Rule.Implication (Rule.Patt p, rhs) -> Some (r, p, rhs)
        | _ -> None)
      rules
  in
  let embed_shadowed =
    List.concat_map
      (fun ((r2 : Rule.t), p2, rhs2) ->
        List.filter_map
          (fun ((r1 : Rule.t), p1, rhs1) ->
            if
              (not (String.equal r1.Rule.name r2.Rule.name))
              && rhs1 = rhs2
              && pattern_embeds p1 p2
              && ((not (pattern_embeds p2 p1))
                 || String.compare r1.Rule.name r2.Rule.name < 0)
            then
              Some
                (Diagnostic.v ?file:a.art_file
                   ?span:(locate_rule a.art_text r2)
                   ~subject:r2.Rule.name
                   ~related:[ r1.Rule.name; r2.Rule.name ]
                   ~code:"shadowed-rule" ~pass:"rules"
                   (Printf.sprintf
                      "rule %s's pattern embeds in this rule's pattern with \
                       the same right-hand side"
                      r1.Rule.name))
            else None)
          patt_rules)
      patt_rules
  in
  reach_shadowed @ embed_shadowed

let rules_pass v =
  let revs = source_revisions v in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      Lru.find_or_compute rules_memo
        (Articulation.revision a.articulation, revs, a.art_file)
        (fun () ->
          dead_rule_diags v a @ one_sided_variable_diags a
          @ shadowed_rule_diags v a))
    v.articulations

(* ------------------------------------------------------------------ *)
(* bridges: dangling endpoints                                        *)
(* ------------------------------------------------------------------ *)

let bridges_pass v =
  let revs = source_revisions v in
  let find_source name =
    List.find_opt
      (fun s -> String.equal (Ontology.name s.ontology) name)
      v.sources
  in
  Domain_pool.concat_map ~cost:(articulation_item_cost v)
    (fun a ->
      let art = a.articulation in
      Lru.find_or_compute bridges_memo
        (Articulation.revision art, revs, a.art_file)
        (fun () ->
          let art_name = Articulation.name art in
          List.concat_map
            (fun (b : Bridge.t) ->
              List.filter_map
                (fun (t : Term.t) ->
                  if String.equal t.Term.ontology art_name then None
                  else
                    match find_source t.Term.ontology with
                    | None -> None (* not a workspace source: cannot judge *)
                    | Some s ->
                        if Ontology.has_term s.ontology t.Term.name then None
                        else
                          Some
                            (Diagnostic.v ?file:a.art_file
                               ?span:(locate_term a.art_text t)
                               ~subject:(Term.qualified t)
                               ~code:"dangling-bridge" ~pass:"bridges"
                               (Printf.sprintf
                                  "bridge endpoint %s names a term %s no \
                                   longer has"
                                  (Term.qualified t) t.Term.ontology)))
                [ b.Bridge.src; b.Bridge.dst ])
            (Articulation.bridges art)))
    v.articulations

(* ------------------------------------------------------------------ *)
(* horn: stratification of the relation-property rule sets            *)
(* ------------------------------------------------------------------ *)

(* Compile each part's relation registry to its Horn rules and look for
   derivation cycles across distinct relations (mutual Implies chains):
   evaluation still terminates — Datalog has no negation — but the
   fixpoint equates the relations, which is virtually always a
   declaration slip.  Declared inverse pairs are exempt: flowing both
   ways is their meaning. *)
let horn_diags o file text =
  let registry = Ontology.relations o in
  let horns = Infer.of_registry registry in
  let deps =
    List.concat_map
      (fun (h : Infer.horn) ->
        List.filter_map
          (fun (b : Infer.atom) ->
            if String.equal b.Infer.rel h.Infer.head.Infer.rel then None
            else Some (b.Infer.rel, h.Infer.head.Infer.rel))
          h.Infer.body)
      horns
  in
  let inverse_pair a b =
    Rel.has_property registry a (Rel.Inverse_of b)
    || Rel.has_property registry b (Rel.Inverse_of a)
  in
  let g =
    List.fold_left
      (fun g (a, b) ->
        if inverse_pair a b then g else Digraph.add_edge g a "dep" b)
      Digraph.empty deps
  in
  Traversal.strongly_connected_components ~follow:(Traversal.only [ "dep" ]) g
  |> List.filter (fun scc -> List.length scc > 1)
  |> List.map (fun scc ->
         let subject = String.concat ", " scc in
         Diagnostic.v ?file
           ?span:(locate_subject text subject)
           ~subject ~code:"unstratified-horn" ~pass:"horn"
           (Printf.sprintf
              "relation properties derive a cycle over %s: the Horn fixpoint \
               equates these relations"
              subject))

let horn_pass v =
  Domain_pool.concat_map ~cost:(parts_cost (ontology_parts v))
    (fun (o, file, text) ->
      Lru.find_or_compute horn_memo (Ontology.revision o, file) (fun () ->
          horn_diags o file text))
    (ontology_parts v)

(* ------------------------------------------------------------------ *)
(* conversions: registry coverage and round-trips                     *)
(* ------------------------------------------------------------------ *)

let probe_values = [ 1.0; 100.0; 12345.678 ]

let conversions_pass v =
  match v.conversions with
  | None -> []
  | Some registry ->
      List.concat_map
        (fun a ->
          Articulation.rules a.articulation
          |> List.filter_map (fun (r : Rule.t) ->
                 match r.Rule.body with
                 | Rule.Functional { fn; src; dst } -> Some (r, fn, src, dst)
                 | Rule.Implication _ | Rule.Disjoint _ -> None)
          |> List.filter_map (fun ((r : Rule.t), fn, src, dst) ->
                 let pair =
                   Term.qualified src ^ " => " ^ Term.qualified dst
                 in
                 let span =
                   match locate a.art_text fn with
                   | Some s -> Some s
                   | None -> locate_rule a.art_text r
                 in
                 if not (Conversion.mem registry fn) then
                   Some
                     (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                        ~related:[ r.Rule.name ] ~code:"unknown-converter"
                        ~pass:"conversions"
                        (Printf.sprintf
                           "function %s (bridging %s) is not registered" fn
                           pair))
                 else
                   match Conversion.inverse_name registry fn with
                   | None ->
                       Some
                         (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                            ~related:[ r.Rule.name ] ~code:"missing-inverse"
                            ~pass:"conversions"
                            (Printf.sprintf
                               "%s declares no inverse: values bridged over \
                                %s cannot travel back"
                               fn pair))
                   | Some _ ->
                       let drift =
                         List.fold_left
                           (fun acc probe ->
                             match
                               Conversion.roundtrip_error registry fn
                                 (Conversion.Num probe)
                             with
                             | Some err -> Float.max acc err
                             | None -> acc)
                           0.0 probe_values
                       in
                       if drift > 1e-6 then
                         Some
                           (Diagnostic.v ?file:a.art_file ?span ~subject:fn
                              ~related:[ r.Rule.name ] ~code:"roundtrip-drift"
                              ~pass:"conversions"
                              (Printf.sprintf
                                 "declared inverse drifts by %.2e across \
                                  probe values"
                                 drift))
                       else None))
        v.articulations

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let run v =
  let timings = ref [] in
  let timed pass f =
    let t0 = Unix.gettimeofday () in
    let result = f v in
    let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
    timings := { pass; ns } :: !timings;
    result
  in
  (* Explicit lets: list elements evaluate right-to-left, which would
     invert the pass order (and the timings). *)
  let consistency = timed "consistency" consistency_pass in
  let conflict = timed "conflict" conflict_pass in
  let rules = timed "rules" rules_pass in
  let bridges = timed "bridges" bridges_pass in
  let horn = timed "horn" horn_pass in
  let conversions = timed "conversions" conversions_pass in
  let diagnostics =
    List.concat [ consistency; conflict; rules; bridges; horn; conversions ]
  in
  {
    diagnostics = List.stable_sort Diagnostic.order diagnostics;
    timings = List.rev !timings;
  }

(* ------------------------------------------------------------------ *)
(* Report document                                                    *)
(* ------------------------------------------------------------------ *)

let report_json ?(suppressed = 0) ~diagnostics ~timings () =
  let open Diagnostic.Json in
  let rules =
    List.map
      (fun (ck : Diagnostic.check) ->
        obj
          [
            ("id", str ck.Diagnostic.check_code);
            ( "shortDescription",
              obj [ ("text", str ck.Diagnostic.summary) ] );
            ( "defaultConfiguration",
              obj
                [
                  ( "level",
                    str
                      (match ck.Diagnostic.default_severity with
                      | Diagnostic.Error -> "error"
                      | Diagnostic.Warning -> "warning") );
                  ("enabled", string_of_bool ck.Diagnostic.default_enabled);
                ] );
            ("pass", str ck.Diagnostic.check_pass);
          ])
      Diagnostic.catalog
  in
  let run_obj =
    obj
      [
        ( "tool",
          obj
            [
              ( "driver",
                obj
                  [
                    ("name", str "onion lint");
                    ("rules", arr rules);
                  ] );
            ] );
        ("results", arr (List.map Diagnostic.to_json diagnostics));
      ]
  in
  obj
    [
      ("version", str "2.1.0");
      ("runs", arr [ run_obj ]);
      ( "summary",
        obj
          [
            ("errors", string_of_int (List.length (Diagnostic.errors diagnostics)));
            ( "warnings",
              string_of_int (List.length (Diagnostic.warnings diagnostics)) );
            ("suppressed", string_of_int suppressed);
            ("exit_code", string_of_int (Diagnostic.exit_code diagnostics));
          ] );
      ( "timings",
        arr
          (List.map
             (fun t ->
               obj [ ("pass", str t.pass); ("ns", string_of_int t.ns) ])
             timings) );
    ]
  ^ "\n"
