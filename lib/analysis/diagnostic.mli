(** Provenance-tracked lint diagnostics.

    Every finding the static-analysis layer produces is one {!t}: a
    stable machine-readable code drawn from the {!catalog}, a severity,
    a human message, and provenance — the workspace-relative source file
    with a {!Loc.span} when the finding maps to a place in a text, or a
    graph {e subject} (term, rule or relation name) when it does not.

    Codes are stable API: scripts key baselines and CI gates on them, so
    renaming one is a breaking change.  The catalog records each code's
    pass, default severity and default-enabled flag; a {!config} can
    disable codes, re-enable default-off ones, and override severities
    per code. *)

type severity = Error | Warning

type t = {
  code : string;  (** Stable code, e.g. ["dead-rule"]. *)
  severity : severity;
  message : string;
  pass : string;  (** The pass that produced it, e.g. ["consistency"]. *)
  file : string option;  (** Workspace-relative source file. *)
  span : Loc.span option;  (** Position inside [file], when recovered. *)
  subject : string option;  (** Graph subject: term, rule, label... *)
  related : string list;  (** E.g. the names of the rules involved. *)
}

val v :
  ?severity:severity ->
  ?file:string ->
  ?span:Loc.span ->
  ?subject:string ->
  ?related:string list ->
  code:string ->
  pass:string ->
  string ->
  t
(** [v ~code ~pass message].  [severity] defaults to the catalog's
    default for [code] (and to [Warning] for uncatalogued codes, which
    only tests construct). *)

(** {1 The check catalog} *)

type check = {
  check_code : string;
  check_pass : string;
  default_severity : severity;
  default_enabled : bool;
      (** Default-off checks (only ["undeclared-relationship"]) run only
          when a config enables them. *)
  summary : string;
}

val catalog : check list
(** Every code [onion lint] can emit, grouped by pass, sorted by
    (pass, code).  See DESIGN.md §12 for the prose catalog. *)

val find_check : string -> check option

(** {1 Configuration} *)

type config = {
  enable : string list;  (** Codes forced on (default-off checks). *)
  disable : string list;  (** Codes dropped from the report. *)
  as_error : string list;  (** Codes promoted to [Error]. *)
  as_warning : string list;  (** Codes demoted to [Warning]. *)
}

val default_config : config

val code_enabled : config -> string -> bool
(** [disable] wins over [enable]; otherwise the catalog's
    [default_enabled] (uncatalogued codes count as enabled). *)

val apply_config : config -> t list -> t list
(** Drop disabled diagnostics and apply severity overrides. *)

(** {1 Reporting} *)

val order : t -> t -> int
(** Deterministic report order: errors first, then by file, span,
    code, subject. *)

val errors : t list -> t list

val warnings : t list -> t list

val exit_code : t list -> int
(** CI gate: [2] when any error remains, [1] when only warnings, [0]
    when clean. *)

val fingerprint : t -> string
(** [code|file|subject] — deliberately line-independent, so baselines
    survive unrelated edits that shift line numbers. *)

val pp : Format.formatter -> t -> unit
(** One human line: [file:line:col: severity[code] message (subject)]. *)

val to_json : t -> string
(** One SARIF-shaped result object ([ruleId], [level], [message.text],
    [locations[].physicalLocation]), with [fingerprint] and the
    pass/subject/related extras under [properties]. *)

(** Hand-rolled JSON assembly, shared with the report serializer (the
    toolchain carries no JSON library; same approach as [Status_json]
    and the [BENCH_*.json] emitters). *)
module Json : sig
  val escape : string -> string
  val str : string -> string
  val arr : string list -> string
  val obj : (string * string) list -> string
end
