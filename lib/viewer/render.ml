let ontology_tree ?(show_instances = true) o =
  let buf = Buffer.create 1024 in
  let visited = Hashtbl.create 64 in
  let line prefix text = Buffer.add_string buf (prefix ^ text ^ "\n") in
  let decorate term =
    let attrs = Ontology.own_attributes o term in
    if attrs = [] then term
    else term ^ "  [" ^ String.concat ", " attrs ^ "]"
  in
  let rec emit prefix child_prefix term =
    if Hashtbl.mem visited term then line prefix (term ^ " (see above)")
    else begin
      Hashtbl.add visited term ();
      line prefix (decorate term);
      if show_instances then
        List.iter
          (fun i -> line (child_prefix ^ "  \xe2\x97\x8f ") i)
          (Digraph.pred_by (Ontology.graph o) term Rel.instance_of);
      let children = Ontology.subclasses o term in
      let n = List.length children in
      List.iteri
        (fun i child ->
          let last = i = n - 1 in
          let branch = if last then "\xe2\x94\x94\xe2\x94\x80 " else "\xe2\x94\x9c\xe2\x94\x80 " in
          let cont = if last then "   " else "\xe2\x94\x82  " in
          emit (child_prefix ^ branch) (child_prefix ^ cont) child)
        children
    end
  in
  let is_attr_or_instance term =
    let g = Ontology.graph o in
    Digraph.pred_by g term Rel.attribute_of <> []
    || Digraph.succ_by g term Rel.instance_of <> []
  in
  let roots =
    List.filter
      (fun t -> Ontology.superclasses o t = [] && not (is_attr_or_instance t))
      (Ontology.terms o)
  in
  Buffer.add_string buf (Printf.sprintf "ontology %s\n" (Ontology.name o));
  List.iter (fun r -> emit "" "" r) roots;
  let leftovers =
    List.filter
      (fun t -> not (Hashtbl.mem visited t || is_attr_or_instance t))
      (Ontology.terms o)
  in
  if leftovers <> [] then begin
    Buffer.add_string buf "(other terms)\n";
    List.iter (fun t -> line "  " (decorate t)) leftovers
  end;
  Buffer.contents buf

let articulation_summary a =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "articulation %s between %s and %s\n" (Articulation.name a)
       (Articulation.left a) (Articulation.right a));
  Buffer.add_string buf (ontology_tree (Articulation.ontology a));
  List.iter
    (fun source ->
      let bridges = Articulation.bridges_with a source in
      let own =
        List.filter
          (fun (b : Bridge.t) ->
            String.equal b.Bridge.src.Term.ontology source
            || String.equal b.Bridge.dst.Term.ontology source)
          bridges
      in
      if own <> [] then begin
        Buffer.add_string buf (Printf.sprintf "bridges with %s:\n" source);
        List.iter
          (fun b -> Buffer.add_string buf (Format.asprintf "  %a\n" Bridge.pp b))
          own
      end)
    [ Articulation.left a; Articulation.right a ];
  Buffer.contents buf

let unified_overview (u : Algebra.unified) =
  let buf = Buffer.create 512 in
  let art = u.Algebra.articulation in
  Buffer.add_string buf
    (Printf.sprintf "unified ontology: %d nodes, %d edges\n"
       (Digraph.nb_nodes u.Algebra.graph)
       (Digraph.nb_edges u.Algebra.graph));
  List.iter
    (fun (name, terms) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s (%d): %s\n" name (List.length terms)
           (String.concat ", " terms)))
    [
      (Ontology.name u.Algebra.left, Ontology.terms u.Algebra.left);
      (Ontology.name u.Algebra.right, Ontology.terms u.Algebra.right);
      (Articulation.name art, Ontology.terms (Articulation.ontology art));
    ];
  Buffer.add_string buf
    (Printf.sprintf "  bridges: %d\n" (Articulation.nb_bridges art));
  Buffer.contents buf

let suggestions_table suggestions =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %-50s %s\n" "score" "suggested rule" "evidence");
  List.iter
    (fun (s : Skat.suggestion) ->
      Buffer.add_string buf
        (Printf.sprintf "%-6.2f %-50s %s\n" s.Skat.score
           (Rule.to_string s.Skat.rule)
           s.Skat.evidence))
    suggestions;
  Buffer.contents buf

let transcript events =
  events
  |> List.map (Format.asprintf "%a" Session.pp_event)
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

let rules_listing rules =
  rules |> List.map Rule.to_string |> String.concat "\n" |> fun s -> s ^ "\n"

let conflicts_listing conflicts =
  match conflicts with
  | [] -> "no conflicts\n"
  | cs ->
      cs
      |> List.map (fun c -> Format.asprintf "%a" Conflict.pp_conflict c)
      |> String.concat "\n"
      |> fun s -> s ^ "\n"
