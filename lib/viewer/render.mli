(** Text rendering for the onion viewer (section 2.2).

    The paper's viewer is a GUI; this reproduction renders the same
    information as text: the subclass tree of an ontology with attributes
    inline, articulation summaries with their bridges grouped by source,
    and suggestion tables for the expert loop.  Graphviz output lives in
    {!Dot}. *)

val ontology_tree : ?show_instances:bool -> Ontology.t -> string
(** Indented subclass forest:
    {v
    Carrier
    ├─ Cars  [Driver, Model, Owner, Price]
    │   ● MyCar
    └─ Trucks  [Owner, Price]
    v}
    Attributes in brackets; instances as bullet lines when
    [show_instances] (default [true]).  Terms outside the subclass forest
    are listed under a trailing ["(other terms)"] header.  Cycle-safe. *)

val articulation_summary : Articulation.t -> string
(** The articulation ontology tree plus bridges grouped per source
    ontology. *)

val unified_overview : Algebra.unified -> string
(** Counts and per-ontology term lists of a unified ontology. *)

val suggestions_table : Skat.suggestion list -> string
(** Fixed-width table: score, rule, evidence. *)

val rules_listing : Rule.t list -> string

val transcript : Session.event list -> string
(** One line per session event (round markers, suggestions, decisions,
    generations). *)

val conflicts_listing : Conflict.conflict list -> string
