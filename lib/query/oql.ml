type mediator = {
  per_source : (string * string) list;
  merge_program : string;
}

let string_of_op = function
  | Query.Eq -> "="
  | Query.Neq -> "!="
  | Query.Lt -> "<"
  | Query.Le -> "<="
  | Query.Gt -> ">"
  | Query.Ge -> ">="

let string_of_value = function
  | Conversion.Num f -> Format.asprintf "%g" f
  | Conversion.Str s -> "\"" ^ s ^ "\""
  | Conversion.Bool b -> string_of_bool b

(* Rewrite one pushable predicate into source vocabulary; None when the
   constant cannot cross (falls back to the merge program). *)
let push_predicate ~conversions (sp : Plan.source_plan) (p : Query.predicate) =
  match
    List.find_opt
      (fun (b : Plan.attr_binding) -> String.equal b.Plan.art_attr p.Query.attr)
      sp.Plan.attrs
  with
  | None -> None
  | Some binding -> (
      match binding.Plan.to_articulation with
      | None ->
          Some
            (Printf.sprintf "x.%s %s %s" binding.Plan.source_attr
               (string_of_op p.Query.op)
               (string_of_value p.Query.value))
      | Some _ -> (
          match binding.Plan.from_articulation with
          | None -> None
          | Some inverse -> (
              match Conversion.apply conversions inverse p.Query.value with
              | Ok local_value ->
                  Some
                    (Printf.sprintf "x.%s %s %s /* %s applied to constant */"
                       binding.Plan.source_attr
                       (string_of_op p.Query.op)
                       (string_of_value local_value) inverse)
              | Error _ -> None)))

let source_oql ~conversions (sp : Plan.source_plan) =
  let buf = Buffer.create 256 in
  let attrs =
    match sp.Plan.attrs with
    | [] -> "x"
    | attrs ->
        attrs
        |> List.map (fun (b : Plan.attr_binding) ->
               Printf.sprintf "x.%s" b.Plan.source_attr)
        |> String.concat ", "
  in
  let pushed = List.filter_map (push_predicate ~conversions sp) sp.Plan.pushable in
  List.iteri
    (fun i concept ->
      if i > 0 then Buffer.add_string buf "union\n";
      Buffer.add_string buf (Printf.sprintf "select %s\nfrom x in %s\n" attrs concept);
      (match pushed with
      | [] -> ()
      | preds ->
          Buffer.add_string buf
            (Printf.sprintf "where %s\n" (String.concat " and " preds)));
      ())
    sp.Plan.concepts;
  Buffer.contents buf

let merge_program ~conversions (plan : Plan.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "merge program:\n";
  List.iter
    (fun (sp : Plan.source_plan) ->
      List.iter
        (fun (b : Plan.attr_binding) ->
          match b.Plan.to_articulation with
          | Some fn ->
              Buffer.add_string buf
                (Printf.sprintf "  lift %s.%s through %s() as %s\n" sp.Plan.source
                   b.Plan.source_attr fn b.Plan.art_attr)
          | None ->
              if not (String.equal b.Plan.source_attr b.Plan.art_attr) then
                Buffer.add_string buf
                  (Printf.sprintf "  rename %s.%s as %s\n" sp.Plan.source
                     b.Plan.source_attr b.Plan.art_attr))
        sp.Plan.attrs;
      let unpushed =
        List.filter
          (fun p -> push_predicate ~conversions sp p = None)
          sp.Plan.pushable
        @ sp.Plan.residual
      in
      List.iter
        (fun (p : Query.predicate) ->
          Buffer.add_string buf
            (Printf.sprintf "  filter %s tuples: %s %s %s (articulation space)\n"
               sp.Plan.source p.Query.attr (string_of_op p.Query.op)
               (string_of_value p.Query.value)))
        unpushed)
    plan.Plan.sources;
  Buffer.add_string buf "  union all lifted tuples, ordered by (source, id)\n";
  Buffer.contents buf

let of_plan ~conversions (plan : Plan.t) =
  let per_source =
    plan.Plan.sources
    |> List.map (fun sp -> (sp.Plan.source, source_oql ~conversions sp))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { per_source; merge_program = merge_program ~conversions plan }

let to_string m =
  let buf = Buffer.create 512 in
  List.iter
    (fun (source, oql) ->
      Buffer.add_string buf (Printf.sprintf "-- mediator sub-query for %s\n" source);
      Buffer.add_string buf oql)
    m.per_source;
  Buffer.add_string buf m.merge_program;
  Buffer.contents buf
