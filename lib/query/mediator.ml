type env = {
  kbs : Kb.t list;
  space : Federation.t;
  conversions : Conversion.t;
  unavailable : string list;
}

let env_federated ~kbs ~space ?(conversions = Conversion.builtin)
    ?(unavailable = []) () =
  { kbs; space; conversions; unavailable }

let env ~kbs ~unified ?conversions ?unavailable () =
  env_federated ~kbs ~space:(Federation.of_unified unified) ?conversions
    ?unavailable ()

let with_outage e unavailable = { e with unavailable }

type tuple = {
  kb : string;
  source : string;
  instance : string;
  concept : string;
  values : (string * Conversion.value) list;
}

type report = {
  plan : Plan.t;
  fanout : Plan_cost.batch;
  tuples : tuple list;
  aggregates : (string * Conversion.value) list;
  scanned : int;
  transferred : int;
  conversion_failures : (string * string) list;
  skipped_kbs : string list;
}

let explain_fanout r = Plan_cost.explain_batch r.fanout

let tuple_value t attr = List.assoc_opt attr t.values

let pp_tuple ppf t =
  Format.fprintf ppf "%s/%s (%s:%s) {%a}" t.kb t.instance t.source t.concept
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (a, v) -> Format.fprintf ppf "%s=%a" a Conversion.pp_value v))
    t.values

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s" (Plan.explain r.plan);
  if r.skipped_kbs <> [] then
    Format.fprintf ppf "offline, skipped: %s@," (String.concat ", " r.skipped_kbs);
  if r.aggregates <> [] then begin
    Format.fprintf ppf "aggregates over %d matching instance(s):@,"
      (List.length r.tuples);
    List.iter
      (fun (label, v) -> Format.fprintf ppf "  %s = %a@," label Conversion.pp_value v)
      r.aggregates
  end
  else begin
    Format.fprintf ppf "%d tuple(s) from %d scanned (%d transferred):@,"
      (List.length r.tuples) r.scanned r.transferred;
    List.iter (fun t -> Format.fprintf ppf "  %a@," pp_tuple t) r.tuples
  end;
  Format.fprintf ppf "@]"

(* Minimal JSON rendering — kept local so onion_query stays free of a
   dependency on the store layer's Status_json. *)
let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ json_escape s ^ "\""

let jarr items = "[" ^ String.concat ", " items ^ "]"

let jobj fields =
  "{ "
  ^ String.concat ", " (List.map (fun (k, v) -> jstr k ^ ": " ^ v) fields)
  ^ " }"

let jvalue = function
  | Conversion.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
      else Printf.sprintf "%.12g" f
  | Conversion.Bool b -> string_of_bool b
  | Conversion.Str s -> jstr s

let report_json ?(explain = false) r =
  let tuple t =
    jobj
      [
        ("kb", jstr t.kb);
        ("source", jstr t.source);
        ("instance", jstr t.instance);
        ("concept", jstr t.concept);
        ("values", jobj (List.map (fun (a, v) -> (a, jvalue v)) t.values));
      ]
  in
  let base =
    [
      ("tuples", jarr (List.map tuple r.tuples));
      ("aggregates", jobj (List.map (fun (a, v) -> (a, jvalue v)) r.aggregates));
      ("scanned", string_of_int r.scanned);
      ("transferred", string_of_int r.transferred);
      ("skipped_kbs", jarr (List.map jstr r.skipped_kbs));
    ]
  in
  let fields =
    if explain then ("explain", jstr (explain_fanout r)) :: base else base
  in
  jobj fields

(* Post-processing: ORDER BY, LIMIT, aggregates. *)
let order_and_limit (q : Query.t) tuples =
  let tuples =
    match q.Query.order_by with
    | None -> tuples
    | Some (attr, dir) ->
        let key t = tuple_value t attr in
        let cmp t1 t2 =
          let base =
            match (key t1, key t2) with
            | Some a, Some b -> (
                match Query.compare_values a b with
                | Some c -> c
                | None -> 0)
            | Some _, None -> -1 (* keyed tuples first *)
            | None, Some _ -> 1
            | None, None -> 0
          in
          let base = match dir with Query.Asc -> base | Query.Desc -> -base in
          if base <> 0 then base
          else
            match String.compare t1.kb t2.kb with
            | 0 -> String.compare t1.instance t2.instance
            | c -> c
        in
        List.stable_sort cmp tuples
  in
  match q.Query.limit with
  | None -> tuples
  | Some n -> List.filteri (fun i _ -> i < n) tuples

let compute_aggregates (q : Query.t) tuples =
  List.filter_map
    (fun agg ->
      let label = Query.aggregate_label agg in
      (* Numeric attribute values for one aggregated attribute; non-numeric
         and missing values do not contribute (SQL-style NULL skipping). *)
      let numeric_values a =
        List.filter_map
          (fun t ->
            match tuple_value t a with
            | Some (Conversion.Num f) -> Some f
            | _ -> None)
          tuples
      in
      let over a reduce =
        match numeric_values a with
        | [] -> None
        | vs -> Some (label, Conversion.Num (reduce vs))
      in
      match agg with
      | Query.Count -> Some (label, Conversion.Num (float_of_int (List.length tuples)))
      | Query.Sum a -> over a (List.fold_left ( +. ) 0.0)
      | Query.Avg a ->
          over a (fun vs ->
              List.fold_left ( +. ) 0.0 vs /. float_of_int (List.length vs))
      | Query.Min a -> over a (List.fold_left Float.min Float.max_float)
      | Query.Max a -> over a (List.fold_left Float.max (-.Float.max_float)))
    q.Query.aggregates

(* A predicate compiled for source-side evaluation: the attribute in source
   vocabulary and the constant already crossed into source space. *)
type pushed = { source_attr : string; op : Query.comparison; local : Conversion.value }

let compile_pushdown e (sp : Plan.source_plan) =
  List.filter_map
    (fun (p : Query.predicate) ->
      match
        List.find_opt
          (fun (b : Plan.attr_binding) -> String.equal b.Plan.art_attr p.Query.attr)
          sp.Plan.attrs
      with
      | None -> None
      | Some binding -> (
          match binding.Plan.to_articulation with
          | None ->
              Some
                ( p,
                  {
                    source_attr = binding.Plan.source_attr;
                    op = p.Query.op;
                    local = p.Query.value;
                  } )
          | Some _ -> (
              match binding.Plan.from_articulation with
              | None -> None
              | Some inverse -> (
                  match Conversion.apply e.conversions inverse p.Query.value with
                  | Ok local ->
                      Some
                        ( p,
                          {
                            source_attr = binding.Plan.source_attr;
                            op = p.Query.op;
                            local;
                          } )
                  | Error _ -> None))))
    sp.Plan.pushable

let pushed_holds (inst : Kb.instance) (c : pushed) =
  match Kb.attr_value inst c.source_attr with
  | None -> false
  | Some v -> Query.holds { Query.attr = c.source_attr; op = c.op; value = c.local } v

let run ?(pushdown = false) e (q : Query.t) =
  match Rewrite.plan e.space ~conversions:e.conversions q with
  | Error m -> Error m
  | Ok plan ->
      (* Each source plan is evaluated independently (its own counters and
         failure log) so the per-source fan-out can run on the domain
         pool; the per-source results are folded back together in plan
         order, which keeps every output field identical to the
         sequential evaluation at any pool size. *)
      let run_source (sp : Plan.source_plan) =
        (* Per-source cancellation point: a federated query that has
           blown its deadline stops before scanning the next source's
           stores (the matcher handles finer granularity below). *)
        Deadline.check ();
        let scanned = ref 0 in
        let transferred = ref 0 in
        let failures = ref [] in
        let source_side, remaining =
          if pushdown then begin
            let compiled = compile_pushdown e sp in
            let pushed_preds = List.map fst compiled in
            let remaining =
              List.filter
                (fun p -> not (List.memq p pushed_preds))
                q.Query.where
            in
            (List.map snd compiled, remaining)
          end
          else ([], q.Query.where)
        in
        let kbs =
          List.filter
            (fun kb ->
              String.equal (Ontology.name (Kb.ontology kb)) sp.Plan.source
              && not (List.mem (Kb.name kb) e.unavailable))
            e.kbs
        in
        let tuples =
          List.concat_map
            (fun kb ->
            (* The concept list already contains subclasses (they reach the
               query concept through their own semantic path), so scan each
               non-transitively and deduplicate ids. *)
            let seen = Hashtbl.create 16 in
            List.concat_map
              (fun concept ->
                Kb.instances_of ~transitive:false kb ~concept
                |> List.filter_map (fun (inst : Kb.instance) ->
                       if Hashtbl.mem seen inst.Kb.id then None
                       else begin
                         Hashtbl.add seen inst.Kb.id ();
                         incr scanned;
                         if not (List.for_all (pushed_holds inst) source_side)
                         then None
                         else begin
                           incr transferred;
                           (* Lift attribute values into articulation
                              space. *)
                           let values =
                             List.filter_map
                               (fun (b : Plan.attr_binding) ->
                                 match Kb.attr_value inst b.Plan.source_attr with
                                 | None -> None
                                 | Some v -> (
                                     match b.Plan.to_articulation with
                                     | None -> Some (b.Plan.art_attr, v)
                                     | Some fn -> (
                                         match
                                           Conversion.apply e.conversions fn v
                                         with
                                         | Ok v' -> Some (b.Plan.art_attr, v')
                                         | Error m ->
                                             failures :=
                                               (inst.Kb.id, m) :: !failures;
                                             None)))
                               sp.Plan.attrs
                             |> List.sort (fun (a, _) (b, _) -> String.compare a b)
                           in
                           let passes =
                             List.for_all
                               (fun (p : Query.predicate) ->
                                 match List.assoc_opt p.Query.attr values with
                                 | Some v -> Query.holds p v
                                 | None -> false)
                               remaining
                           in
                           if passes then
                             Some
                               {
                                 kb = Kb.name kb;
                                 source = sp.Plan.source;
                                 instance = inst.Kb.id;
                                 concept = inst.Kb.concept;
                                 values;
                               }
                           else None
                         end
                       end))
                sp.Plan.concepts)
            kbs
        in
        (tuples, !scanned, !transferred, List.rev !failures)
      in
      (* Per-source work is dominated by scanning the stores: every
         involved kb's instances are touched once, with constant-ish work
         per instance (set probes, predicate checks, conversions).  The
         estimate feeds both the pool's fan-out gate and the report's
         explainable plan. *)
      let total_instances =
        List.fold_left (fun acc kb -> acc + Kb.size kb) 0 e.kbs
      in
      let num_sources = List.length plan.Plan.sources in
      let per_source_cost =
        10.0 *. float_of_int total_instances
        /. float_of_int (max 1 num_sources)
      in
      let fanout =
        Domain_pool.batch_plan ~items:num_sources ~per_item_cost:per_source_cost
      in
      let per_source =
        Domain_pool.map ~cost:per_source_cost run_source plan.Plan.sources
      in
      let scanned =
        List.fold_left (fun acc (_, s, _, _) -> acc + s) 0 per_source
      in
      let transferred =
        List.fold_left (fun acc (_, _, t, _) -> acc + t) 0 per_source
      in
      let failures = List.concat_map (fun (_, _, _, f) -> f) per_source in
      let tuples =
        List.concat_map (fun (ts, _, _, _) -> ts) per_source
        |> List.sort (fun t1 t2 ->
               match String.compare t1.kb t2.kb with
               | 0 -> String.compare t1.instance t2.instance
               | c -> c)
      in
      let aggregates = compute_aggregates q tuples in
      let tuples = order_and_limit q tuples in
      let skipped_kbs =
        List.filter_map
          (fun kb ->
            let name = Kb.name kb in
            let involved =
              List.exists
                (fun sp ->
                  String.equal (Ontology.name (Kb.ontology kb)) sp.Plan.source)
                plan.Plan.sources
            in
            if involved && List.mem name e.unavailable then Some name else None)
          e.kbs
        |> List.sort_uniq String.compare
      in
      Ok
        {
          plan;
          fanout;
          tuples;
          aggregates;
          scanned;
          transferred;
          conversion_failures = failures;
          skipped_kbs;
        }

let run_text ?pushdown ?default_ontology e text =
  let default_ontology =
    match default_ontology with
    | Some d -> d
    | None -> Option.value (Federation.primary_articulation e.space) ~default:"transport"
  in
  match Query.parse ~default_ontology text with
  | Error m -> Error m
  | Ok q -> run ?pushdown e q
