type instance = {
  id : string;
  concept : string;
  attrs : (string * Conversion.value) list;
}

module Smap = Map.Make (String)

type t = { name : string; ontology : Ontology.t; store : instance Smap.t }

let create ~ontology name = { name; ontology; store = Smap.empty }

let name kb = kb.name

let ontology kb = kb.ontology

let add kb ~concept ~id attrs =
  if not (Ontology.has_term kb.ontology concept) then
    invalid_arg
      (Printf.sprintf "Kb.add: %s is not a term of ontology %s" concept
         (Ontology.name kb.ontology));
  let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
  { kb with store = Smap.add id { id; concept; attrs } kb.store }

let remove kb ~id = { kb with store = Smap.remove id kb.store }

let get kb ~id = Smap.find_opt id kb.store

let attr_value inst attr = List.assoc_opt attr inst.attrs

let size kb = Smap.cardinal kb.store

let instances kb = List.map snd (Smap.bindings kb.store)

(* The subclass closure of a concept depends only on the ontology, not on
   the instance store, so it is memoized on the ontology's revision stamp;
   the per-instance filter below always runs against the live store. *)
let wanted_cache : (int * string * bool, string list) Lru.t =
  Lru.create ~name:"kb.instances_of" ~capacity:512 ()

module Cset = Set.Make (String)

(* Estimated cost of filtering one instance: a set-membership probe plus
   result-list consing.  Handing the estimate to the pool replaces the
   old fixed 4096-instance threshold — the pool's calibrated spawn floor
   now decides, so the crossover tracks the actual pool size instead of
   a constant measured at one size. *)
let scan_cost_per_instance = 5.0

let instances_of ?(transitive = true) kb ~concept =
  let wanted =
    Lru.find_or_compute wanted_cache
      (Ontology.revision kb.ontology, concept, transitive)
    @@ fun () ->
    if transitive then concept :: Ontology.all_subclasses kb.ontology concept
    else [ concept ]
  in
  let wanted = Cset.of_list wanted in
  let insts = instances kb in
  let keep i = Cset.mem i.concept wanted in
  Domain_pool.filter ~cost:scan_cost_per_instance keep insts

let concepts kb =
  instances kb |> List.map (fun i -> i.concept) |> List.sort_uniq String.compare

let parse_value s =
  match float_of_string_opt s with
  | Some f -> Conversion.Num f
  | None -> (
      match bool_of_string_opt s with
      | Some b -> Conversion.Bool b
      | None -> Conversion.Str s)

let of_ontology_instances ~ontology kb_name =
  let g = Ontology.graph ontology in
  let kb = create ~ontology kb_name in
  Digraph.fold_edges
    (fun (e : Digraph.edge) kb ->
      if String.equal e.label Rel.instance_of then begin
        (* Attribute values: custom verb edges out of the instance whose
           target has no further structure (a leaf literal node). *)
        let attrs =
          Digraph.out_edges g e.src
          |> List.filter_map (fun (a : Digraph.edge) ->
                 let standard =
                   List.mem a.label
                     [
                       Rel.instance_of;
                       Rel.subclass_of;
                       Rel.attribute_of;
                       Rel.semantic_implication;
                     ]
                 in
                 if standard || Digraph.out_degree g a.dst > 0 then None
                 else Some (a.label, parse_value a.dst))
        in
        add kb ~concept:e.dst ~id:e.src attrs
      end
      else kb)
    g kb
