(** Query execution plans.

    The query processor "derives an execution plan against the sources
    involved" (section 2.3).  A plan names, per source ontology, the
    concepts to scan, how each requested articulation attribute maps onto
    a source attribute (possibly through a conversion function), and which
    predicates a mediator could push down to that source. *)

type attr_binding = {
  art_attr : string;  (** Attribute name in articulation vocabulary. *)
  source_attr : string;  (** Attribute name at the source. *)
  to_articulation : string option;
      (** Conversion-function name lifting source values into articulation
          space ([None] = identity). *)
  from_articulation : string option;
      (** Inverse direction, when available — what makes a predicate
          pushable. *)
}

type source_plan = {
  source : string;  (** Source ontology name. *)
  concepts : string list;
      (** Source concepts whose instances answer the query, sorted. *)
  attrs : attr_binding list;  (** Sorted by [art_attr]. *)
  pushable : Query.predicate list;
      (** Predicates expressible in source vocabulary (advisory: the
          in-memory executor evaluates every predicate in articulation
          space, which is semantically identical). *)
  residual : Query.predicate list;
}

type t = { query : Query.t; sources : source_plan list }

val involved_sources : t -> string list

val explain : t -> string
(** Multi-line human-readable plan, stable across runs. *)

val pp : Format.formatter -> t -> unit
