(** The mediator: execute reformulated queries against the knowledge bases
    and merge the answers (the "onion query system" of section 2.3; in
    place of generated ODMG mediators, the plan is interpreted directly).

    Values are lifted into articulation space through the plan's
    conversion functions before predicates are applied, so a price filter
    expressed in euros correctly selects guilder- and sterling-priced
    instances. *)

type env = {
  kbs : Kb.t list;
      (** Any number of knowledge bases; each commits to a source
          ontology by name. *)
  space : Federation.t;  (** The query space: sources + articulations. *)
  conversions : Conversion.t;
  unavailable : string list;
      (** Knowledge bases currently offline (by {!Kb.name}).  Sources
          "change frequently" (section 1) and sometimes vanish: queries
          still answer from the remaining sources, reporting what was
          skipped. *)
}

val env :
  kbs:Kb.t list ->
  unified:Algebra.unified ->
  ?conversions:Conversion.t ->
  ?unavailable:string list ->
  unit ->
  env
(** Two-source environment.  [conversions] defaults to
    {!Conversion.builtin}; [unavailable] to none. *)

val env_federated :
  kbs:Kb.t list ->
  space:Federation.t ->
  ?conversions:Conversion.t ->
  ?unavailable:string list ->
  unit ->
  env
(** Environment over any federation (e.g. a {!Compose} tower packaged with
    {!Federation.of_parts}). *)

val with_outage : env -> string list -> env
(** Mark knowledge bases offline (replaces the current outage list). *)

type tuple = {
  kb : string;  (** Knowledge base that produced the tuple. *)
  source : string;  (** Source ontology name. *)
  instance : string;
  concept : string;  (** Source concept of the instance. *)
  values : (string * Conversion.value) list;
      (** Articulation-vocabulary attribute values, converted; sorted. *)
}

type report = {
  plan : Plan.t;
  fanout : Plan_cost.batch;
      (** The fan-out plan the per-source evaluation executed under: how
          many source plans, the estimated per-source work, and whether
          the {!Domain_pool} gate chose sequential or parallel
          execution.  Rendered by {!explain_fanout} for
          [onion query --explain]. *)
  tuples : tuple list;
      (** Matching instances; ordered by the query's [ORDER BY] when
          present (instances lacking the key sort last), by
          (kb, instance id) otherwise; truncated to [LIMIT]. *)
  aggregates : (string * Conversion.value) list;
      (** Aggregate results, in query order, labeled ["COUNT(*)"] etc.
          [SUM]/[AVG]/[MIN]/[MAX] skip instances lacking the attribute or
          holding non-numeric values; they are absent when no instance
          contributed. *)
  scanned : int;  (** Instances examined before predicate filtering. *)
  transferred : int;
      (** Instances that crossed from the sources into the mediator: with
          predicate pushdown, instances rejected at the source never
          transfer; without it, [transferred = scanned]. *)
  conversion_failures : (string * string) list;
      (** (instance, message) pairs where a converter rejected a value;
          the attribute is then absent from the tuple. *)
  skipped_kbs : string list;
      (** Knowledge bases not consulted because they were offline. *)
}

val run : ?pushdown:bool -> env -> Query.t -> (report, string) result
(** With [pushdown] (default [false]) the pushable predicates are
    evaluated at the source in source vocabulary (their constants crossed
    through the inverse conversion function), before any value is lifted —
    what a generated mediator would ship to each source.  Results are
    identical as long as conversions are monotone (true of every builtin
    converter); only [transferred] changes. *)

val run_text :
  ?pushdown:bool ->
  ?default_ontology:string ->
  env ->
  string ->
  (report, string) result
(** Parse and run a textual query; [default_ontology] defaults to the
    space's {!Federation.primary_articulation}. *)

val tuple_value : tuple -> string -> Conversion.value option

val explain_fanout : report -> string
(** One stable line describing the executed fan-out plan
    (see {!Plan_cost.explain_batch}): deterministic in the environment
    and query, so CLI output containing it can be golden-tested. *)

val report_json : ?explain:bool -> report -> string
(** The report as a single-line JSON object (tuples, aggregates,
    counters, skipped kbs).  With [explain], an ["explain"] field
    carries the {!explain_fanout} line — [--explain] composes with
    [--json]. *)

val pp_tuple : Format.formatter -> tuple -> unit

val pp_report : Format.formatter -> report -> unit
