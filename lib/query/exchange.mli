(** Instance exchange between sources.

    Section 2.3 names two uses of interoperation: "querying their
    semantically meaningful intersection or {e exchanging information
    between the underlying sources}".  This module is the second: it
    translates a knowledge-base instance from one source's vocabulary into
    another's, routing concept and attributes through the articulation —
    the OEM-style object exchange of the paper's reference [18].

    Translation of an instance of [from]-concept [c]:

    - the {e concept} maps to the most specific [target]-concept reachable
      from [c] through the semantic bridges (via the articulation); if the
      bridges only warrant a more general concept, that is what you get —
      translation is semantically sound, never inventing specificity;
    - each {e attribute} routes through its articulation binding: lifted by
      the [from]-side conversion function, then lowered by the
      [target]-side one (e.g. guilders → euro → pounds sterling);
      attributes with no path are reported untranslated. *)

type outcome = {
  instance : Kb.instance;  (** In target vocabulary. *)
  target_concept_path : string list;
      (** The qualified semantic path that justified the concept mapping,
          from the source concept to the target concept. *)
  untranslated : string list;
      (** Source attribute names that found no target binding, sorted. *)
}

val concept_target :
  Federation.t -> from:string -> to_:string -> string -> string option
(** [concept_target space ~from ~to_ c]: the most specific concept of
    ontology [to_] reachable from [from:c] through semantic edges
    ([SIBridge] / [SI] / [SubclassOf]); [None] when the articulation does
    not connect them.  "Most specific" = a reachable target concept none of
    whose own (transitive) subclasses is also reachable; ties break
    lexicographically. *)

val attr_route :
  Federation.t ->
  conversions:Conversion.t ->
  from:string ->
  to_:string ->
  string ->
  (string * (Conversion.value -> (Conversion.value, string) result)) option
(** [attr_route space ~conversions ~from ~to_ a]: the target attribute
    name for [from]-attribute [a] and the value converter (possibly the
    identity, possibly a two-hop conversion through articulation space). *)

val translate :
  Federation.t ->
  conversions:Conversion.t ->
  from:string ->
  to_:string ->
  Kb.instance ->
  (outcome, string) result
(** Translate one instance.  [Error] when the concept cannot be mapped;
    attribute failures are partial (reported in [untranslated], and in
    the instance the attribute is dropped). *)
