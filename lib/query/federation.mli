(** Query spaces over any number of sources.

    The pairwise {!Algebra.unified} covers two sources; real federations
    grow by composition (section 4.2): an articulation tower spans three
    or more.  A {e space} is the query-time view of any such construction:
    the merged qualified graph, the participating source ontologies, and
    the names of the articulation ontologies whose vocabulary queries are
    phrased in.  {!Rewrite} and {!Mediator} operate on spaces; the
    two-source entry points wrap their input into one. *)

type t = {
  graph : Digraph.t;
      (** Qualified union of every source, every articulation ontology and
          all bridges. *)
  sources : Ontology.t list;  (** The underlying source ontologies. *)
  articulation_names : string list;
      (** Ontology names whose terms are articulation vocabulary, sorted.
          Attribute bindings look for conversion / bridge edges into any
          of them. *)
}

val of_unified : Algebra.unified -> t
(** The two-source space. *)

val of_parts :
  sources:Ontology.t list -> articulations:Articulation.t list -> t
(** A space from explicitly enumerated parts: the graph is the union of
    all qualified sources, all qualified articulation ontologies and all
    bridges.  This covers any tower or mesh of articulations.
    @raise Invalid_argument if an articulation ontology shares a name
    with a source. *)

val source_names : t -> string list
(** Sorted. *)

val source : t -> string -> Ontology.t option

val primary_articulation : t -> string option
(** The default vocabulary for bare query concepts: the articulation whose
    name sorts last (the most recently layered one in towers built through
    {!of_parts}), if any. *)
