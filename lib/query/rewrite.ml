let semantic_follow =
  Traversal.only [ Rel.si_bridge; Rel.semantic_implication; Rel.subclass_of ]

let prefixed source name = source ^ ":" ^ name

let strip_prefix source qualified =
  let p = source ^ ":" in
  let lp = String.length p in
  if String.length qualified > lp && String.equal (String.sub qualified 0 lp) p
  then Some (String.sub qualified lp (String.length qualified - lp))
  else None

let source_concepts (space : Federation.t) ~source concept =
  let g = space.Federation.graph in
  let target = Term.qualified concept in
  if not (Digraph.mem_node g target) then []
  else begin
    let specializations = Traversal.co_reachable ~follow:semantic_follow g target in
    let candidates = target :: specializations in
    candidates
    |> List.filter_map (strip_prefix source)
    |> List.sort_uniq String.compare
  end

(* Conversion edges between a source attribute node and an articulation
   attribute node, in either direction; the articulation node is searched
   under each articulation name in sorted order. *)
let conversion_binding_under (space : Federation.t) ~conversions ~source
    ~art_name attr =
  let g = space.Federation.graph in
  let art_node = prefixed art_name attr in
  if not (Digraph.mem_node g art_node) then None
  else begin
    let forward =
      Digraph.in_edges g art_node
      |> List.find_map (fun (e : Digraph.edge) ->
             match (Rel.conversion_name e.label, strip_prefix source e.src) with
             | Some fn, Some local -> Some (local, fn)
             | _ -> None)
    in
    match forward with
    | Some (local, fn) ->
        let back =
          Digraph.out_edges g art_node
          |> List.find_map (fun (e : Digraph.edge) ->
                 match (Rel.conversion_name e.label, strip_prefix source e.dst) with
                 | Some fn2, Some local2 when String.equal local2 local -> Some fn2
                 | _ -> None)
        in
        let back =
          match back with
          | Some _ -> back
          | None -> Conversion.inverse_name conversions fn
        in
        Some
          {
            Plan.art_attr = attr;
            source_attr = local;
            to_articulation = Some fn;
            from_articulation = back;
          }
    | None ->
        (* An SIBridge between attribute terms: source attr ~ articulation
           attr with identical semantics, no conversion. *)
        Digraph.in_edges g art_node
        |> List.find_map (fun (e : Digraph.edge) ->
               if String.equal e.label Rel.si_bridge then strip_prefix source e.src
               else None)
        |> Option.map (fun local ->
               {
                 Plan.art_attr = attr;
                 source_attr = local;
                 to_articulation = None;
                 from_articulation = None;
               })
  end

let attr_binding (space : Federation.t) ~conversions ~source attr =
  let via_articulations =
    List.find_map
      (fun art_name ->
        conversion_binding_under space ~conversions ~source ~art_name attr)
      space.Federation.articulation_names
  in
  match via_articulations with
  | Some b -> Some b
  | None -> (
      (* Identity: the source uses the same attribute name. *)
      match Federation.source space source with
      | Some o when Ontology.has_term o attr ->
          Some
            {
              Plan.art_attr = attr;
              source_attr = attr;
              to_articulation = None;
              from_articulation = None;
            }
      | _ -> None)

(* Attribute names the source can surface, in articulation vocabulary:
   used for SELECT *. *)
let visible_attrs (space : Federation.t) ~conversions ~source concepts =
  match Federation.source space source with
  | None -> []
  | Some source_ontology ->
      let g = space.Federation.graph in
      let own =
        List.concat_map (fun c -> Ontology.attributes source_ontology c) concepts
        |> List.sort_uniq String.compare
      in
      List.map
        (fun local ->
          (* Does a conversion / bridge edge rename this attribute? *)
          let qualified = prefixed source local in
          let renamed =
            Digraph.out_edges g qualified
            |> List.find_map (fun (e : Digraph.edge) ->
                   if
                     Rel.is_conversion_label e.label
                     || String.equal e.label Rel.si_bridge
                   then
                     List.find_map
                       (fun art_name -> strip_prefix art_name e.dst)
                       space.Federation.articulation_names
                   else None)
          in
          match renamed with Some art -> art | None -> local)
        own
      |> List.sort_uniq String.compare
      |> List.filter_map (fun attr -> attr_binding space ~conversions ~source attr)

(* Reformulation is memoized on the revision stamps of everything a plan
   depends on: the space's merged graph, each source ontology (by name so
   that renames miss), the articulation vocabulary, the set of registered
   converter names (bindings only consult names, never the closures) and
   the query itself.  Repeated queries against an unchanged federation
   are a table lookup. *)
let plan_cache :
    ( int * (string * int) list * string list * string list * Query.t,
      (Plan.t, string) result )
    Lru.t =
  Lru.create ~name:"rewrite.plan" ~capacity:256 ()

let plan (space : Federation.t) ~conversions (q : Query.t) =
  Lru.find_or_compute plan_cache
    ( Digraph.revision space.Federation.graph,
      List.map
        (fun o -> (Ontology.name o, Ontology.revision o))
        space.Federation.sources,
      space.Federation.articulation_names,
      Conversion.names conversions,
      q )
  @@ fun () ->
  let source_plans =
    List.filter_map
      (fun source ->
        let concepts = source_concepts space ~source q.Query.concept in
        if concepts = [] then None
        else begin
          (* Bindings must cover everything the query evaluates, not just
             its output: WHERE attributes, aggregate arguments and the
             ORDER BY key all need source attributes. *)
          let evaluated =
            List.map (fun (p : Query.predicate) -> p.Query.attr) q.Query.where
            @ List.filter_map Query.aggregate_attr q.Query.aggregates
            @ (match q.Query.order_by with Some (a, _) -> [ a ] | None -> [])
          in
          let attrs =
            match (q.Query.select, q.Query.aggregates) with
            | [], [] ->
                let visible = visible_attrs space ~conversions ~source concepts in
                let visible_names =
                  List.map (fun (b : Plan.attr_binding) -> b.Plan.art_attr) visible
                in
                visible
                @ List.filter_map
                    (fun attr ->
                      if List.mem attr visible_names then None
                      else attr_binding space ~conversions ~source attr)
                    (List.sort_uniq String.compare evaluated)
            | selected, _ ->
                List.filter_map
                  (fun attr -> attr_binding space ~conversions ~source attr)
                  (List.sort_uniq String.compare (selected @ evaluated))
          in
          let binding_of attr =
            List.find_opt
              (fun (b : Plan.attr_binding) -> String.equal b.Plan.art_attr attr)
              attrs
          in
          let pushable, residual =
            List.partition
              (fun (p : Query.predicate) ->
                match binding_of p.Query.attr with
                | Some b ->
                    b.Plan.to_articulation = None || b.Plan.from_articulation <> None
                | None -> false)
              q.Query.where
          in
          Some { Plan.source; concepts; attrs; pushable; residual }
        end)
      (Federation.source_names space)
  in
  if source_plans = [] then
    Error
      (Printf.sprintf "no source can answer concept %s"
         (Term.qualified q.Query.concept))
  else Ok { Plan.query = q; sources = source_plans }

let plan_unified u ~conversions q = plan (Federation.of_unified u) ~conversions q
