type t = {
  graph : Digraph.t;
  sources : Ontology.t list;
  articulation_names : string list;
}

let of_unified (u : Algebra.unified) =
  {
    graph = u.Algebra.graph;
    sources = [ u.Algebra.left; u.Algebra.right ];
    articulation_names = [ Articulation.name u.Algebra.articulation ];
  }

module Sset = Set.Make (String)

let of_parts ~sources ~articulations =
  (* One set built once: membership is O(log n) per articulation instead
     of a List.mem rescan of every source name. *)
  let source_names =
    List.fold_left
      (fun s o -> Sset.add (Ontology.name o) s)
      Sset.empty sources
  in
  List.iter
    (fun a ->
      if Sset.mem (Articulation.name a) source_names then
        invalid_arg
          (Printf.sprintf
             "Federation.of_parts: articulation %s shares a source's name"
             (Articulation.name a)))
    articulations;
  (* Qualifying each part is independent per-source work — the fan-out
     runs on the domain pool; the unions stay sequential (cheap thanks to
     structural sharing) and in declaration order, so the space is
     deterministic at any pool size.  Qualification rebuilds each graph
     node-by-node and edge-by-edge, so its cost scales with the part's
     size; the gate keeps small federations (where 2-domain fan-out
     measurably lost) sequential. *)
  let qualify_cost os =
    match os with
    | [] -> 0.0
    | _ ->
        let total =
          List.fold_left
            (fun acc o -> acc + Ontology.nb_terms o + Ontology.nb_relationships o)
            0 os
        in
        3.0 *. float_of_int total /. float_of_int (List.length os)
  in
  let qualified_sources =
    Domain_pool.map ~cost:(qualify_cost sources) Ontology.qualify sources
  in
  let qualified_articulations =
    Domain_pool.map
      ~cost:(qualify_cost (List.map Articulation.ontology articulations))
      (fun a -> (Ontology.qualify (Articulation.ontology a), Articulation.bridge_edges a))
      articulations
  in
  let graph =
    List.fold_left Digraph.union Digraph.empty qualified_sources
  in
  let graph =
    List.fold_left
      (fun g (qualified, bridges) ->
        let g = Digraph.union g qualified in
        List.fold_left Digraph.add_edge_e g bridges)
      graph qualified_articulations
  in
  {
    graph;
    sources;
    articulation_names =
      List.sort_uniq String.compare (List.map Articulation.name articulations);
  }

let source_names t =
  List.sort String.compare (List.map Ontology.name t.sources)

let source t name =
  List.find_opt (fun o -> String.equal (Ontology.name o) name) t.sources

let primary_articulation t =
  match List.rev t.articulation_names with [] -> None | n :: _ -> Some n
