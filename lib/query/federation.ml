type t = {
  graph : Digraph.t;
  sources : Ontology.t list;
  articulation_names : string list;
}

let of_unified (u : Algebra.unified) =
  {
    graph = u.Algebra.graph;
    sources = [ u.Algebra.left; u.Algebra.right ];
    articulation_names = [ Articulation.name u.Algebra.articulation ];
  }

let of_parts ~sources ~articulations =
  let source_names = List.map Ontology.name sources in
  List.iter
    (fun a ->
      if List.mem (Articulation.name a) source_names then
        invalid_arg
          (Printf.sprintf
             "Federation.of_parts: articulation %s shares a source's name"
             (Articulation.name a)))
    articulations;
  let graph =
    List.fold_left
      (fun g o -> Digraph.union g (Ontology.qualify o))
      Digraph.empty sources
  in
  let graph =
    List.fold_left
      (fun g a ->
        let g = Digraph.union g (Ontology.qualify (Articulation.ontology a)) in
        List.fold_left Digraph.add_edge_e g (Articulation.bridge_edges a))
      graph articulations
  in
  {
    graph;
    sources;
    articulation_names =
      List.sort_uniq String.compare (List.map Articulation.name articulations);
  }

let source_names t =
  List.sort String.compare (List.map Ontology.name t.sources)

let source t name =
  List.find_opt (fun o -> String.equal (Ontology.name o) name) t.sources

let primary_articulation t =
  match List.rev t.articulation_names with [] -> None | n :: _ -> Some n
