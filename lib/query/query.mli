(** Queries over a unified ontology (section 2.3).

    "A traditional query engine ... takes a query phrased in terms of an
    articulation ontology and derives an execution plan against the
    sources involved."  The concrete language is a small conjunctive
    select-from-where over one concept, with aggregates, ordering and
    limits:

    {v
    SELECT Price, Owner FROM transport:Vehicle WHERE Price < 5000
    SELECT * FROM transport:CarsTrucks ORDER BY Price DESC LIMIT 3
    SELECT COUNT( * ), AVG(Price) FROM Vehicle WHERE Price < 5000
    v}

    Keywords are case-insensitive; attribute names and terms are
    case-sensitive.  Values: numbers, single-quoted strings, [true] /
    [false].  A query selects either plain attributes or aggregates, not
    both (there is no GROUP BY). *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type predicate = {
  attr : string;  (** Attribute name, in articulation vocabulary. *)
  op : comparison;
  value : Conversion.value;
}

type aggregate =
  | Count  (** ["COUNT(*)"] — matching instances. *)
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string
      (** Numeric aggregates over an articulation attribute; instances
          lacking the attribute are skipped. *)

type direction = Asc | Desc

type t = {
  concept : Term.t;
      (** Usually an articulation-ontology term; a source-qualified term
          targets that single source. *)
  select : string list;  (** Empty means [*] (all attributes present). *)
  aggregates : aggregate list;
      (** Non-empty makes this an aggregate query; [select] is then
          empty. *)
  where : predicate list;  (** Conjunctive. *)
  order_by : (string * direction) option;
  limit : int option;
}

val v :
  ?select:string list ->
  ?aggregates:aggregate list ->
  ?where:predicate list ->
  ?order_by:string * direction ->
  ?limit:int ->
  Term.t ->
  t
(** @raise Invalid_argument when both [select] and [aggregates] are
    non-empty, or [limit] is negative. *)

val compare_values : Conversion.value -> Conversion.value -> int option
(** Total order within one value kind; [None] across kinds. *)

val holds : predicate -> Conversion.value -> bool
(** Numeric comparisons on [Num]; [Eq]/[Neq] on anything; ordering on
    strings is lexicographic; [false] on type mismatches. *)

val aggregate_attr : aggregate -> string option
(** The attribute an aggregate reads; [None] for [Count]. *)

val aggregate_label : aggregate -> string
(** ["COUNT(*)"], ["AVG(Price)"], ... *)

val parse : ?default_ontology:string -> string -> (t, string) result
(** Parse the textual form.  [default_ontology] qualifies a bare concept
    name (default ["transport"]). *)

val parse_exn : ?default_ontology:string -> string -> t

val to_string : t -> string
(** Round-trips through {!parse}. *)

val pp : Format.formatter -> t -> unit
