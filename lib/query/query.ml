type comparison = Eq | Neq | Lt | Le | Gt | Ge

type predicate = { attr : string; op : comparison; value : Conversion.value }

type aggregate = Count | Sum of string | Avg of string | Min of string | Max of string

type direction = Asc | Desc

type t = {
  concept : Term.t;
  select : string list;
  aggregates : aggregate list;
  where : predicate list;
  order_by : (string * direction) option;
  limit : int option;
}

let v ?(select = []) ?(aggregates = []) ?(where = []) ?order_by ?limit concept =
  if select <> [] && aggregates <> [] then
    invalid_arg "Query.v: select attributes and aggregates are exclusive";
  (match limit with
  | Some n when n < 0 -> invalid_arg "Query.v: negative limit"
  | _ -> ());
  { concept; select; aggregates; where; order_by; limit }

let compare_values v1 v2 =
  match ((v1 : Conversion.value), (v2 : Conversion.value)) with
  | Conversion.Num a, Conversion.Num b -> Some (Float.compare a b)
  | Conversion.Str a, Conversion.Str b -> Some (String.compare a b)
  | Conversion.Bool a, Conversion.Bool b -> Some (Bool.compare a b)
  | _ -> None

(* Ordering predicates only; Eq/Neq are handled structurally in [holds]
   (they also apply to values that do not order, e.g. booleans vs nums). *)
let ordered_holds op c =
  match op with
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
  | Eq -> c = 0
  | Neq -> c <> 0

let holds p actual =
  match p.op with
  | Eq -> Conversion.equal_value actual p.value
  | Neq -> not (Conversion.equal_value actual p.value)
  | (Lt | Le | Gt | Ge) as op -> (
      match compare_values actual p.value with
      | None -> false
      | Some c -> ordered_holds op c)

let aggregate_attr = function
  | Count -> None
  | Sum a | Avg a | Min a | Max a -> Some a

let aggregate_label = function
  | Count -> "COUNT(*)"
  | Sum a -> Printf.sprintf "SUM(%s)" a
  | Avg a -> Printf.sprintf "AVG(%s)" a
  | Min a -> Printf.sprintf "MIN(%s)" a
  | Max a -> Printf.sprintf "MAX(%s)" a

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type token =
  | Kselect
  | Kfrom
  | Kwhere
  | Kand
  | Korder
  | Kby
  | Klimit
  | Kasc
  | Kdesc
  | Tident of string
  | Tnum of float
  | Tstr of string
  | Tbool of bool
  | Tstar
  | Tcomma
  | Tcolon
  | Tlpar
  | Trpar
  | Top of comparison

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let err m = raise (Invalid_argument m) in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '*' then begin
      toks := Tstar :: !toks;
      incr i
    end
    else if c = ',' then begin
      toks := Tcomma :: !toks;
      incr i
    end
    else if c = ':' then begin
      toks := Tcolon :: !toks;
      incr i
    end
    else if c = '(' then begin
      toks := Tlpar :: !toks;
      incr i
    end
    else if c = ')' then begin
      toks := Trpar :: !toks;
      incr i
    end
    else if c = '\'' then begin
      match String.index_from_opt src (!i + 1) '\'' with
      | None -> err "unterminated string literal"
      | Some close ->
          toks := Tstr (String.sub src (!i + 1) (close - !i - 1)) :: !toks;
          i := close + 1
    end
    else if c = '<' || c = '>' || c = '=' || c = '!' then begin
      let two = if !i + 1 < n then String.sub src !i 2 else String.make 1 c in
      match two with
      | "<=" ->
          toks := Top Le :: !toks;
          i := !i + 2
      | ">=" ->
          toks := Top Ge :: !toks;
          i := !i + 2
      | "!=" | "<>" ->
          toks := Top Neq :: !toks;
          i := !i + 2
      | "==" ->
          toks := Top Eq :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '<' ->
              toks := Top Lt :: !toks;
              incr i
          | '>' ->
              toks := Top Gt :: !toks;
              incr i
          | '=' ->
              toks := Top Eq :: !toks;
              incr i
          | _ -> err "lone '!'")
    end
    else if (c >= '0' && c <= '9') || c = '-' then begin
      let start = !i in
      incr i;
      while
        !i < n
        && ((src.[!i] >= '0' && src.[!i] <= '9')
           || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E' || src.[!i] = '-'
           || src.[!i] = '+')
      do
        incr i
      done;
      match float_of_string_opt (String.sub src start (!i - start)) with
      | Some f -> toks := Tnum f :: !toks
      | None -> err "malformed number"
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      let tok =
        match String.lowercase_ascii word with
        | "select" -> Kselect
        | "from" -> Kfrom
        | "where" -> Kwhere
        | "and" -> Kand
        | "order" -> Korder
        | "by" -> Kby
        | "limit" -> Klimit
        | "asc" -> Kasc
        | "desc" -> Kdesc
        | "true" -> Tbool true
        | "false" -> Tbool false
        | _ -> Tident word
      in
      toks := tok :: !toks
    end
    else err (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !toks

let parse ?(default_ontology = "transport") src =
  try
    let toks = ref (tokenize src) in
    let next () =
      match !toks with
      | [] -> raise (Invalid_argument "unexpected end of query")
      | t :: rest ->
          toks := rest;
          t
    in
    let peek () = match !toks with t :: _ -> Some t | [] -> None in
    (match next () with
    | Kselect -> ()
    | _ -> raise (Invalid_argument "query must start with SELECT"));
    (* SELECT items: '*', attrs, or aggregates. *)
    let select = ref [] and aggregates = ref [] in
    let parse_item () =
      match next () with
      | Tstar -> ()
      | Tident name -> (
          match peek () with
          | Some Tlpar ->
              ignore (next ());
              let arg =
                match next () with
                | Tstar -> None
                | Tident a -> Some a
                | _ -> raise (Invalid_argument "expected attribute or * in aggregate")
              in
              (match next () with
              | Trpar -> ()
              | _ -> raise (Invalid_argument "expected ')'"));
              let agg =
                match (String.lowercase_ascii name, arg) with
                | "count", _ -> Count
                | "sum", Some a -> Sum a
                | "avg", Some a -> Avg a
                | "min", Some a -> Min a
                | "max", Some a -> Max a
                | _, None -> raise (Invalid_argument "only COUNT accepts *")
                | other, _ ->
                    raise (Invalid_argument ("unknown aggregate " ^ other))
              in
              aggregates := !aggregates @ [ agg ]
          | _ -> select := !select @ [ name ])
      | _ -> raise (Invalid_argument "expected attribute, aggregate or * in SELECT")
    in
    parse_item ();
    let rec more () =
      match peek () with
      | Some Tcomma ->
          ignore (next ());
          parse_item ();
          more ()
      | _ -> ()
    in
    more ();
    if !select <> [] && !aggregates <> [] then
      raise (Invalid_argument "attributes and aggregates cannot be mixed");
    (match next () with
    | Kfrom -> ()
    | _ -> raise (Invalid_argument "expected FROM"));
    let concept =
      match next () with
      | Tident a -> (
          match (peek (), !toks) with
          | Some Tcolon, _ :: Tident b :: rest ->
              toks := rest;
              Term.make ~ontology:a b
          | _ -> Term.make ~ontology:default_ontology a)
      | _ -> raise (Invalid_argument "expected a concept after FROM")
    in
    let where =
      match peek () with
      | Some Kwhere ->
          ignore (next ());
          let rec preds acc =
            let attr =
              match next () with
              | Tident a -> a
              | _ -> raise (Invalid_argument "expected attribute in WHERE")
            in
            let op =
              match next () with
              | Top op -> op
              | _ -> raise (Invalid_argument "expected comparison operator")
            in
            let value =
              match next () with
              | Tnum f -> Conversion.Num f
              | Tstr s -> Conversion.Str s
              | Tbool b -> Conversion.Bool b
              | Tident s -> Conversion.Str s
              | _ -> raise (Invalid_argument "expected a literal value")
            in
            let acc = { attr; op; value } :: acc in
            match peek () with
            | Some Kand ->
                ignore (next ());
                preds acc
            | _ -> List.rev acc
          in
          preds []
      | _ -> []
    in
    let order_by =
      match peek () with
      | Some Korder ->
          ignore (next ());
          (match next () with
          | Kby -> ()
          | _ -> raise (Invalid_argument "expected BY after ORDER"));
          let attr =
            match next () with
            | Tident a -> a
            | _ -> raise (Invalid_argument "expected attribute after ORDER BY")
          in
          let dir =
            match peek () with
            | Some Kdesc ->
                ignore (next ());
                Desc
            | Some Kasc ->
                ignore (next ());
                Asc
            | _ -> Asc
          in
          Some (attr, dir)
      | _ -> None
    in
    let limit =
      match peek () with
      | Some Klimit -> (
          ignore (next ());
          match next () with
          | Tnum f when Float.is_integer f && f >= 0.0 -> Some (int_of_float f)
          | _ -> raise (Invalid_argument "expected a non-negative integer after LIMIT"))
      | _ -> None
    in
    (match peek () with
    | None -> ()
    | Some _ -> raise (Invalid_argument "trailing tokens after query"));
    Ok { concept; select = !select; aggregates = !aggregates; where; order_by; limit }
  with Invalid_argument m -> Error m

let parse_exn ?default_ontology src =
  match parse ?default_ontology src with
  | Ok q -> q
  | Error m -> invalid_arg ("Query.parse_exn: " ^ m)

let string_of_op = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_value = function
  | Conversion.Num f -> Format.asprintf "%g" f
  | Conversion.Str s -> "'" ^ s ^ "'"
  | Conversion.Bool b -> string_of_bool b

let to_string q =
  let items =
    (* [v] rejects mixing select attributes and aggregates, but records can
       be built by hand, so render the mixed case instead of crashing. *)
    match (q.select, q.aggregates) with
    | [], [] -> "*"
    | attrs, aggs -> String.concat ", " (attrs @ List.map aggregate_label aggs)
  in
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "SELECT %s FROM %s" items (Term.qualified q.concept));
  (match q.where with
  | [] -> ()
  | preds ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf
        (String.concat " AND "
           (List.map
              (fun p ->
                Printf.sprintf "%s %s %s" p.attr (string_of_op p.op)
                  (string_of_value p.value))
              preds)));
  (match q.order_by with
  | Some (attr, Asc) -> Buffer.add_string buf (Printf.sprintf " ORDER BY %s ASC" attr)
  | Some (attr, Desc) -> Buffer.add_string buf (Printf.sprintf " ORDER BY %s DESC" attr)
  | None -> ());
  (match q.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  Buffer.contents buf

let pp ppf q = Format.pp_print_string ppf (to_string q)
