(** In-memory knowledge bases — the instance stores behind the wrappers of
    Fig. 1 (KB1, KB2, KB3).

    Each knowledge base commits to one source ontology: its instances
    belong to that ontology's concepts and their attribute values are in
    that ontology's local conventions (e.g. carrier prices in guilders).
    The query system converts values when crossing into the articulation
    space. *)

type instance = {
  id : string;
  concept : string;  (** Term of the backing ontology. *)
  attrs : (string * Conversion.value) list;  (** Sorted by attribute name. *)
}

type t

val create : ontology:Ontology.t -> string -> t
(** [create ~ontology name] is an empty knowledge base named [name] over
    the given ontology. *)

val name : t -> string

val ontology : t -> Ontology.t

val add :
  t -> concept:string -> id:string -> (string * Conversion.value) list -> t
(** Insert (or replace) an instance.
    @raise Invalid_argument if the concept is not a term of the backing
    ontology. *)

val remove : t -> id:string -> t

val get : t -> id:string -> instance option

val attr_value : instance -> string -> Conversion.value option

val size : t -> int

val instances : t -> instance list
(** All instances, ordered by id. *)

val instances_of : ?transitive:bool -> t -> concept:string -> instance list
(** Instances of the concept; with [transitive] (default [true]) also of
    its transitive subclasses. *)

val concepts : t -> string list
(** Concepts with at least one instance, sorted. *)

val of_ontology_instances : ontology:Ontology.t -> string -> t
(** Bootstrap a knowledge base from the [InstanceOf] edges already present
    in an ontology graph (each instance term becomes an instance; custom
    verb edges to leaf nodes become attribute values, numeric when they
    parse as such). *)
