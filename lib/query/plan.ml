type attr_binding = {
  art_attr : string;
  source_attr : string;
  to_articulation : string option;
  from_articulation : string option;
}

type source_plan = {
  source : string;
  concepts : string list;
  attrs : attr_binding list;
  pushable : Query.predicate list;
  residual : Query.predicate list;
}

type t = { query : Query.t; sources : source_plan list }

let involved_sources plan = List.map (fun s -> s.source) plan.sources

let explain plan =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "query: %s\n" (Query.to_string plan.query));
  List.iter
    (fun sp ->
      Buffer.add_string buf (Printf.sprintf "source %s:\n" sp.source);
      Buffer.add_string buf
        (Printf.sprintf "  scan: %s\n" (String.concat ", " sp.concepts));
      List.iter
        (fun b ->
          let conv =
            match b.to_articulation with
            | Some fn -> Printf.sprintf " via %s()" fn
            | None -> ""
          in
          let back =
            match b.from_articulation with
            | Some fn -> Printf.sprintf " (inverse %s())" fn
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "  attr %s <- %s%s%s\n" b.art_attr b.source_attr conv
               back))
        sp.attrs;
      let fmt_pred (p : Query.predicate) =
        Printf.sprintf "%s %s %s" p.attr
          (match p.op with
          | Query.Eq -> "="
          | Query.Neq -> "!="
          | Query.Lt -> "<"
          | Query.Le -> "<="
          | Query.Gt -> ">"
          | Query.Ge -> ">=")
          (match p.value with
          | Conversion.Num f -> Format.asprintf "%g" f
          | Conversion.Str s -> "'" ^ s ^ "'"
          | Conversion.Bool b -> string_of_bool b)
      in
      if sp.pushable <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  pushable: %s\n"
             (String.concat " AND " (List.map fmt_pred sp.pushable)));
      if sp.residual <> [] then
        Buffer.add_string buf
          (Printf.sprintf "  residual: %s\n"
             (String.concat " AND " (List.map fmt_pred sp.residual))))
    plan.sources;
  Buffer.contents buf

let pp ppf plan = Format.pp_print_string ppf (explain plan)
