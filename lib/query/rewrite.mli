(** Query reformulation across semantic bridges (sections 2.3 and 4.1):
    "the query processor will utilize these normalization functions to
    transform terms to and from the articulation ontology in order to
    answer queries involving the prices of vehicles."

    Reformulation runs against a {!Federation.t} query space — two sources
    under one articulation, or any tower of compositions.  Per source it
    finds:

    - the {e concepts} whose instances answer the query: source terms with
      a semantic path ([SIBridge] / [SI] / [SubclassOf] edges) into the
      query concept;
    - the {e attribute bindings}: identical names, [SIBridge]-linked
      attribute terms, or conversion-function edges (which carry the
      converter to apply);
    - the predicate split: a predicate is pushable when its attribute's
      binding is invertible (identity or has a registered inverse). *)

val semantic_follow : Traversal.label_filter
(** [SIBridge], [SI], [SubclassOf]. *)

val source_concepts : Federation.t -> source:string -> Term.t -> string list
(** Concepts of the named source answering a query on the given term,
    sorted.  For a term qualified with the source's own name, the term
    itself (when present). *)

val attr_binding :
  Federation.t ->
  conversions:Conversion.t ->
  source:string ->
  string ->
  Plan.attr_binding option
(** How the named articulation attribute is obtained from the source;
    [None] when no binding exists (the source cannot supply it).
    Articulation attribute nodes are searched in every articulation of
    the space, in sorted name order. *)

val plan :
  Federation.t -> conversions:Conversion.t -> Query.t -> (Plan.t, string) result
(** Full reformulation.  Bindings cover the selected attributes plus
    everything the query evaluates (WHERE, aggregates, ORDER BY).
    [Error] when no source can answer the concept at all. *)

val plan_unified :
  Algebra.unified -> conversions:Conversion.t -> Query.t -> (Plan.t, string) result
(** Two-source convenience wrapper over {!plan}. *)
