type outcome = {
  instance : Kb.instance;
  target_concept_path : string list;
  untranslated : string list;
}

let strip_prefix source qualified =
  let p = source ^ ":" in
  let lp = String.length p in
  if String.length qualified > lp && String.equal (String.sub qualified 0 lp) p
  then Some (String.sub qualified lp (String.length qualified - lp))
  else None

let concept_target (space : Federation.t) ~from ~to_ c =
  let g = space.Federation.graph in
  let start = from ^ ":" ^ c in
  if not (Digraph.mem_node g start) then None
  else begin
    let reachable =
      (* The zero-length path is sound: translating into the concept's own
         ontology may keep the concept. *)
      start :: Traversal.reachable ~follow:Rewrite.semantic_follow g start
    in
    let candidates =
      List.filter_map (strip_prefix to_) reachable
      |> List.sort_uniq String.compare
    in
    match candidates with
    | [] -> None
    | _ ->
        (* Most specific: drop any candidate that another candidate
           specializes (a semantic path from the other into it). *)
        let specializes a b =
          (not (String.equal a b))
          && Traversal.path_exists ~follow:Rewrite.semantic_follow g
               (to_ ^ ":" ^ a) (to_ ^ ":" ^ b)
        in
        let minimal =
          List.filter
            (fun t -> not (List.exists (fun t' -> specializes t' t) candidates))
            candidates
        in
        (match minimal with [] -> List.nth_opt candidates 0 | m :: _ -> Some m)
  end

(* The articulation attribute a source attribute lifts into: a conversion or
   SIBridge edge out of the qualified attribute node, or the attribute's own
   name when no edge renames it. *)
let articulation_view (space : Federation.t) ~source attr =
  let g = space.Federation.graph in
  let qualified = source ^ ":" ^ attr in
  let renamed =
    if not (Digraph.mem_node g qualified) then None
    else
      Digraph.out_edges g qualified
      |> List.find_map (fun (e : Digraph.edge) ->
             let target_art =
               List.find_map
                 (fun art_name -> strip_prefix art_name e.dst)
                 space.Federation.articulation_names
             in
             match target_art with
             | Some art_attr when Rel.is_conversion_label e.label ->
                 Some (art_attr, Rel.conversion_name e.label)
             | Some art_attr when String.equal e.label Rel.si_bridge ->
                 Some (art_attr, None)
             | _ -> None)
  in
  match renamed with
  | Some (art_attr, lift) -> (art_attr, lift)
  | None -> (attr, None)

let attr_route (space : Federation.t) ~conversions ~from ~to_ attr =
  let art_attr, lift = articulation_view space ~source:from attr in
  match Rewrite.attr_binding space ~conversions ~source:to_ art_attr with
  | None -> None
  | Some binding ->
      let lower =
        (* The target stores values the articulation lifts through
           [to_articulation]; lowering therefore uses its declared
           inverse. *)
        match binding.Plan.to_articulation with
        | None -> None
        | Some fn_t -> (
            match binding.Plan.from_articulation with
            | Some inv -> Some inv
            | None -> Conversion.inverse_name conversions fn_t)
      in
      (* Refuse the route if the target needs a lowering step we cannot
         perform. *)
      if binding.Plan.to_articulation <> None && lower = None then None
      else begin
        let convert v =
          let ( let* ) = Result.bind in
          let* lifted =
            match lift with
            | None -> Ok v
            | Some fn -> Conversion.apply conversions fn v
          in
          match lower with
          | None -> Ok lifted
          | Some fn -> Conversion.apply conversions fn lifted
        in
        Some (binding.Plan.source_attr, convert)
      end

let translate (space : Federation.t) ~conversions ~from ~to_
    (inst : Kb.instance) =
  match concept_target space ~from ~to_ inst.Kb.concept with
  | None ->
      Error
        (Printf.sprintf "no semantic path from %s:%s into %s" from
           inst.Kb.concept to_)
  | Some target_concept ->
      let path =
        match
          Traversal.shortest_path ~follow:Rewrite.semantic_follow
            space.Federation.graph
            (from ^ ":" ^ inst.Kb.concept)
            (to_ ^ ":" ^ target_concept)
        with
        | Some edges ->
            (from ^ ":" ^ inst.Kb.concept)
            :: List.map (fun (e : Digraph.edge) -> e.dst) edges
        | None -> [ from ^ ":" ^ inst.Kb.concept; to_ ^ ":" ^ target_concept ]
      in
      let translated, untranslated =
        List.fold_left
          (fun (ok, failed) (a, v) ->
            match attr_route space ~conversions ~from ~to_ a with
            | None -> (ok, a :: failed)
            | Some (target_attr, convert) -> (
                match convert v with
                | Ok v' -> ((target_attr, v') :: ok, failed)
                | Error _ -> (ok, a :: failed)))
          ([], []) inst.Kb.attrs
      in
      Ok
        {
          instance =
            {
              Kb.id = inst.Kb.id;
              concept = target_concept;
              attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) translated;
            };
          target_concept_path = path;
          untranslated = List.sort String.compare untranslated;
        }
