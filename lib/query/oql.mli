(** ODMG mediator generation.

    The paper promises that the framework "will derive ODMG-compliant
    mediators automatically" (section 1).  This module derives, from a
    reformulated {!Plan}, the textual mediator: one OQL query per source
    (phrased in that source's own vocabulary, with pushable predicates
    rewritten through the inverse conversion functions) plus the merge
    program that lifts results into articulation space.

    The emitted OQL targets the ODMG 2.0 surface: [select .. from .. in
    <extent> where ..]; extents are the source concepts, unioned. *)

type mediator = {
  per_source : (string * string) list;
      (** (source ontology, OQL text), sorted by source. *)
  merge_program : string;
      (** Human-readable post-processing description: conversions applied
          per attribute and residual predicates evaluated after merge. *)
}

val of_plan : conversions:Conversion.t -> Plan.t -> mediator
(** Pushable predicate constants are rewritten into source space through
    the binding's [from_articulation] function; predicates that cannot be
    pushed (or whose constant the converter rejects) are listed in the
    merge program instead. *)

val to_string : mediator -> string
(** The full mediator listing, stable across runs. *)
