(** Graph matching as defined in section 3 of the paper.

    Graph [G1 = (N1, E1)] {e matches into} [G2 = (N2, E2)] if there is a
    total mapping [f : N1 -> N2] such that

    + every node keeps its label: [lambda1 n = lambda2 (f n)], and
    + every edge is preserved: [(n1, alpha, n2) in E1] implies
      [(f n1, alpha, f n2) in E2].

    Because {!Digraph} identifies nodes with their labels, the exact-match
    mapping is forced to be the identity; the machinery below is therefore
    parameterised by node and edge-label compatibility predicates so the
    domain expert's {e fuzzy} relaxations (synonym sets, label-insensitive
    edges — section 3, "Graph Patterns") use the same matcher. *)

type compat = {
  node_ok : Digraph.node -> Digraph.node -> bool;
      (** May a pattern node be mapped onto this target node? *)
  edge_ok : string -> string -> bool;
      (** May a pattern edge label be matched by this target edge label? *)
}

val exact : compat
(** Strict matching: identical node labels, identical edge labels. *)

type mapping = (Digraph.node * Digraph.node) list
(** A total mapping from the nodes of the matched graph to nodes of the
    target, as sorted association pairs. *)

val matches_into : ?compat:compat -> Digraph.t -> Digraph.t -> bool
(** [matches_into g1 g2]: does [g1] match into [g2]?  With {!exact}
    compatibility this is the paper's definition verbatim. *)

val find_mapping : ?compat:compat -> Digraph.t -> Digraph.t -> mapping option
(** The first (lexicographically smallest) witness mapping, if any. *)

val find_all_mappings :
  ?compat:compat -> ?limit:int -> Digraph.t -> Digraph.t -> mapping list
(** All witness mappings (up to [limit], default 1000), deterministic
    order.  Distinct pattern nodes may map onto the same target node, as
    the paper's total-mapping definition permits. *)
