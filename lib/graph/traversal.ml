module Sset = Set.Make (String)

type label_filter = string -> bool

let any_label = fun _ -> true

let only labels =
  let set = List.fold_left (fun s l -> Sset.add l s) Sset.empty labels in
  fun l -> Sset.mem l set

(* Successors of [n] through followed edges, sorted and distinct. *)
let followed_succ follow g n =
  List.fold_left
    (fun acc (e : Digraph.edge) ->
      if follow e.label then Sset.add e.dst acc else acc)
    Sset.empty (Digraph.out_edges g n)
  |> Sset.elements

let followed_pred follow g n =
  List.fold_left
    (fun acc (e : Digraph.edge) ->
      if follow e.label then Sset.add e.src acc else acc)
    Sset.empty (Digraph.in_edges g n)
  |> Sset.elements

let bfs ?(follow = any_label) g source =
  if not (Digraph.mem_node g source) then []
  else
    let rec loop visited order = function
      | [] -> List.rev order
      | n :: queue ->
          let fresh =
            List.filter (fun m -> not (Sset.mem m visited)) (followed_succ follow g n)
          in
          let visited = List.fold_left (fun s m -> Sset.add m s) visited fresh in
          loop visited (List.rev_append fresh order) (queue @ fresh)
    in
    loop (Sset.singleton source) [ source ] [ source ]

let dfs_preorder ?(follow = any_label) g source =
  if not (Digraph.mem_node g source) then []
  else
    let rec visit (visited, order) n =
      if Sset.mem n visited then (visited, order)
      else
        let visited = Sset.add n visited in
        let order = n :: order in
        List.fold_left visit (visited, order) (followed_succ follow g n)
    in
    let _, order = visit (Sset.empty, []) source in
    List.rev order

let dfs_postorder ?(follow = any_label) g source =
  if not (Digraph.mem_node g source) then []
  else
    let rec visit (visited, order) n =
      if Sset.mem n visited then (visited, order)
      else
        let visited = Sset.add n visited in
        let visited, order =
          List.fold_left visit (visited, order) (followed_succ follow g n)
        in
        (visited, n :: order)
    in
    let _, order = visit (Sset.empty, []) source in
    List.rev order

(* Set of nodes reachable through a non-empty path from any node in
   [sources], as a string set. *)
let reachable_from neighbours follow g sources =
  let rec loop visited = function
    | [] -> visited
    | n :: stack ->
        let fresh =
          List.filter (fun m -> not (Sset.mem m visited)) (neighbours follow g n)
        in
        let visited = List.fold_left (fun s m -> Sset.add m s) visited fresh in
        loop visited (List.rev_append fresh stack)
  in
  let frontier =
    List.concat_map (fun n -> neighbours follow g n) sources
    |> List.fold_left (fun s m -> Sset.add m s) Sset.empty
  in
  loop frontier (Sset.elements frontier)

let reachable ?(follow = any_label) g source =
  Sset.elements (reachable_from followed_succ follow g [ source ])

let reachable_set ?(follow = any_label) g sources =
  Sset.elements (reachable_from followed_succ follow g sources)

let co_reachable ?(follow = any_label) g target =
  Sset.elements (reachable_from followed_pred follow g [ target ])

let path_exists ?(follow = any_label) g a b =
  Sset.mem b (reachable_from followed_succ follow g [ a ])

let shortest_path ?(follow = any_label) g source target =
  if not (Digraph.mem_node g source && Digraph.mem_node g target) then None
  else if String.equal source target then Some []
  else
    (* BFS recording the discovering edge of each node. *)
    let rec loop visited parent = function
      | [] -> None
      | n :: queue ->
          let followed =
            List.filter (fun (e : Digraph.edge) -> follow e.label) (Digraph.out_edges g n)
          in
          let step (visited, parent, queue, found) (e : Digraph.edge) =
            if found <> None || Sset.mem e.dst visited then (visited, parent, queue, found)
            else
              let visited = Sset.add e.dst visited in
              let parent = (e.dst, e) :: parent in
              if String.equal e.dst target then (visited, parent, queue, Some parent)
              else (visited, parent, queue @ [ e.dst ], found)
          in
          let visited, parent, queue, found =
            List.fold_left step (visited, parent, queue, None) followed
          in
          (match found with
          | Some parent ->
              let rec rebuild acc n =
                if String.equal n source then Some acc
                else
                  match List.assoc_opt n parent with
                  | None -> None
                  | Some e -> rebuild (e :: acc) e.Digraph.src
              in
              rebuild [] target
          | None -> loop visited parent queue)
    in
    loop (Sset.singleton source) [] [ source ]

let transitive_closure ?(follow = any_label) ~close_label g =
  Digraph.fold_nodes
    (fun n acc ->
      let targets = reachable_from followed_succ follow g [ n ] in
      Sset.fold
        (fun m acc ->
          if String.equal n m then acc else Digraph.add_edge acc n close_label m)
        targets acc)
    g g

let transitive_reduction_edges ~label g =
  let follow = only [ label ] in
  let redundant (e : Digraph.edge) =
    (* Is there a path src ->* dst avoiding the direct edge e? *)
    let without = Digraph.remove_edge_e g e in
    path_exists ~follow without e.src e.dst
  in
  Digraph.fold_edges
    (fun e acc -> if String.equal e.label label && redundant e then e :: acc else acc)
    g []
  |> List.rev

let topological_sort ?(follow = any_label) g =
  (* Kahn's algorithm with a sorted worklist for determinism. *)
  let in_deg =
    (* Distinct predecessors: parallel edges must count once, because a
       processed node decrements each successor exactly once. *)
    Digraph.fold_nodes
      (fun n acc -> (n, List.length (followed_pred follow g n)) :: acc)
      g []
  in
  let module Smap = Map.Make (String) in
  let deg = List.fold_left (fun m (n, d) -> Smap.add n d m) Smap.empty in_deg in
  let ready =
    Smap.fold (fun n d acc -> if d = 0 then Sset.add n acc else acc) deg Sset.empty
  in
  let rec loop deg ready order count =
    match Sset.min_elt_opt ready with
    | None ->
        if count = Digraph.nb_nodes g then Some (List.rev order) else None
    | Some n ->
        let ready = Sset.remove n ready in
        let deg, ready =
          List.fold_left
            (fun (deg, ready) m ->
              let d = Smap.find m deg - 1 in
              let deg = Smap.add m d deg in
              if d = 0 then (deg, Sset.add m ready) else (deg, ready))
            (deg, ready)
            (followed_succ follow g n)
        in
        loop deg ready (n :: order) (count + 1)
  in
  loop deg ready [] 0

let strongly_connected_components ?(follow = any_label) g =
  (* Iterative Tarjan. *)
  let module Smap = Map.Make (String) in
  let index = ref 0 in
  let indices = ref Smap.empty in
  let lowlinks = ref Smap.empty in
  let on_stack = ref Sset.empty in
  let stack = ref [] in
  let sccs = ref [] in
  let rec strongconnect v =
    indices := Smap.add v !index !indices;
    lowlinks := Smap.add v !index !lowlinks;
    incr index;
    stack := v :: !stack;
    on_stack := Sset.add v !on_stack;
    List.iter
      (fun w ->
        if not (Smap.mem w !indices) then begin
          strongconnect w;
          lowlinks :=
            Smap.add v
              (min (Smap.find v !lowlinks) (Smap.find w !lowlinks))
              !lowlinks
        end
        else if Sset.mem w !on_stack then
          lowlinks :=
            Smap.add v (min (Smap.find v !lowlinks) (Smap.find w !indices)) !lowlinks)
      (followed_succ follow g v);
    if Smap.find v !lowlinks = Smap.find v !indices then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack := Sset.remove w !on_stack;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  List.iter (fun v -> if not (Smap.mem v !indices) then strongconnect v) (Digraph.nodes g);
  !sccs
  |> List.map (List.sort String.compare)
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> String.compare x y
         | [], _ -> -1
         | _, [] -> 1)

let has_cycle ?(follow = any_label) g =
  (* A cycle exists iff some SCC has >1 node or a node has a followed
     self-loop. *)
  let self_loop n =
    List.exists
      (fun (e : Digraph.edge) -> follow e.label && String.equal e.dst n)
      (Digraph.out_edges g n)
  in
  List.exists (fun c -> List.length c > 1) (strongly_connected_components ~follow g)
  || List.exists self_loop (Digraph.nodes g)

let weakly_connected_components g =
  let neighbours _follow g n =
    List.sort_uniq String.compare (Digraph.succ g n @ Digraph.pred g n)
  in
  let rec collect seen acc = function
    | [] -> List.rev acc
    | n :: rest ->
        if Sset.mem n seen then collect seen acc rest
        else
          let comp = Sset.add n (reachable_from neighbours any_label g [ n ]) in
          (* Restrict to genuinely connected nodes: reachable_from through
             symmetric neighbours already yields the whole component. *)
          let seen = Sset.union seen comp in
          collect seen (Sset.elements comp :: acc) rest
  in
  collect Sset.empty [] (Digraph.nodes g)
