(** Graphviz DOT export.

    The ONION viewer is a GUI in the paper; this reproduction renders
    ontology graphs, articulations and unified ontologies to DOT so that any
    Graphviz installation can display them.  Clusters let a unified ontology
    show each source ontology and the articulation ontology as separate
    boxes, mirroring Fig. 2 of the paper. *)

type style = {
  rankdir : string;  (** e.g. ["TB"] or ["LR"]. *)
  edge_color : string -> string option;
      (** Optional color per edge label (e.g. highlight ["SIBridge"]). *)
  node_shape : Digraph.node -> string option;
      (** Optional shape per node. *)
}

val default_style : style

val escape : string -> string
(** Escape a string for use as a quoted DOT identifier. *)

val to_dot : ?name:string -> ?style:style -> Digraph.t -> string
(** Render one graph as a [digraph]. *)

type cluster = { cluster_name : string; graph : Digraph.t }

val clusters_to_dot :
  ?name:string ->
  ?style:style ->
  clusters:cluster list ->
  bridge_edges:Digraph.edge list ->
  unit ->
  string
(** Render several graphs as subgraph clusters plus the inter-cluster
    bridge edges — the shape of the paper's articulation figure. *)
