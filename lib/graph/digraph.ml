(* Immutable directed labeled multigraph.

   Representation: two adjacency maps (forward and reverse) from node to the
   set of (edge-label, other-endpoint) pairs, plus the node set.  The reverse
   map is maintained eagerly so that [pred] and [in_edges] are as cheap as
   their forward counterparts; the articulation generator and the algebra
   difference walk edges in both directions. *)

type node = string

type edge = { src : node; label : string; dst : node }

module Sset = Set.Make (String)
module Smap = Map.Make (String)

(* (label, endpoint) pairs attached to a node, ordered by label then node. *)
module Lnset = Set.Make (struct
  type t = string * string

  let compare (l1, n1) (l2, n2) =
    match String.compare l1 l2 with 0 -> String.compare n1 n2 | c -> c
end)

type t = {
  node_set : Sset.t;
  fwd : Lnset.t Smap.t; (* src -> {(label, dst)} *)
  rev : Lnset.t Smap.t; (* dst -> {(label, src)} *)
  size : int; (* number of edges *)
  revision : int;
      (* Fresh Revision stamp on every structural change; equal revisions
         imply the very same value (no-op mutations return the input).
         Result caches key on this instead of hashing the structure. *)
}

let empty =
  { node_set = Sset.empty; fwd = Smap.empty; rev = Smap.empty; size = 0; revision = 0 }

let revision g = g.revision

let is_empty g = Sset.is_empty g.node_set

let check_label n =
  if String.length n = 0 then
    invalid_arg "Digraph: node labels must be non-empty strings"

let add_node g n =
  check_label n;
  if Sset.mem n g.node_set then g
  else { g with node_set = Sset.add n g.node_set; revision = Revision.fresh () }

let adj map n = match Smap.find_opt n map with Some s -> s | None -> Lnset.empty

let mem_node g n = Sset.mem n g.node_set

let mem_edge g src label dst = Lnset.mem (label, dst) (adj g.fwd src)

let add_edge g src label dst =
  check_label src;
  check_label dst;
  if mem_edge g src label dst then g
  else
    let node_set = Sset.add src (Sset.add dst g.node_set) in
    let fwd = Smap.add src (Lnset.add (label, dst) (adj g.fwd src)) g.fwd in
    let rev = Smap.add dst (Lnset.add (label, src) (adj g.rev dst)) g.rev in
    { node_set; fwd; rev; size = g.size + 1; revision = Revision.fresh () }

let add_edge_e g e = add_edge g e.src e.label e.dst

let remove_edge g src label dst =
  if not (mem_edge g src label dst) then g
  else
    let shrink map key item =
      let s = Lnset.remove item (adj map key) in
      if Lnset.is_empty s then Smap.remove key map else Smap.add key s map
    in
    {
      g with
      fwd = shrink g.fwd src (label, dst);
      rev = shrink g.rev dst (label, src);
      size = g.size - 1;
      revision = Revision.fresh ();
    }

let remove_edge_e g e = remove_edge g e.src e.label e.dst

let out_edges g n =
  Lnset.fold (fun (label, dst) acc -> { src = n; label; dst } :: acc) (adj g.fwd n) []
  |> List.rev

let in_edges g n =
  Lnset.fold (fun (label, src) acc -> { src; label; dst = n } :: acc) (adj g.rev n) []
  |> List.rev

let remove_node g n =
  if not (mem_node g n) then g
  else
    let g = List.fold_left remove_edge_e g (out_edges g n) in
    let g = List.fold_left remove_edge_e g (in_edges g n) in
    { g with node_set = Sset.remove n g.node_set; revision = Revision.fresh () }

let of_edges ?(nodes = []) es =
  let g = List.fold_left add_edge_e empty es in
  List.fold_left add_node g nodes

let nb_nodes g = Sset.cardinal g.node_set

let nb_edges g = g.size

let nodes g = Sset.elements g.node_set

let fold_edges f g acc =
  Smap.fold
    (fun src lns acc ->
      Lnset.fold (fun (label, dst) acc -> f { src; label; dst } acc) lns acc)
    g.fwd acc

let edges g = List.rev (fold_edges (fun e acc -> e :: acc) g [])

let fold_nodes f g acc = Sset.fold f g.node_set acc

let iter_nodes f g = Sset.iter f g.node_set

let iter_edges f g = fold_edges (fun e () -> f e) g ()

let distinct_endpoints lns =
  Lnset.fold (fun (_, n) acc -> Sset.add n acc) lns Sset.empty |> Sset.elements

let succ g n = distinct_endpoints (adj g.fwd n)

let pred g n = distinct_endpoints (adj g.rev n)

let endpoints_by lns label =
  Lnset.fold
    (fun (l, n) acc -> if String.equal l label then Sset.add n acc else acc)
    lns Sset.empty
  |> Sset.elements

let succ_by g n label = endpoints_by (adj g.fwd n) label

let pred_by g n label = endpoints_by (adj g.rev n) label

let out_degree g n = Lnset.cardinal (adj g.fwd n)

let in_degree g n = Lnset.cardinal (adj g.rev n)

let labels_between g src dst =
  Lnset.fold
    (fun (l, n) acc -> if String.equal n dst then l :: acc else acc)
    (adj g.fwd src) []
  |> List.sort String.compare

let edge_labels g =
  fold_edges (fun e acc -> Sset.add e.label acc) g Sset.empty |> Sset.elements

let has_edge_label g label =
  try
    iter_edges (fun e -> if String.equal e.label label then raise Exit) g;
    false
  with Exit -> true

let rename_node g old_name new_name =
  if not (mem_node g old_name) then g
  else if String.equal old_name new_name then g
  else
    let redirect n = if String.equal n old_name then new_name else n in
    let outs = out_edges g old_name and ins = in_edges g old_name in
    let g = remove_node g old_name in
    let g = add_node g new_name in
    let g =
      List.fold_left
        (fun g e -> add_edge g new_name e.label (redirect e.dst))
        g outs
    in
    List.fold_left (fun g e -> add_edge g (redirect e.src) e.label new_name) g ins

let filter_nodes keep g =
  fold_nodes
    (fun n acc -> if keep n then acc else remove_node acc n)
    g g

let filter_edges keep g =
  fold_edges (fun e acc -> if keep e then acc else remove_edge_e acc e) g g

let map_edge_labels f g =
  let base =
    fold_nodes (fun n acc -> add_node acc n) g empty
  in
  fold_edges (fun e acc -> add_edge acc e.src (f e.label) e.dst) g base

let union g1 g2 =
  (* Fold the smaller graph into the larger one. *)
  let small, large = if nb_edges g1 + nb_nodes g1 <= nb_edges g2 + nb_nodes g2 then (g1, g2) else (g2, g1) in
  let g = fold_nodes (fun n acc -> add_node acc n) small large in
  fold_edges (fun e acc -> add_edge_e acc e) small g

let inter g1 g2 =
  let node_set = Sset.inter g1.node_set g2.node_set in
  let base = Sset.fold (fun n acc -> add_node acc n) node_set empty in
  fold_edges
    (fun e acc -> if mem_edge g2 e.src e.label e.dst then add_edge_e acc e else acc)
    g1 base

let diff_edges g1 g2 =
  fold_edges
    (fun e acc ->
      if mem_edge g2 e.src e.label e.dst then remove_edge_e acc e else acc)
    g1 g1

let subgraph g ns =
  let wanted = List.fold_left (fun s n -> Sset.add n s) Sset.empty ns in
  filter_nodes (fun n -> Sset.mem n wanted) g

let compare_edge e1 e2 =
  match String.compare e1.src e2.src with
  | 0 -> (
      match String.compare e1.label e2.label with
      | 0 -> String.compare e1.dst e2.dst
      | c -> c)
  | c -> c

let compare g1 g2 =
  match Sset.compare g1.node_set g2.node_set with
  | 0 -> List.compare compare_edge (edges g1) (edges g2)
  | c -> c

let equal g1 g2 = compare g1 g2 = 0

let pp_edge ppf e = Format.fprintf ppf "%s -%s-> %s" e.src e.label e.dst

let edge_to_string e = Format.asprintf "%a" pp_edge e

let pp ppf g =
  Format.fprintf ppf "@[<v>graph (%d nodes, %d edges)" (nb_nodes g) (nb_edges g);
  List.iter (fun n -> Format.fprintf ppf "@,node %s" n) (nodes g);
  List.iter (fun e -> Format.fprintf ppf "@,edge %a" pp_edge e) (edges g);
  Format.fprintf ppf "@]"
