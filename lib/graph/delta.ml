module Sset = Set.Make (String)

module Etriple = struct
  type t = Digraph.edge

  let compare (a : t) (b : t) =
    match String.compare a.Digraph.src b.Digraph.src with
    | 0 -> (
        match String.compare a.Digraph.label b.Digraph.label with
        | 0 -> String.compare a.Digraph.dst b.Digraph.dst
        | c -> c)
    | c -> c
end

module Eset = Set.Make (Etriple)

type t = {
  d_ops : int;
  added : Sset.t;  (* net, vs the base graph *)
  removed : Sset.t;  (* net *)
  touched : Sset.t;  (* monotone superset *)
  labels : Sset.t;  (* monotone superset *)
  e_added : Eset.t;  (* net *)
  e_removed : Eset.t;  (* net *)
}

let empty =
  {
    d_ops = 0;
    added = Sset.empty;
    removed = Sset.empty;
    touched = Sset.empty;
    labels = Sset.empty;
    e_added = Eset.empty;
    e_removed = Eset.empty;
  }

(* One node change, accounted against the base graph so that add
   followed by remove (or the reverse) cancels out of the net sets. *)
let node_change ~base d n ~now_present =
  let in_base = Digraph.mem_node base n in
  let added, removed =
    if now_present then
      if in_base then (d.added, Sset.remove n d.removed)
      else (Sset.add n d.added, d.removed)
    else if in_base then (d.added, Sset.add n d.removed)
    else (Sset.remove n d.added, d.removed)
  in
  { d with added; removed; touched = Sset.add n d.touched }

let edge_change ~base d (e : Digraph.edge) ~now_present =
  let in_base = Digraph.mem_edge base e.Digraph.src e.Digraph.label e.Digraph.dst in
  let e_added, e_removed =
    if now_present then
      if in_base then (d.e_added, Eset.remove e d.e_removed)
      else (Eset.add e d.e_added, d.e_removed)
    else if in_base then (d.e_added, Eset.add e d.e_removed)
    else (Eset.remove e d.e_added, d.e_removed)
  in
  {
    d with
    e_added;
    e_removed;
    touched = Sset.add e.Digraph.src (Sset.add e.Digraph.dst d.touched);
    labels = Sset.add e.Digraph.label d.labels;
  }

(* Effective changes of one primitive against the running graph [g]:
   idempotent re-adds and absent removals contribute nothing, exactly
   mirroring Digraph's no-op semantics. *)
let account ~base g d op =
  let d = { d with d_ops = d.d_ops + 1 } in
  match (op : Transform.op) with
  | Transform.Add_node (n, es) ->
      let d =
        if Digraph.mem_node g n then d else node_change ~base d n ~now_present:true
      in
      List.fold_left
        (fun d (e : Digraph.edge) ->
          if Digraph.mem_edge g e.Digraph.src e.Digraph.label e.Digraph.dst then d
          else
            (* The NA edge list may implicitly create the far endpoint. *)
            let d =
              List.fold_left
                (fun d endp ->
                  if Digraph.mem_node g endp || String.equal endp n then d
                  else node_change ~base d endp ~now_present:true)
                d
                [ e.Digraph.src; e.Digraph.dst ]
            in
            edge_change ~base d e ~now_present:true)
        d es
  | Transform.Delete_node n ->
      if not (Digraph.mem_node g n) then d
      else
        let incident =
          Eset.elements
            (Eset.of_list (Digraph.out_edges g n @ Digraph.in_edges g n))
        in
        let d =
          List.fold_left
            (fun d e -> edge_change ~base d e ~now_present:false)
            d incident
        in
        node_change ~base d n ~now_present:false
  | Transform.Add_edges es ->
      List.fold_left
        (fun d (e : Digraph.edge) ->
          if Digraph.mem_edge g e.Digraph.src e.Digraph.label e.Digraph.dst then d
          else
            let d =
              List.fold_left
                (fun d endp ->
                  if Digraph.mem_node g endp then d
                  else node_change ~base d endp ~now_present:true)
                d
                [ e.Digraph.src; e.Digraph.dst ]
            in
            edge_change ~base d e ~now_present:true)
        d es
  | Transform.Delete_edges es ->
      List.fold_left
        (fun d (e : Digraph.edge) ->
          if not (Digraph.mem_edge g e.Digraph.src e.Digraph.label e.Digraph.dst)
          then d
          else edge_change ~base d e ~now_present:false)
        d es

let of_ops base ops =
  List.fold_left
    (fun (g, d) op ->
      let d = account ~base g d op in
      (Transform.apply g op, d))
    (base, empty) ops

let union a b =
  {
    d_ops = a.d_ops + b.d_ops;
    added = Sset.union a.added b.added;
    removed = Sset.union a.removed b.removed;
    touched = Sset.union a.touched b.touched;
    labels = Sset.union a.labels b.labels;
    e_added = Eset.union a.e_added b.e_added;
    e_removed = Eset.union a.e_removed b.e_removed;
  }

let ops d = d.d_ops

let is_empty d = Sset.is_empty d.touched && Sset.is_empty d.labels

let nodes_added d = Sset.elements d.added
let nodes_removed d = Sset.elements d.removed
let touched_nodes d = Sset.elements d.touched
let edge_labels d = Sset.elements d.labels
let edges_added d = Eset.elements d.e_added
let edges_removed d = Eset.elements d.e_removed

let touches_node d n = Sset.mem n d.touched
let touches_label d l = Sset.mem l d.labels
let changes_node_set d n = Sset.mem n d.added || Sset.mem n d.removed

let pp ppf d =
  Format.fprintf ppf
    "delta(%d ops: +%d/-%d nodes, +%d/-%d edges, %d touched, %d labels)"
    d.d_ops (Sset.cardinal d.added) (Sset.cardinal d.removed)
    (Eset.cardinal d.e_added) (Eset.cardinal d.e_removed)
    (Sset.cardinal d.touched) (Sset.cardinal d.labels)
