type op =
  | Add_node of Digraph.node * Digraph.edge list
  | Delete_node of Digraph.node
  | Add_edges of Digraph.edge list
  | Delete_edges of Digraph.edge list

let incident (e : Digraph.edge) n =
  String.equal e.Digraph.src n || String.equal e.Digraph.dst n

let apply g = function
  | Add_node (n, es) ->
      List.iter
        (fun e ->
          if not (incident e n) then
            invalid_arg
              (Printf.sprintf
                 "Transform.apply: NA edge %s not incident with new node %s"
                 (Digraph.edge_to_string e) n))
        es;
      List.fold_left Digraph.add_edge_e (Digraph.add_node g n) es
  | Delete_node n -> Digraph.remove_node g n
  | Add_edges es -> List.fold_left Digraph.add_edge_e g es
  | Delete_edges es -> List.fold_left Digraph.remove_edge_e g es

let apply_all g ops = List.fold_left apply g ops

let invert g = function
  | Add_node (n, _) ->
      (* Undoing NA removes the node and whatever edges it carried. *)
      Delete_node n
  | Delete_node n ->
      let incident_edges = Digraph.out_edges g n @ Digraph.in_edges g n in
      (* Self-loops appear in both lists; Digraph edge sets absorb the
         duplicate on re-addition. *)
      Add_node (n, incident_edges)
  | Add_edges es ->
      (* Only the edges that were genuinely new must disappear on undo. *)
      let fresh =
        List.filter
          (fun (e : Digraph.edge) ->
            not (Digraph.mem_edge g e.src e.label e.dst))
          es
      in
      Delete_edges fresh
  | Delete_edges es ->
      let present =
        List.filter
          (fun (e : Digraph.edge) -> Digraph.mem_edge g e.src e.label e.dst)
          es
      in
      Add_edges present

let pp ppf op =
  let pp_edges ppf es =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
      Digraph.pp_edge ppf es
  in
  match op with
  | Add_node (n, es) -> Format.fprintf ppf "@[<2>NA[%s;@ %a]@]" n pp_edges es
  | Delete_node n -> Format.fprintf ppf "ND[%s]" n
  | Add_edges es -> Format.fprintf ppf "@[<2>EA[%a]@]" pp_edges es
  | Delete_edges es -> Format.fprintf ppf "@[<2>ED[%a]@]" pp_edges es

let to_string op = Format.asprintf "%a" pp op

(* A log stores (op, inverse) pairs, most recent first. *)
type log = (op * op) list

let log_empty = []

let log_apply g log op =
  let inverse = invert g op in
  (apply g op, (op, inverse) :: log)

let log_ops log = List.rev_map fst log

let log_undo g log =
  match log with
  | [] -> None
  | (_, inverse) :: rest -> Some (apply g inverse, rest)

let replay base log = apply_all base (log_ops log)
