(* One process-wide monotonic counter.  Every structure that wants
   revision-stamped values (Digraph, Ontology, Articulation) draws from the
   same sequence, so a revision number identifies at most one value of any
   stamped type: equal revisions imply the very same value, distinct
   revisions say nothing (two structurally equal graphs built separately
   carry distinct stamps, which can only cost a cache miss, never a wrong
   hit). *)

let counter = ref 0

let fresh () =
  incr counter;
  !counter

let current () = !counter
