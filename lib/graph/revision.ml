(* One process-wide monotonic counter.  Every structure that wants
   revision-stamped values (Digraph, Ontology, Articulation) draws from the
   same sequence, so a revision number identifies at most one value of any
   stamped type: equal revisions imply the very same value, distinct
   revisions say nothing (two structurally equal graphs built separately
   carry distinct stamps, which can only cost a cache miss, never a wrong
   hit).

   The counter is an [Atomic] so that graphs built concurrently on
   {!Domain_pool} workers still draw distinct stamps — a torn increment
   handing the same revision to two different graphs would silently
   poison every revision-keyed cache. *)

let counter = Atomic.make 0

let fresh () = Atomic.fetch_and_add counter 1 + 1

let current () = Atomic.get counter
