type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

(* Split a line into tokens.  Unquoted tokens run to whitespace; quoted
   tokens may contain anything, with backslash escapes for the quote and the
   backslash.  Comments start at an unquoted hash or semicolon. *)
let tokenize line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let rec quoted i =
    if i >= n then Error "unterminated quoted token"
    else
      match line.[i] with
      | '"' -> Ok (i + 1)
      | '\\' ->
          if i + 1 >= n then Error "dangling escape"
          else begin
            (match line.[i + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | c ->
                Buffer.add_char buf '\\';
                Buffer.add_char buf c);
            quoted (i + 2)
          end
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  let rec bare i =
    if i >= n then i
    else
      match line.[i] with
      | ' ' | '\t' | '#' | ';' -> i
      | c ->
          Buffer.add_char buf c;
          bare (i + 1)
  in
  let rec loop acc i =
    let i = skip_ws i in
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | '#' | ';' -> Ok (List.rev acc)
      | '"' -> (
          Buffer.clear buf;
          match quoted (i + 1) with
          | Error m -> Error m
          | Ok j -> loop (Buffer.contents buf :: acc) j)
      | _ ->
          Buffer.clear buf;
          let j = bare i in
          loop (Buffer.contents buf :: acc) j
  in
  loop [] 0

let parse text =
  let lines = String.split_on_char '\n' text in
  let g, errors, _ =
    List.fold_left
      (fun (g, errors, lineno) line ->
        let fail message = (g, { line = lineno; message } :: errors, lineno + 1) in
        match tokenize line with
        | Error m -> fail m
        | Ok [] -> (g, errors, lineno + 1)
        | Ok ("node" :: rest) -> (
            (* "node" is a keyword even in triple position. *)
            match rest with
            | [ name ] when name <> "" -> (Digraph.add_node g name, errors, lineno + 1)
            | [ "" ] -> fail "empty node name"
            | _ -> fail "'node' expects exactly one name")
        | Ok ("edge" :: rest) -> (
            match rest with
            | [ src; label; dst ] when src <> "" && dst <> "" ->
                (Digraph.add_edge g src label dst, errors, lineno + 1)
            | [ _; _; _ ] -> fail "empty node name in edge"
            | _ -> fail "'edge' expects exactly <src> <label> <dst>")
        | Ok [ src; label; dst ] ->
            if src = "" || dst = "" then fail "empty node name in edge"
            else (Digraph.add_edge g src label dst, errors, lineno + 1)
        | Ok toks ->
            fail
              (Printf.sprintf "expected 'node <n>' or '<src> <label> <dst>', got %d token(s)"
                 (List.length toks)))
      (Digraph.empty, [], 1) lines
  in
  if errors = [] then Ok g else Error (List.rev errors)

let parse_exn text =
  match parse text with
  | Ok g -> g
  | Error errors ->
      let msg =
        errors
        |> List.map (fun e -> Format.asprintf "%a" pp_error e)
        |> String.concat "; "
      in
      invalid_arg ("Adjacency.parse_exn: " ^ msg)

let needs_quoting tok =
  tok = ""
  || String.exists
       (fun c -> c = ' ' || c = '\t' || c = '#' || c = ';' || c = '"' || c = '\\' || c = '\n')
       tok

let render_token tok =
  if not (needs_quoting tok) then tok
  else begin
    let buf = Buffer.create (String.length tok + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      tok;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let print g =
  let buf = Buffer.create 1024 in
  (* Emit isolated nodes explicitly; nodes with edges are implied. *)
  List.iter
    (fun n ->
      if Digraph.out_degree g n = 0 && Digraph.in_degree g n = 0 then
        Buffer.add_string buf (Printf.sprintf "node %s\n" (render_token n)))
    (Digraph.nodes g);
  List.iter
    (fun (e : Digraph.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s %s\n" (render_token e.src)
           (render_token e.label) (render_token e.dst)))
    (Digraph.edges g);
  Buffer.contents buf

let load_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse content

let save_file path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (print g))
