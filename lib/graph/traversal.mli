(** Graph traversals and derived relations over {!Digraph}.

    Several ONION components are built on reachability restricted to a set of
    edge labels: transitive relations such as [SubclassOf] and
    [SemanticImplication] are expanded by label-filtered transitive closure,
    and the algebra's conservative difference (section 5.3) removes exactly
    the nodes from which a path into the other ontology exists. *)

type label_filter = string -> bool
(** Which edge labels a traversal may follow.  [fun _ -> true] follows
    every edge. *)

val any_label : label_filter

val only : string list -> label_filter
(** [only labels] follows exactly the given labels. *)

val bfs : ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node list
(** Breadth-first order from the source (inclusive).  Nodes at equal depth
    are visited in sorted order, so the result is deterministic. *)

val dfs_preorder :
  ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node list
(** Depth-first preorder from the source (inclusive), deterministic. *)

val dfs_postorder :
  ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node list

val reachable :
  ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node list
(** All nodes reachable from the source, {e excluding} the source itself
    unless it lies on a cycle.  Sorted. *)

val reachable_set :
  ?follow:label_filter -> Digraph.t -> Digraph.node list -> Digraph.node list
(** Union of {!reachable} over several sources, sorted. *)

val co_reachable :
  ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node list
(** All nodes from which the given node is reachable (excluding itself
    unless on a cycle).  Sorted. *)

val path_exists :
  ?follow:label_filter -> Digraph.t -> Digraph.node -> Digraph.node -> bool
(** [path_exists g a b]: is there a non-empty directed path from [a] to
    [b]?  ([a = b] requires a cycle through [a].) *)

val shortest_path :
  ?follow:label_filter ->
  Digraph.t ->
  Digraph.node ->
  Digraph.node ->
  Digraph.edge list option
(** A minimum-hop directed path as its edge sequence; [None] if
    unreachable.  The empty list is returned when source = target. *)

val transitive_closure :
  ?follow:label_filter -> close_label:string -> Digraph.t -> Digraph.t
(** [transitive_closure ~follow ~close_label g] adds an edge
    [(a, close_label, b)] for every pair with a non-empty [follow]-path
    from [a] to [b].  Used to expand transitive ontology relations. *)

val transitive_reduction_edges :
  label:string -> Digraph.t -> Digraph.edge list
(** Edges labeled [label] that are implied by other [label]-paths and can
    therefore be hidden by the viewer (the paper keeps transitive semantic
    implications undisplayed unless requested). *)

val topological_sort :
  ?follow:label_filter -> Digraph.t -> Digraph.node list option
(** A topological order of all nodes w.r.t. the followed edges, or [None]
    if those edges contain a cycle.  Deterministic (lexicographically
    smallest order). *)

val strongly_connected_components :
  ?follow:label_filter -> Digraph.t -> Digraph.node list list
(** Tarjan's SCCs over the followed edges; components and their members are
    sorted for determinism. *)

val has_cycle : ?follow:label_filter -> Digraph.t -> bool

val weakly_connected_components : Digraph.t -> Digraph.node list list
(** Components of the underlying undirected graph, sorted. *)
