(** Changed-region summaries of {!Transform.op} streams (the paper's
    NA / ND / EA / ED primitives, section 3).

    The incremental-analysis layer needs to know, after a stream of
    transformation primitives, {e what part of the graph can possibly
    look different}: which nodes appeared or vanished, which nodes had
    an incident edge change, and which edge labels were involved.  A
    {!t} carries exactly that — the net node and edge set changes
    relative to the pre-state, plus two monotone supersets (touched
    nodes, touched edge labels) that the impact analysis intersects
    with pass footprints to decide which lint scopes to re-check.

    The net sets are {e exact}: an edge added and then deleted by the
    same stream contributes nothing to {!edges_added}/{!edges_removed}
    (and likewise for nodes), because every op is accounted against the
    running graph and cancelled against the base.  The touched sets are
    deliberately {e not} cancelled — a region that changed and changed
    back was still touched, and re-checking it is sound while skipping
    it would have to prove the round-trip was observationally silent. *)

type t

val empty : t
(** The delta of the empty op stream. *)

val of_ops : Digraph.t -> Transform.op list -> Digraph.t * t
(** [of_ops g ops] applies the stream left-to-right (exactly
    {!Transform.apply_all}) and summarizes it: the post-state graph
    paired with the delta of the whole stream relative to [g].
    @raise Invalid_argument as {!Transform.apply} does (an [Add_node]
    edge not incident with its node). *)

val union : t -> t -> t
(** Summary union for impact analysis over edits to {e distinct}
    graphs (e.g. two workspace sources edited before one re-lint): all
    six sets united, op counts added.  Exactness of the net sets is
    only meaningful per graph; the union is a sound trigger superset. *)

val ops : t -> int
(** Number of primitives consumed. *)

val is_empty : t -> bool
(** No net change {e and} nothing touched (the stream was empty or
    all-no-op). *)

val nodes_added : t -> Digraph.node list
(** Net new nodes (absent in the pre-state, present after), sorted.
    Includes endpoints implicitly created by [Add_edges]. *)

val nodes_removed : t -> Digraph.node list
(** Net removed nodes, sorted. *)

val touched_nodes : t -> Digraph.node list
(** Every node that appeared, vanished, or had an incident edge added
    or removed at any point of the stream, sorted.  Superset of
    {!nodes_added} and {!nodes_removed}. *)

val edge_labels : t -> string list
(** Labels of every edge added or removed at any point, sorted. *)

val edges_added : t -> Digraph.edge list
(** Net new edges, sorted by [(src, label, dst)]. *)

val edges_removed : t -> Digraph.edge list
(** Net removed edges, sorted by [(src, label, dst)]. *)

val touches_node : t -> Digraph.node -> bool
(** Membership in {!touched_nodes}. *)

val touches_label : t -> string -> bool
(** Membership in {!edge_labels}. *)

val changes_node_set : t -> Digraph.node -> bool
(** Membership in {!nodes_added} or {!nodes_removed} — the trigger for
    checks that only observe node existence (e.g. dangling bridge
    endpoints). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: op count and set cardinalities. *)
