(** The process-wide revision sequence behind result caching.

    The paper computes algebra results dynamically rather than storing
    them (section 5), which makes re-matching and re-composition the hot
    path of a mediator under repeated query traffic.  To memoize those
    results safely, every mutating primitive (NA / ND / EA / ED and their
    ontology-level counterparts) stamps the value it produces with a fresh
    number from this single monotonic sequence.

    Invariant relied upon by every cache keyed on revisions: {e equal
    revisions imply physically identical values}.  A no-op mutation
    (adding an existing edge, removing an absent node) returns its input
    unchanged and therefore keeps its stamp — cached results stay valid.
    Distinct revisions carry no information: structurally equal values
    built independently get distinct stamps, costing at worst a cache
    miss. *)

val fresh : unit -> int
(** The next revision number (strictly increasing, starting at 1; 0 is
    reserved for the empty graph). *)

val current : unit -> int
(** The last revision handed out (0 before any). *)
