(* One O(N + E) pass over the graph builds four hash tables; everything
   the matcher's candidate generation needs afterwards is a constant-time
   lookup.  The tables are write-once: after [build] returns they are
   only ever read, so a memoized index can be shared freely across
   domains (Hashtbl reads do not mutate). *)

module Sset = Set.Make (String)

module Pair = struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c
end

module Pset = Set.Make (Pair)

type t = {
  revision : int;
  nodes : Digraph.node list; (* sorted, computed once *)
  node_tbl : (Digraph.node, unit) Hashtbl.t;
  by_edge_label : (string, (Digraph.node * Digraph.node) list) Hashtbl.t;
      (* label -> sorted (src, dst) bucket *)
  srcs_by_label : (string, Digraph.node list) Hashtbl.t; (* distinct, sorted *)
  dsts_by_label : (string, Digraph.node list) Hashtbl.t;
  out_by_label : (Digraph.node * string, int) Hashtbl.t;
  in_by_label : (Digraph.node * string, int) Hashtbl.t;
  out_deg : (Digraph.node, int) Hashtbl.t;
  in_deg : (Digraph.node, int) Hashtbl.t;
}

let bump tbl key =
  let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
  Hashtbl.replace tbl key (n + 1)

let build g =
  let nodes = Digraph.nodes g in
  let node_tbl = Hashtbl.create (List.length nodes) in
  List.iter (fun n -> Hashtbl.replace node_tbl n ()) nodes;
  let n_edges = Digraph.nb_edges g in
  let buckets : (string, Pset.t) Hashtbl.t = Hashtbl.create 16 in
  let out_by_label = Hashtbl.create n_edges in
  let in_by_label = Hashtbl.create n_edges in
  let out_deg = Hashtbl.create (List.length nodes) in
  let in_deg = Hashtbl.create (List.length nodes) in
  Digraph.iter_edges
    (fun (e : Digraph.edge) ->
      let prev =
        match Hashtbl.find_opt buckets e.label with
        | Some s -> s
        | None -> Pset.empty
      in
      Hashtbl.replace buckets e.label (Pset.add (e.src, e.dst) prev);
      bump out_by_label (e.src, e.label);
      bump in_by_label (e.dst, e.label);
      bump out_deg e.src;
      bump in_deg e.dst)
    g;
  let by_edge_label = Hashtbl.create (Hashtbl.length buckets) in
  let srcs_by_label = Hashtbl.create (Hashtbl.length buckets) in
  let dsts_by_label = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun label pairs ->
      Hashtbl.replace by_edge_label label (Pset.elements pairs);
      let srcs, dsts =
        Pset.fold
          (fun (s, d) (ss, ds) -> (Sset.add s ss, Sset.add d ds))
          pairs (Sset.empty, Sset.empty)
      in
      Hashtbl.replace srcs_by_label label (Sset.elements srcs);
      Hashtbl.replace dsts_by_label label (Sset.elements dsts))
    buckets;
  {
    revision = Digraph.revision g;
    nodes;
    node_tbl;
    by_edge_label;
    srcs_by_label;
    dsts_by_label;
    out_by_label;
    in_by_label;
    out_deg;
    in_deg;
  }

(* Memoized per revision: equal revisions imply the very same graph, so
   the revision alone is a sound key.  Capacity covers the working set of
   graphs a query session touches simultaneously. *)
let cache : (int, t) Lru.t =
  Lru.create ~name:"graph.label_index" ~capacity:64 ()

let of_graph g = Lru.find_or_compute cache (Digraph.revision g) (fun () -> build g)

let cached g = Lru.mem cache (Digraph.revision g)

(* ------------------------------------------------------------------ *)
(* Delta maintenance                                                   *)
(* ------------------------------------------------------------------ *)

let drop tbl key =
  let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
  if n <= 1 then Hashtbl.remove tbl key else Hashtbl.replace tbl key (n - 1)

(* Rebuild one label's bucket triple from the old bucket plus the
   delta's net edge changes carrying that label.  Bucket work is
   proportional to the bucket size, not the graph. *)
let patch_bucket ~by_edge_label ~srcs_by_label ~dsts_by_label label ~add ~remove
    =
  let old =
    match Hashtbl.find_opt by_edge_label label with Some xs -> xs | None -> []
  in
  let pairs =
    List.fold_left (fun s p -> Pset.remove p s)
      (List.fold_left (fun s p -> Pset.add p s) (Pset.of_list old) add)
      remove
  in
  if Pset.is_empty pairs then begin
    Hashtbl.remove by_edge_label label;
    Hashtbl.remove srcs_by_label label;
    Hashtbl.remove dsts_by_label label
  end
  else begin
    Hashtbl.replace by_edge_label label (Pset.elements pairs);
    let srcs, dsts =
      Pset.fold
        (fun (s, d) (ss, ds) -> (Sset.add s ss, Sset.add d ds))
        pairs (Sset.empty, Sset.empty)
    in
    Hashtbl.replace srcs_by_label label (Sset.elements srcs);
    Hashtbl.replace dsts_by_label label (Sset.elements dsts)
  end

(* The patched index is built eagerly and memoized under the post-state
   revision, so an [of_graph post] anywhere downstream answers from the
   patch instead of paying the full rebuild. *)
let update idx delta post =
  let patch () =
    Cache_stats.record_plan "delta.index_patch";
    let node_tbl = Hashtbl.copy idx.node_tbl in
    let by_edge_label = Hashtbl.copy idx.by_edge_label in
    let srcs_by_label = Hashtbl.copy idx.srcs_by_label in
    let dsts_by_label = Hashtbl.copy idx.dsts_by_label in
    let out_by_label = Hashtbl.copy idx.out_by_label in
    let in_by_label = Hashtbl.copy idx.in_by_label in
    let out_deg = Hashtbl.copy idx.out_deg in
    let in_deg = Hashtbl.copy idx.in_deg in
    let added = Delta.nodes_added delta in
    let removed = Delta.nodes_removed delta in
    List.iter (fun n -> Hashtbl.replace node_tbl n ()) added;
    List.iter (fun n -> Hashtbl.remove node_tbl n) removed;
    let e_added = Delta.edges_added delta in
    let e_removed = Delta.edges_removed delta in
    List.iter
      (fun (e : Digraph.edge) ->
        bump out_by_label (e.src, e.label);
        bump in_by_label (e.dst, e.label);
        bump out_deg e.src;
        bump in_deg e.dst)
      e_added;
    List.iter
      (fun (e : Digraph.edge) ->
        drop out_by_label (e.src, e.label);
        drop in_by_label (e.dst, e.label);
        drop out_deg e.src;
        drop in_deg e.dst)
      e_removed;
    let changed_labels =
      List.sort_uniq String.compare
        (List.map (fun (e : Digraph.edge) -> e.label) (e_added @ e_removed))
    in
    List.iter
      (fun label ->
        let pairs_of es =
          List.filter_map
            (fun (e : Digraph.edge) ->
              if String.equal e.label label then Some (e.src, e.dst) else None)
            es
        in
        patch_bucket ~by_edge_label ~srcs_by_label ~dsts_by_label label
          ~add:(pairs_of e_added) ~remove:(pairs_of e_removed))
      changed_labels;
    let nodes =
      let kept =
        if removed = [] then idx.nodes
        else List.filter (fun n -> not (List.mem n removed)) idx.nodes
      in
      if added = [] then kept else List.merge String.compare kept added
    in
    {
      revision = Digraph.revision post;
      nodes;
      node_tbl;
      by_edge_label;
      srcs_by_label;
      dsts_by_label;
      out_by_label;
      in_by_label;
      out_deg;
      in_deg;
    }
  in
  Lru.find_or_compute cache (Digraph.revision post) patch

let revision idx = idx.revision

let nodes idx = idx.nodes

let mem_label idx label = Hashtbl.mem idx.node_tbl label

let bucket tbl label =
  match Hashtbl.find_opt tbl label with Some xs -> xs | None -> []

let edges_with idx label = bucket idx.by_edge_label label

let sources_with idx label = bucket idx.srcs_by_label label

let targets_with idx label = bucket idx.dsts_by_label label

let count tbl key = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0

let out_label_degree idx n label = count idx.out_by_label (n, label)

let in_label_degree idx n label = count idx.in_by_label (n, label)

let out_degree idx n = count idx.out_deg n

let in_degree idx n = count idx.in_deg n
