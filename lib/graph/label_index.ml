(* One O(N + E) pass over the graph builds four hash tables; everything
   the matcher's candidate generation needs afterwards is a constant-time
   lookup.  The tables are write-once: after [build] returns they are
   only ever read, so a memoized index can be shared freely across
   domains (Hashtbl reads do not mutate). *)

module Sset = Set.Make (String)

module Pair = struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c
end

module Pset = Set.Make (Pair)

type t = {
  revision : int;
  nodes : Digraph.node list; (* sorted, computed once *)
  node_tbl : (Digraph.node, unit) Hashtbl.t;
  by_edge_label : (string, (Digraph.node * Digraph.node) list) Hashtbl.t;
      (* label -> sorted (src, dst) bucket *)
  srcs_by_label : (string, Digraph.node list) Hashtbl.t; (* distinct, sorted *)
  dsts_by_label : (string, Digraph.node list) Hashtbl.t;
  out_by_label : (Digraph.node * string, int) Hashtbl.t;
  in_by_label : (Digraph.node * string, int) Hashtbl.t;
  out_deg : (Digraph.node, int) Hashtbl.t;
  in_deg : (Digraph.node, int) Hashtbl.t;
}

let bump tbl key =
  let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
  Hashtbl.replace tbl key (n + 1)

let build g =
  let nodes = Digraph.nodes g in
  let node_tbl = Hashtbl.create (List.length nodes) in
  List.iter (fun n -> Hashtbl.replace node_tbl n ()) nodes;
  let n_edges = Digraph.nb_edges g in
  let buckets : (string, Pset.t) Hashtbl.t = Hashtbl.create 16 in
  let out_by_label = Hashtbl.create n_edges in
  let in_by_label = Hashtbl.create n_edges in
  let out_deg = Hashtbl.create (List.length nodes) in
  let in_deg = Hashtbl.create (List.length nodes) in
  Digraph.iter_edges
    (fun (e : Digraph.edge) ->
      let prev =
        match Hashtbl.find_opt buckets e.label with
        | Some s -> s
        | None -> Pset.empty
      in
      Hashtbl.replace buckets e.label (Pset.add (e.src, e.dst) prev);
      bump out_by_label (e.src, e.label);
      bump in_by_label (e.dst, e.label);
      bump out_deg e.src;
      bump in_deg e.dst)
    g;
  let by_edge_label = Hashtbl.create (Hashtbl.length buckets) in
  let srcs_by_label = Hashtbl.create (Hashtbl.length buckets) in
  let dsts_by_label = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun label pairs ->
      Hashtbl.replace by_edge_label label (Pset.elements pairs);
      let srcs, dsts =
        Pset.fold
          (fun (s, d) (ss, ds) -> (Sset.add s ss, Sset.add d ds))
          pairs (Sset.empty, Sset.empty)
      in
      Hashtbl.replace srcs_by_label label (Sset.elements srcs);
      Hashtbl.replace dsts_by_label label (Sset.elements dsts))
    buckets;
  {
    revision = Digraph.revision g;
    nodes;
    node_tbl;
    by_edge_label;
    srcs_by_label;
    dsts_by_label;
    out_by_label;
    in_by_label;
    out_deg;
    in_deg;
  }

(* Memoized per revision: equal revisions imply the very same graph, so
   the revision alone is a sound key.  Capacity covers the working set of
   graphs a query session touches simultaneously. *)
let cache : (int, t) Lru.t =
  Lru.create ~name:"graph.label_index" ~capacity:64 ()

let of_graph g = Lru.find_or_compute cache (Digraph.revision g) (fun () -> build g)

let cached g = Lru.mem cache (Digraph.revision g)

let revision idx = idx.revision

let nodes idx = idx.nodes

let mem_label idx label = Hashtbl.mem idx.node_tbl label

let bucket tbl label =
  match Hashtbl.find_opt tbl label with Some xs -> xs | None -> []

let edges_with idx label = bucket idx.by_edge_label label

let sources_with idx label = bucket idx.srcs_by_label label

let targets_with idx label = bucket idx.dsts_by_label label

let count tbl key = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0

let out_label_degree idx n label = count idx.out_by_label (n, label)

let in_label_degree idx n label = count idx.in_by_label (n, label)

let out_degree idx n = count idx.out_deg n

let in_degree idx n = count idx.in_deg n
