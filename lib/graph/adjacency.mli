(** The simple adjacency-list text format, one of the three ingestion
    formats named in section 2.1 of the paper (alongside XML documents and
    IDL specifications).

    Syntax (line oriented):
    {v
    # comment (also ';' comments); blank lines ignored
    node <name>
    edge <src> <label> <dst>
    <src> <label> <dst>          # bare triple, same as 'edge'
    v}

    Tokens containing whitespace, hash, semicolon or double quotes must be
    double-quoted; inside quotes a backslash escapes the quote and itself.
    {!print} always produces a round-trippable document. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Digraph.t, error list) result
(** Parse a whole document.  All lines are checked; every malformed line is
    reported. *)

val parse_exn : string -> Digraph.t
(** @raise Invalid_argument with the rendered errors on malformed input. *)

val print : Digraph.t -> string
(** Deterministic (sorted) rendering; [parse (print g)] reconstructs [g]. *)

val load_file : string -> (Digraph.t, error list) result
(** Read and parse a file.
    @raise Sys_error if the file cannot be read. *)

val save_file : string -> Digraph.t -> unit
