type style = {
  rankdir : string;
  edge_color : string -> string option;
  node_shape : Digraph.node -> string option;
}

let default_style =
  { rankdir = "TB"; edge_color = (fun _ -> None); node_shape = (fun _ -> None) }

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_line style buf indent n =
  let attrs =
    match style.node_shape n with
    | Some shape -> Printf.sprintf " [shape=%s]" shape
    | None -> ""
  in
  Buffer.add_string buf (Printf.sprintf "%s\"%s\"%s;\n" indent (escape n) attrs)

let edge_line style buf indent (e : Digraph.edge) =
  let color =
    match style.edge_color e.label with
    | Some c -> Printf.sprintf ", color=%s, fontcolor=%s" c c
    | None -> ""
  in
  Buffer.add_string buf
    (Printf.sprintf "%s\"%s\" -> \"%s\" [label=\"%s\"%s];\n" indent
       (escape e.src) (escape e.dst) (escape e.label) color)

let body style buf indent g =
  List.iter (node_line style buf indent) (Digraph.nodes g);
  List.iter (edge_line style buf indent) (Digraph.edges g)

let to_dot ?(name = "ontology") ?(style = default_style) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" style.rankdir);
  body style buf "  " g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

type cluster = { cluster_name : string; graph : Digraph.t }

let clusters_to_dot ?(name = "unified") ?(style = default_style) ~clusters
    ~bridge_edges () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" style.rankdir);
  Buffer.add_string buf "  compound=true;\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d {\n" i);
      Buffer.add_string buf
        (Printf.sprintf "    label=\"%s\";\n" (escape c.cluster_name));
      body style buf "    " c.graph;
      Buffer.add_string buf "  }\n")
    clusters;
  List.iter (edge_line style buf "  ") bridge_edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
