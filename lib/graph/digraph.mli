(** Directed labeled multigraphs: the representation substrate of the ONION
    graph-oriented model (Mitra et al., EDBT 2000, section 3).

    An ontology graph is [G = (N, E)] where [N] is a finite set of labeled
    nodes and [E] a finite set of labeled edges [(n1, alpha, n2)].  Following
    the paper's consistency assumption (one node per term in a consistent
    ontology) a node {e is} its label: node identity and node label coincide.

    Values of type {!t} are immutable; every operation returns a new graph.
    Structural sharing through the underlying maps keeps updates cheap, which
    the ONION algebra exploits (union / intersection / difference are computed
    dynamically and never stored, section 5). *)

type node = string
(** A node, identified by its label (a non-empty string in well-formed
    graphs; see {!val:add_node}). *)

type edge = { src : node; label : string; dst : node }
(** A directed labeled edge [(src, label, dst)].  Multiple edges with
    distinct labels may connect the same node pair; duplicate
    [(src, label, dst)] triples are collapsed (edge sets, not bags). *)

type t
(** An immutable directed labeled multigraph. *)

val empty : t
(** The graph with no nodes and no edges (revision 0). *)

val revision : t -> int
(** The graph's {!Revision} stamp.  Every mutating primitive (the paper's
    NA / ND / EA / ED) that actually changes the structure returns a graph
    carrying a fresh stamp from the process-wide sequence; no-op mutations
    return the input unchanged.  Equal revisions therefore imply the very
    same graph — the key invariant behind the result caches ({!Lru},
    {!Cache_stats}).  Structural equality of distinct revisions is
    possible (and harmless: it only costs a cache miss). *)

val is_empty : t -> bool
(** [is_empty g] is [true] iff [g] has no nodes (and hence no edges). *)

(** {1 Construction} *)

val add_node : t -> node -> t
(** [add_node g n] adds the isolated node [n].  Idempotent.
    @raise Invalid_argument if [n] is the empty string (the paper requires
    node labels to map to non-null strings). *)

val add_edge : t -> node -> string -> node -> t
(** [add_edge g src label dst] adds the edge [(src, label, dst)], inserting
    the endpoints if absent.  Idempotent.
    @raise Invalid_argument on an empty node label. *)

val add_edge_e : t -> edge -> t
(** [add_edge_e g e] is [add_edge g e.src e.label e.dst]. *)

val remove_node : t -> node -> t
(** [remove_node g n] removes [n] and every edge incident with [n]
    (the paper's node-deletion primitive ND).  Idempotent. *)

val remove_edge : t -> node -> string -> node -> t
(** [remove_edge g src label dst] removes exactly that edge, keeping the
    endpoints.  Idempotent. *)

val remove_edge_e : t -> edge -> t
(** [remove_edge_e g e] is [remove_edge g e.src e.label e.dst]. *)

val of_edges : ?nodes:node list -> edge list -> t
(** [of_edges ~nodes es] builds a graph containing edges [es] plus the
    (possibly isolated) nodes [nodes]. *)

val rename_node : t -> node -> node -> t
(** [rename_node g old_name new_name] replaces node [old_name] by
    [new_name], redirecting all incident edges.  If [new_name] already
    exists the two nodes are merged.  If [old_name] is absent, [g] is
    returned unchanged. *)

(** {1 Queries} *)

val mem_node : t -> node -> bool
val mem_edge : t -> node -> string -> node -> bool

val nb_nodes : t -> int
val nb_edges : t -> int

val nodes : t -> node list
(** Sorted list of all nodes. *)

val edges : t -> edge list
(** All edges, sorted by [(src, label, dst)]. *)

val out_edges : t -> node -> edge list
(** Edges leaving the node; empty if the node is absent. *)

val in_edges : t -> node -> edge list
(** Edges entering the node; empty if the node is absent. *)

val succ : t -> node -> node list
(** Distinct successor nodes, sorted. *)

val pred : t -> node -> node list
(** Distinct predecessor nodes, sorted. *)

val succ_by : t -> node -> string -> node list
(** [succ_by g n label] are the distinct successors of [n] reached through
    an edge labeled [label], sorted. *)

val pred_by : t -> node -> string -> node list
(** [pred_by g n label] are the distinct predecessors of [n] through edges
    labeled [label], sorted. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val labels_between : t -> node -> node -> string list
(** All edge labels on edges from the first node to the second, sorted. *)

val edge_labels : t -> string list
(** The distinct edge labels used anywhere in the graph, sorted. *)

val has_edge_label : t -> string -> bool

(** {1 Iteration} *)

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val iter_nodes : (node -> unit) -> t -> unit
val iter_edges : (edge -> unit) -> t -> unit

val filter_nodes : (node -> bool) -> t -> t
(** Induced subgraph on the nodes satisfying the predicate. *)

val filter_edges : (edge -> bool) -> t -> t
(** Same node set, only the edges satisfying the predicate. *)

val map_edge_labels : (string -> string) -> t -> t
(** Relabel every edge. *)

(** {1 Whole-graph operations} *)

val union : t -> t -> t
(** Set union of nodes and edges. *)

val inter : t -> t -> t
(** Nodes present in both graphs and edges present in both. *)

val diff_edges : t -> t -> t
(** First graph's node set, minus the edges also present in the second
    graph.  (The ontology-level difference with reachability semantics
    lives in the algebra layer.) *)

val subgraph : t -> node list -> t
(** [subgraph g ns] is the subgraph induced by the nodes of [ns] that are
    present in [g]. *)

val equal : t -> t -> bool
(** Structural equality of node and edge sets. *)

val compare : t -> t -> int

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Human-readable multi-line rendering (one node or edge per line). *)

val pp_edge : Format.formatter -> edge -> unit
(** [src -label-> dst]. *)

val edge_to_string : edge -> string
