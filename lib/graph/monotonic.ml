external now_ns : unit -> int64 = "onion_monotonic_now_ns"

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_ns ~since = Int64.sub (now_ns ()) since
let elapsed_s ~since = Int64.to_float (elapsed_ns ~since) /. 1e9
