(** Per-revision matching indexes over a {!Digraph}.

    The cold path of subgraph matching repeatedly asks three questions of
    the data graph: does a node with this label exist, which edges carry
    this label, and can this node possibly satisfy a labeled (or
    unlabeled) pattern edge.  Answering them from whole-graph scans is
    what makes naive backtracking quadratic-and-worse; an index built in
    one [O(N + E)] pass answers each in (amortized) constant time.

    Indexes are immutable once built and memoized on the graph's
    {!Digraph.revision} stamp, so any number of matches against an
    unchanged graph share one build, while a mutated graph (fresh
    revision) transparently gets a fresh index.  Because a built index is
    never mutated, it is safe to share across {!Domain_pool} workers. *)

type t

val of_graph : Digraph.t -> t
(** The index for this graph, built on first request per revision and
    answered from a process-wide memo afterwards. *)

val update : t -> Delta.t -> Digraph.t -> t
(** [update idx delta post] patches the index in [O(|delta|)] bucket
    work (plus one linear merge of the sorted node list) instead of the
    full [O(N + E)] rebuild: only the buckets and degree counters of
    the delta's net edge changes are touched.  [idx] {e must} be the
    index of the pre-state graph the delta was computed against, and
    [post] the post-state; the result is observationally identical to
    [of_graph post] (the qcheck equivalence harness proves it) and is
    inserted into the per-revision memo, so a later [of_graph post]
    answers from the patch.  Records one ["delta.index_patch"] plan
    counter tick. *)

val cached : Digraph.t -> bool
(** Is the index for this graph's revision already memoized?  A pure
    probe (no counter movement, no build): the cost planner uses it to
    decide whether an indexed search would pay the [O(N + E)] build or
    start from a warm index. *)

val revision : t -> int
(** The {!Digraph.revision} of the indexed graph. *)

val nodes : t -> Digraph.node list
(** All nodes, sorted — the same list as {!Digraph.nodes}, computed once. *)

val mem_label : t -> string -> bool
(** Node existence by label (node identity and label coincide in the
    paper's consistent ontologies). *)

val edges_with : t -> string -> (Digraph.node * Digraph.node) list
(** The (src, dst) bucket of every edge carrying the label, sorted. *)

val sources_with : t -> string -> Digraph.node list
(** Distinct sorted sources of edges carrying the label: the candidate
    set for a pattern node required to emit such an edge. *)

val targets_with : t -> string -> Digraph.node list
(** Distinct sorted targets of edges carrying the label. *)

val out_label_degree : t -> Digraph.node -> string -> int
(** Number of out-edges of the node carrying the label (0 for unknown
    nodes or labels). *)

val in_label_degree : t -> Digraph.node -> string -> int

val out_degree : t -> Digraph.node -> int
(** Total out-degree (0 for unknown nodes). *)

val in_degree : t -> Digraph.node -> int
