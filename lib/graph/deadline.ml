(* Wall-clock deadlines with ambient per-thread propagation.

   A deadline is an absolute [Unix.gettimeofday] instant ([never] =
   [infinity]).  The serving path installs one around each admitted
   request with {!with_deadline}; deep loops (pattern matching, domain
   fan-out, per-source federation work) call {!check} periodically and
   get an {!Expired} exception when the budget is gone — cooperative
   cancellation, no thread kills.

   Ambient storage is a mutex-guarded table keyed by systhread id:
   OCaml 5 sys-threads share their domain, so [Domain.DLS] cannot hold
   per-request state (every admission worker would alias the same
   slot).  The table is only consulted when at least one deadline is
   installed — [check] is two atomic loads on the idle path, so
   batch-CLI and deadline-free traffic pay nothing.

   A process-wide hard stop ({!set_hard_stop}) caps *every* thread,
   with or without an ambient deadline.  The daemon arms it with the
   shutdown grace period before draining, so in-flight work that would
   outlive the grace raises at its next check instead of wedging the
   drain. *)

type t = float

exception Expired

let never : t = infinity
let now () = Unix.gettimeofday ()

let after_ms ms =
  if ms <= 0 then now () -. 1e-9 else now () +. (float_of_int ms /. 1000.)

let of_ms_opt = function None -> never | Some ms -> after_ms ms
let expired t = t < infinity && now () >= t

let remaining_ms t =
  if t = infinity then max_int
  else int_of_float (Float.ceil ((t -. now ()) *. 1000.))

(* ------------------------------------------------------------------ *)
(* Ambient per-thread registry                                        *)
(* ------------------------------------------------------------------ *)

let active = Atomic.make 0
let hard_stop = Atomic.make never
let table : (int, float) Hashtbl.t = Hashtbl.create 64
let table_mutex = Mutex.create ()
let tid () = Thread.id (Thread.self ())

let ambient () =
  if Atomic.get active = 0 then never
  else begin
    Mutex.lock table_mutex;
    let d =
      match Hashtbl.find_opt table (tid ()) with Some d -> d | None -> never
    in
    Mutex.unlock table_mutex;
    d
  end

let current () = Float.min (ambient ()) (Atomic.get hard_stop)

let with_deadline d f =
  if d = infinity then f ()
  else begin
    let id = tid () in
    Mutex.lock table_mutex;
    let prev = Hashtbl.find_opt table id in
    (* A tighter enclosing deadline is never loosened by a nested one. *)
    let eff = match prev with Some p -> Float.min p d | None -> d in
    Hashtbl.replace table id eff;
    Mutex.unlock table_mutex;
    Atomic.incr active;
    Fun.protect
      ~finally:(fun () ->
        Atomic.decr active;
        Mutex.lock table_mutex;
        (match prev with
        | Some p -> Hashtbl.replace table id p
        | None -> Hashtbl.remove table id);
        Mutex.unlock table_mutex)
      f
  end

let check () =
  if Atomic.get active > 0 || Atomic.get hard_stop < infinity then
    if expired (current ()) then raise Expired

let cancelled () =
  (Atomic.get active > 0 || Atomic.get hard_stop < infinity)
  && expired (current ())

let set_hard_stop t = Atomic.set hard_stop t
let clear_hard_stop () = Atomic.set hard_stop never
