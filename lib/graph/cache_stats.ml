type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

type registered = { snapshot : unit -> snapshot; clear : unit -> unit }

(* Registration happens once per cache at module initialization; an
   association list keeps the interface dependency-free and the order
   deterministic (sorted on read). *)
let registry : (string * registered) list ref = ref []

let enabled_flag = ref true

let enabled () = !enabled_flag

let set_enabled b = enabled_flag := b

let with_disabled f =
  let saved = !enabled_flag in
  enabled_flag := false;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

let register ~name ~snapshot ~clear =
  if List.mem_assoc name !registry then
    invalid_arg ("Cache_stats.register: duplicate cache name " ^ name);
  registry := (name, { snapshot; clear }) :: !registry

let names () = List.sort String.compare (List.map fst !registry)

let get name =
  Option.map (fun r -> r.snapshot ()) (List.assoc_opt name !registry)

let all () =
  List.map (fun name -> (name, (List.assoc name !registry).snapshot ())) (names ())

let clear name =
  match List.assoc_opt name !registry with
  | Some r ->
      r.clear ();
      true
  | None -> false

let clear_all () = List.iter (fun (_, r) -> r.clear ()) !registry

(* Plan-strategy counters: one bump per planning decision, keyed on a
   stable strategy name ("match.naive", "pool.parallel", ...).  Guarded
   by a mutex because Domain_pool workers plan concurrently.  Separate
   from the cache registry on purpose: [clear_all] models a cold cache,
   not an amnesiac planner, so the distribution survives it. *)
let plan_mutex = Mutex.create ()

let plan_tbl : (string, int) Hashtbl.t = Hashtbl.create 16

let record_plans name count =
  if count > 0 then begin
    Mutex.lock plan_mutex;
    let n = Option.value (Hashtbl.find_opt plan_tbl name) ~default:0 in
    Hashtbl.replace plan_tbl name (n + count);
    Mutex.unlock plan_mutex
  end

let record_plan name = record_plans name 1

let plan_counts () =
  Mutex.lock plan_mutex;
  let counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) plan_tbl [] in
  Mutex.unlock plan_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) counts

let reset_plans () =
  Mutex.lock plan_mutex;
  Hashtbl.reset plan_tbl;
  Mutex.unlock plan_mutex

let pp_snapshot ppf s =
  Format.fprintf ppf "%d/%d entries, %d hits, %d misses, %d evictions (%.0f%% hit)"
    s.entries s.capacity s.hits s.misses s.evictions (100.0 *. hit_rate s)

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, s) -> Format.fprintf ppf "%-24s %a@," name pp_snapshot s)
    (all ());
  Format.fprintf ppf "@]"
