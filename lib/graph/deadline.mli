(** Wall-clock deadlines with ambient per-thread propagation.

    The daemon's resilience layer: a request's deadline is installed
    with {!with_deadline} around its workload, deep loops ({!Matcher},
    [Domain_pool], per-source federation work) call {!check}
    periodically, and an exhausted budget surfaces as {!Expired} —
    cooperative cancellation that unwinds cleanly through the
    exception-safe caches ({!Lru.find_or_compute} never caches a raised
    computation).

    When no deadline is installed anywhere in the process, {!check} is
    two atomic loads — batch CLI use and deadline-free traffic pay
    nothing. *)

type t = private float
(** An absolute [Unix.gettimeofday] instant; [infinity] means never. *)

exception Expired
(** Raised by {!check} when the current thread's effective deadline
    (ambient or process-wide hard stop) has passed. *)

val never : t
(** The absent deadline: never expires. *)

val after_ms : int -> t
(** [after_ms ms] is the instant [ms] milliseconds from now.  A
    non-positive [ms] yields an already-expired deadline. *)

val of_ms_opt : int option -> t
(** [of_ms_opt None] is {!never}; [of_ms_opt (Some ms)] is
    [after_ms ms]. *)

val expired : t -> bool
(** Has this instant passed?  Always [false] for {!never}. *)

val remaining_ms : t -> int
(** Milliseconds until expiry, rounded up; negative when expired,
    [max_int] for {!never}. *)

(** {1 Ambient propagation} *)

val with_deadline : t -> (unit -> 'a) -> 'a
(** [with_deadline d f] runs [f] with [d] installed as the calling
    thread's ambient deadline, restoring the previous binding on exit
    (also on exceptions).  Nested installs keep the tighter bound.
    Installing {!never} is free: [f] runs unwrapped. *)

val current : unit -> t
(** The calling thread's effective deadline: the tighter of its ambient
    binding and the process-wide hard stop ({!never} if neither is
    set). *)

val check : unit -> unit
(** Raise {!Expired} iff the effective deadline has passed.  Cheap when
    no deadline is installed anywhere in the process. *)

val cancelled : unit -> bool
(** [check] as a predicate, for loops that prefer to unwind manually. *)

(** {1 Process-wide hard stop}

    Used by the daemon's shutdown: arm the grace budget before draining
    so every in-flight request — with or without its own deadline —
    raises at its next {!check} once the grace is gone. *)

val set_hard_stop : t -> unit
(** Cap every thread's effective deadline at the given instant. *)

val clear_hard_stop : unit -> unit
(** Remove the process-wide cap (e.g. after an embedded server in a
    test harness has shut down). *)
