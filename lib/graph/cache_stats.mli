(** Registry and counters for every revision-keyed result cache.

    Each {!Lru} cache registers itself here under a stable name
    (["matcher.find"], ["algebra.union"], ["rewrite.plan"], ...), so the
    toolkit, the benchmarks and the tests can inspect hit/miss behaviour,
    clear everything between cold and warm runs, and switch caching off
    wholesale to prove it is semantically invisible. *)

type snapshot = {
  hits : int;  (** Lookups answered from the cache. *)
  misses : int;  (** Lookups that fell through to recomputation. *)
  evictions : int;  (** Entries dropped by the LRU bound. *)
  entries : int;  (** Current population. *)
  capacity : int;  (** The LRU bound. *)
}

val hit_rate : snapshot -> float
(** Hits over total lookups; [0.] before any lookup. *)

(** {1 Global switch} *)

val enabled : unit -> bool
(** Caching is on by default. *)

val set_enabled : bool -> unit
(** While disabled, every cache computes directly: no lookups, no
    insertions, no counter movement.  Existing entries are kept (they
    become visible again when re-enabled and are still revision-correct,
    since revisions never lie). *)

val with_disabled : (unit -> 'a) -> 'a
(** Run a thunk with caching off — the cold path used by the equivalence
    property tests and the benchmarks.  Restores the previous state even
    on exceptions. *)

(** {1 Registry} *)

val register :
  name:string -> snapshot:(unit -> snapshot) -> clear:(unit -> unit) -> unit
(** Called by {!Lru.create}; cache names must be unique.
    @raise Invalid_argument on a duplicate name. *)

val names : unit -> string list
(** Registered cache names, sorted. *)

val get : string -> snapshot option

val all : unit -> (string * snapshot) list
(** Every cache with its snapshot, sorted by name. *)

val clear : string -> bool
(** Empty one cache (counters reset too); [false] if unknown. *)

val clear_all : unit -> unit
(** Empty every registered cache — the benchmarks' cold start. *)

(** {1 Plan-strategy counters}

    The adaptive planners ({!Plan_cost} driving {!Matcher.find},
    {!Domain_pool} fan-out gating) record every decision here under a
    stable strategy name (["match.naive"], ["match.indexed"],
    ["pool.sequential"], ["pool.parallel"]), so the benchmarks and the
    daemon's status op can report the plan distribution.  Counters are
    mutex-guarded (planning happens on pool workers) and deliberately
    survive {!clear_all}: clearing caches models a cold start, not an
    amnesiac planner. *)

val record_plan : string -> unit
(** Bump the counter for one strategy name. *)

val record_plans : string -> int -> unit
(** Bump a counter by [count] in one locked step (the delta engine
    accounts whole op batches); non-positive counts are ignored. *)

val plan_counts : unit -> (string * int) list
(** Every recorded strategy with its count, sorted by name. *)

val reset_plans : unit -> unit
(** Zero all plan counters (tests and bench sections start fresh). *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val pp : Format.formatter -> unit -> unit
(** All caches, one line each. *)
