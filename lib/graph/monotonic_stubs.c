/* CLOCK_MONOTONIC for the bench harness and deadline bookkeeping:
   wall-clock (gettimeofday) can step backwards under NTP adjustment,
   which turns short benchmark windows into nonsense.  No package
   dependency — just clock_gettime from libc. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value onion_monotonic_now_ns(value unit)
{
    struct timespec ts;
#ifdef CLOCK_MONOTONIC
    if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
#endif
    {
        /* Fallback for platforms without a monotonic clock. */
        clock_gettime(CLOCK_REALTIME, &ts);
    }
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
