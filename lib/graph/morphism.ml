type compat = {
  node_ok : Digraph.node -> Digraph.node -> bool;
  edge_ok : string -> string -> bool;
}

let exact = { node_ok = String.equal; edge_ok = String.equal }

type mapping = (Digraph.node * Digraph.node) list

module Smap = Map.Make (String)

(* Order pattern nodes so that nodes constrained by already-assigned
   neighbours come early: simple static heuristic — descending total degree,
   ties broken lexicographically.  Keeps the backtracking search shallow on
   the sparse, tree-ish ontology graphs ONION manipulates. *)
let search_order pattern =
  Digraph.nodes pattern
  |> List.map (fun n ->
         (n, Digraph.out_degree pattern n + Digraph.in_degree pattern n))
  |> List.sort (fun (n1, d1) (n2, d2) ->
         match Stdlib.compare d2 d1 with 0 -> String.compare n1 n2 | c -> c)
  |> List.map fst

(* Check every pattern edge between already-assigned nodes. *)
let edges_consistent compat pattern target assignment =
  Digraph.fold_edges
    (fun (e : Digraph.edge) ok ->
      ok
      &&
      match (Smap.find_opt e.src assignment, Smap.find_opt e.dst assignment) with
      | Some s, Some d ->
          List.exists
            (fun (te : Digraph.edge) ->
              String.equal te.dst d && compat.edge_ok e.label te.label)
            (Digraph.out_edges target s)
      | _ -> true)
    pattern true

let enumerate ?(compat = exact) ?(limit = 1000) pattern target =
  let order = search_order pattern in
  let target_nodes = Digraph.nodes target in
  let results = ref [] in
  let count = ref 0 in
  let rec assign assignment = function
    | [] ->
        if !count < limit then begin
          incr count;
          results := Smap.bindings assignment :: !results
        end
    | pn :: rest ->
        if !count >= limit then ()
        else
          List.iter
            (fun tn ->
              if compat.node_ok pn tn then begin
                let assignment' = Smap.add pn tn assignment in
                if edges_consistent compat pattern target assignment' then
                  assign assignment' rest
              end)
            target_nodes
  in
  assign Smap.empty order;
  List.rev !results

let find_all_mappings ?compat ?limit pattern target =
  enumerate ?compat ?limit pattern target

let find_mapping ?compat pattern target =
  match enumerate ?compat ~limit:1 pattern target with
  | [] -> None
  | m :: _ -> Some m

let matches_into ?compat pattern target =
  find_mapping ?compat pattern target <> None
