(** The four graph transformation primitives of the ONION model
    (section 3 of the paper): node addition (NA), node deletion (ND),
    edge addition (EA), and edge deletion (ED).

    Addition primitives build articulations; deletion primitives update an
    articulation when the underlying source ontologies change.  Operations
    are first-class values so that the articulation generator can log, replay
    and invert the transformation stream it produces. *)

type op =
  | Add_node of Digraph.node * Digraph.edge list
      (** NA: add a node together with its adjacent edges.  Every edge in
          the list must be incident with the new node. *)
  | Delete_node of Digraph.node
      (** ND: delete a node and all edges incident with it. *)
  | Add_edges of Digraph.edge list  (** EA: add a set of edges. *)
  | Delete_edges of Digraph.edge list  (** ED: delete a set of edges. *)

val apply : Digraph.t -> op -> Digraph.t
(** [apply g op] performs one primitive.
    @raise Invalid_argument if an [Add_node] edge list contains an edge not
    incident with the added node. *)

val apply_all : Digraph.t -> op list -> Digraph.t
(** Left-to-right application. *)

val invert : Digraph.t -> op -> op
(** [invert g op] is the primitive that undoes [op] when applied to
    [apply g op].  The pre-state [g] is needed to record what a deletion
    destroyed (e.g. the edges incident with a deleted node).  Exactness is
    on the edge set: endpoint nodes implicitly created by an [Add_edges]
    persist after its inversion, since [Delete_edges] cannot remove
    nodes. *)

val pp : Format.formatter -> op -> unit

val to_string : op -> string

(** {1 Logs}

    A log is the reverse-chronological list of operations applied to a
    graph, enabling replay (for articulation regeneration) and undo (for
    the expert's interactive corrections, section 2.4). *)

type log

val log_empty : log

val log_apply : Digraph.t -> log -> op -> Digraph.t * log
(** Apply and record one primitive. *)

val log_ops : log -> op list
(** Chronological list of recorded operations. *)

val log_undo : Digraph.t -> log -> (Digraph.t * log) option
(** Undo the most recent operation; [None] on an empty log. *)

val replay : Digraph.t -> log -> Digraph.t
(** Re-apply a full log to a fresh base graph. *)
