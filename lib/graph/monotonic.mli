(** A monotonic clock ([clock_gettime(CLOCK_MONOTONIC)]).

    Wall-clock time can step (NTP, manual adjustment), which corrupts
    short measurement windows; every bench window and rate computation
    should use this clock instead.  Readings are only meaningful as
    differences. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin; never steps backwards. *)

val now_s : unit -> float
(** {!now_ns} in seconds (float). *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since:(now_ns ())] measures an interval. *)

val elapsed_s : since:int64 -> float
