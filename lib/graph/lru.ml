(* A bounded memo table with least-recently-used eviction.

   Keys are compared with structural equality (polymorphic [=], the
   default Hashtbl behaviour), which is exact — hash collisions are
   resolved by full comparison, so a hit can never return the result of a
   different key.  Keys must therefore be closure-free data; every cache
   in the tree keys on (operation parameters, revision stamps), both plain
   data.

   Recency is a per-entry tick from a shared counter; eviction scans for
   the minimum.  With the small capacities used here (hundreds of
   entries) the O(n) scan is noise next to the recomputation a single hit
   saves. *)

type ('k, 'v) t = {
  name : string;
  capacity : int;
  tbl : ('k, 'v entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

and 'v entry = { value : 'v; mutable last_used : int }

let snapshot c =
  {
    Cache_stats.hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    entries = Hashtbl.length c.tbl;
    capacity = c.capacity;
  }

let clear c =
  Hashtbl.reset c.tbl;
  c.tick <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let create ~name ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  let c =
    {
      name;
      capacity;
      tbl = Hashtbl.create (min capacity 64);
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Cache_stats.register ~name
    ~snapshot:(fun () -> snapshot c)
    ~clear:(fun () -> clear c);
  c

let name c = c.name

let capacity c = c.capacity

let length c = Hashtbl.length c.tbl

let touch c entry =
  c.tick <- c.tick + 1;
  entry.last_used <- c.tick

let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (k, e.last_used))
      c.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove c.tbl k;
      c.evictions <- c.evictions + 1
  | None -> ()

let insert c key value =
  if Hashtbl.length c.tbl >= c.capacity then evict_lru c;
  let entry = { value; last_used = 0 } in
  touch c entry;
  Hashtbl.replace c.tbl key entry

let find_opt c key =
  if not (Cache_stats.enabled ()) then None
  else
    match Hashtbl.find_opt c.tbl key with
    | Some entry ->
        touch c entry;
        c.hits <- c.hits + 1;
        Some entry.value
    | None ->
        c.misses <- c.misses + 1;
        None

let find_or_compute c key f =
  if not (Cache_stats.enabled ()) then f ()
  else
    match Hashtbl.find_opt c.tbl key with
    | Some entry ->
        touch c entry;
        c.hits <- c.hits + 1;
        entry.value
    | None ->
        c.misses <- c.misses + 1;
        let value = f () in
        insert c key value;
        value

let mem c key = Hashtbl.mem c.tbl key
