(* A bounded memo table with least-recently-used eviction.

   Keys are compared with structural equality (polymorphic [=], the
   default Hashtbl behaviour), which is exact — hash collisions are
   resolved by full comparison, so a hit can never return the result of a
   different key.  Keys must therefore be closure-free data; every cache
   in the tree keys on (operation parameters, revision stamps), both plain
   data.

   Recency is a per-entry tick from a shared counter; eviction scans for
   the minimum.  With the small capacities used here (hundreds of
   entries) the O(n) scan is noise next to the recomputation a single hit
   saves.

   Domain safety: every access to the table and the counters happens
   under the cache's mutex, so {!Domain_pool} workers can share the
   process-wide caches.  [find_or_compute] deliberately runs the compute
   function *outside* the lock — holding it would serialize every worker
   on the slowest computation and deadlock on reentrant cache use (a
   cached filter calling the cached matcher calling the cached index).
   Two workers missing on the same key may therefore both compute it;
   they compute the same pure function of the same key, so the duplicate
   insert is idempotent — wasted work at worst, never a wrong answer. *)

type ('k, 'v) t = {
  name : string;
  capacity : int;
  tbl : ('k, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

and 'v entry = { value : 'v; mutable last_used : int }

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let snapshot c =
  locked c @@ fun () ->
  {
    Cache_stats.hits = c.hits;
    misses = c.misses;
    evictions = c.evictions;
    entries = Hashtbl.length c.tbl;
    capacity = c.capacity;
  }

let clear c =
  locked c @@ fun () ->
  Hashtbl.reset c.tbl;
  c.tick <- 0;
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

let create ~name ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  let c =
    {
      name;
      capacity;
      tbl = Hashtbl.create (min capacity 64);
      lock = Mutex.create ();
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Cache_stats.register ~name
    ~snapshot:(fun () -> snapshot c)
    ~clear:(fun () -> clear c);
  c

let name c = c.name

let capacity c = c.capacity

let length c = locked c @@ fun () -> Hashtbl.length c.tbl

let touch c entry =
  c.tick <- c.tick + 1;
  entry.last_used <- c.tick

let evict_lru c =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (k, e.last_used))
      c.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove c.tbl k;
      c.evictions <- c.evictions + 1
  | None -> ()

(* Caller must hold the lock. *)
let insert_locked c key value =
  if not (Hashtbl.mem c.tbl key) then begin
    if Hashtbl.length c.tbl >= c.capacity then evict_lru c;
    let entry = { value; last_used = 0 } in
    touch c entry;
    Hashtbl.replace c.tbl key entry
  end

let insert c key value = locked c @@ fun () -> insert_locked c key value

let find_opt c key =
  if not (Cache_stats.enabled ()) then None
  else
    locked c @@ fun () ->
    match Hashtbl.find_opt c.tbl key with
    | Some entry ->
        touch c entry;
        c.hits <- c.hits + 1;
        Some entry.value
    | None ->
        c.misses <- c.misses + 1;
        None

let find_or_compute c key f =
  if not (Cache_stats.enabled ()) then f ()
  else
    let cached =
      locked c @@ fun () ->
      match Hashtbl.find_opt c.tbl key with
      | Some entry ->
          touch c entry;
          c.hits <- c.hits + 1;
          Some entry.value
      | None ->
          c.misses <- c.misses + 1;
          None
    in
    match cached with
    | Some value -> value
    | None ->
        let value = f () in
        insert c key value;
        value

let mem c key = locked c @@ fun () -> Hashtbl.mem c.tbl key
