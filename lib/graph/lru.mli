(** Bounded memo tables with least-recently-used eviction, the storage
    behind every revision-stamped result cache ({!Matcher.find}, the
    unary and binary algebra operators, query planning).

    Keys are compared with {e structural} equality, so hits are exact;
    keys must be closure-free data — in this tree always a tuple of
    operation parameters and {!Revision} stamps.  Each cache registers
    itself with {!Cache_stats} at creation and honours the global
    {!Cache_stats.enabled} switch: while caching is disabled,
    {!find_or_compute} calls the supplied thunk directly and neither
    reads nor writes the table.

    Caches are domain-safe: all table and counter access is mutex-guarded,
    so {!Domain_pool} workers share them freely.  {!find_or_compute} runs
    the compute thunk outside the lock; concurrent misses on one key may
    compute it twice (same key, same pure function — idempotent), which
    costs duplicated work, never a wrong answer. *)

type ('k, 'v) t

val create : name:string -> capacity:int -> unit -> ('k, 'v) t
(** A fresh cache holding at most [capacity] entries, registered with
    {!Cache_stats} under [name].
    @raise Invalid_argument on a non-positive capacity or duplicate
    name. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute c key f] returns the cached value for [key] or
    computes, stores and returns [f ()], evicting the least recently used
    entry when full.  With caching disabled it is exactly [f ()]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup without computing (counts as hit or miss); [None] when
    disabled. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Pure presence test: no counter movement, ignores the enabled flag. *)

val clear : ('k, 'v) t -> unit
(** Drop all entries and reset counters. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val name : ('k, 'v) t -> string

val snapshot : ('k, 'v) t -> Cache_stats.snapshot
